//! Umbrella crate for the Clapton reproduction (ASPLOS 2024,
//! arXiv:2406.15721): Clifford-assisted problem transformation for error
//! mitigation in variational quantum algorithms.
//!
//! The individual subsystems live in their own crates and are re-exported
//! here: [`pauli`], [`stabilizer`], [`circuits`], [`noise`], [`sim`],
//! [`ga`], [`models`], [`devices`], [`core`], [`vqe`], [`runtime`],
//! [`error`], and [`service`] — the declarative `JobSpec`/`ClaptonService`
//! front door every run goes through. The [`pipeline`] module adds a
//! one-call end-to-end builder that compiles to a `JobSpec`.
//!
//! # Example
//!
//! ```
//! use clapton::models::ising;
//! use clapton::pipeline::Pipeline;
//!
//! let report = Pipeline::new(ising(4, 0.5))
//!     .with_uniform_noise(1e-3, 1e-2, 2e-2)
//!     .quick(42)
//!     .run();
//! // Clapton's transformed problem keeps the spectrum of the original...
//! let e0_hat = clapton::sim::ground_energy(&report.clapton.transformation.transformed);
//! assert!((e0_hat - report.e0).abs() < 1e-7);
//! // ...and starts the VQE at a device energy no worse than CAFQA's.
//! assert!(report.clapton_initial_energy <= report.cafqa_initial_energy + 1e-9);
//! ```

pub mod pipeline;

pub use clapton_circuits as circuits;
pub use clapton_core as core;
pub use clapton_devices as devices;
pub use clapton_error as error;
pub use clapton_ga as ga;
pub use clapton_models as models;
pub use clapton_noise as noise;
pub use clapton_pauli as pauli;
pub use clapton_runtime as runtime;
pub use clapton_service as service;
pub use clapton_sim as sim;
pub use clapton_stabilizer as stabilizer;
pub use clapton_vqe as vqe;
