//! The end-to-end application-to-device pipeline — the "framework" face of
//! the reproduction (§1: "Clapton is built as an end-to-end
//! application-to-device framework").
//!
//! [`Pipeline`] wires the full flow behind one builder: Hamiltonian →
//! transpilation onto a backend → Clapton transformation search → (optional)
//! VQE → device-model evaluation and metrics.

use clapton_core::{
    relative_improvement, run_cafqa, run_clapton_resumable, CafqaResult, ClaptonConfig,
    ClaptonResult, ExecutableAnsatz,
};
use clapton_devices::FakeBackend;
use clapton_ga::MultiGaConfig;
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;
use clapton_runtime::WorkerPool;
use clapton_sim::{ground_energy, DeviceEvaluator};
use clapton_vqe::{run_vqe, VqeConfig, VqeTrace};
use std::sync::Arc;

/// Builder for an end-to-end Clapton run.
///
/// # Example
///
/// ```
/// use clapton::pipeline::Pipeline;
/// use clapton::models::ising;
///
/// let report = Pipeline::new(ising(4, 0.5))
///     .with_uniform_noise(1e-3, 1e-2, 2e-2)
///     .quick(7)
///     .run();
/// // Clapton's initial point is at least as good as CAFQA's on this model.
/// assert!(report.clapton_initial_energy <= report.cafqa_initial_energy + 1e-9);
/// assert!(report.eta_initial >= 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    hamiltonian: PauliSum,
    backend: Option<FakeBackend>,
    model: Option<NoiseModel>,
    /// Single source of truth for both the Clapton run and the baseline
    /// searches — the engine settings live inside [`ClaptonConfig`].
    clapton: ClaptonConfig,
    vqe_iterations: Option<usize>,
    /// Shared runtime pool for the Clapton search (None = legacy scoped
    /// threads / serial execution per the engine config).
    pool: Option<Arc<WorkerPool>>,
}

/// Everything an end-to-end run produces.
#[derive(Debug, Clone)]
pub struct Report {
    /// Exact ground energy `E0` of the problem.
    pub e0: f64,
    /// CAFQA baseline search result.
    pub cafqa: CafqaResult,
    /// Clapton search result (transformation included).
    pub clapton: ClaptonResult,
    /// Device-model energy of the CAFQA initial point.
    pub cafqa_initial_energy: f64,
    /// Device-model energy of the Clapton initial point (θ = 0 on `Ĥ`).
    pub clapton_initial_energy: f64,
    /// η of Clapton over CAFQA at the initial point (Eq. 14).
    pub eta_initial: f64,
    /// VQE trace from the Clapton start (when VQE was requested).
    pub clapton_vqe: Option<VqeTrace>,
    /// VQE trace from the CAFQA start (when VQE was requested).
    pub cafqa_vqe: Option<VqeTrace>,
}

impl Pipeline {
    /// Starts a pipeline for a problem Hamiltonian.
    pub fn new(hamiltonian: PauliSum) -> Pipeline {
        Pipeline {
            hamiltonian,
            backend: None,
            model: None,
            clapton: ClaptonConfig::paper(),
            vqe_iterations: None,
            pool: None,
        }
    }

    /// Runs the Clapton search on a shared persistent [`WorkerPool`] — the
    /// runtime substrate suite runs and concurrent pipelines share. Results
    /// are bit-identical to the threaded/serial paths.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Pipeline {
        self.pool = Some(pool);
        self
    }

    /// Targets a fake backend (topology + calibration snapshot).
    #[must_use]
    pub fn on_backend(mut self, backend: FakeBackend) -> Pipeline {
        self.backend = Some(backend);
        self.model = None;
        self
    }

    /// Targets a plain uniform noise model without transpilation.
    #[must_use]
    pub fn with_uniform_noise(mut self, p1: f64, p2: f64, readout: f64) -> Pipeline {
        self.model = Some(NoiseModel::uniform(
            self.hamiltonian.num_qubits(),
            p1,
            p2,
            readout,
        ));
        self.backend = None;
        self
    }

    /// Uses reduced search settings seeded by `seed` (for tests/demos).
    #[must_use]
    pub fn quick(mut self, seed: u64) -> Pipeline {
        self.clapton = ClaptonConfig::quick(seed);
        self
    }

    /// Overrides the multi-GA engine settings used by Clapton and the
    /// baseline searches alike.
    #[must_use]
    pub fn with_engine(mut self, engine: MultiGaConfig) -> Pipeline {
        self.clapton.engine = engine;
        self
    }

    /// Overrides the full Clapton configuration (engine, evaluator backend,
    /// seed, ablation switches).
    #[must_use]
    pub fn with_clapton_config(mut self, config: ClaptonConfig) -> Pipeline {
        self.clapton = config;
        self
    }

    /// Enables a follow-up VQE of `iterations` SPSA steps from both starts.
    #[must_use]
    pub fn with_vqe(mut self, iterations: usize) -> Pipeline {
        self.vqe_iterations = Some(iterations);
        self
    }

    /// Executes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the problem does not fit the chosen backend, or if neither
    /// a backend nor a noise model was configured and the register exceeds
    /// the dense-simulation limit.
    pub fn run(self) -> Report {
        let n = self.hamiltonian.num_qubits();
        let exec = match (&self.backend, &self.model) {
            (Some(backend), _) => {
                ExecutableAnsatz::on_device(n, backend.coupling_map(), &backend.noise_model())
                    .expect("backend hosts the problem")
            }
            (None, Some(model)) => ExecutableAnsatz::untranspiled(n, model),
            (None, None) => ExecutableAnsatz::untranspiled(n, &NoiseModel::noiseless(n)),
        };
        let e0 = ground_energy(&self.hamiltonian);
        let cafqa = run_cafqa(
            &self.hamiltonian,
            &exec,
            &self.clapton.engine,
            self.clapton.seed,
        );
        let clapton = run_clapton_resumable(
            &self.hamiltonian,
            &exec,
            &self.clapton,
            self.pool.as_ref(),
            None,
            &mut |_| true,
        )
        .1
        .expect("uninterrupted run converges");
        let device_energy = |h: &PauliSum, theta: &[f64]| {
            DeviceEvaluator::run(&exec.circuit(theta), exec.noise_model())
                .energy(&exec.map_hamiltonian(h))
        };
        let zeros = vec![0.0; exec.ansatz().num_parameters()];
        let cafqa_initial_energy = device_energy(&self.hamiltonian, &cafqa.theta);
        let clapton_initial_energy = device_energy(&clapton.transformation.transformed, &zeros);
        let eta_initial = relative_improvement(e0, cafqa_initial_energy, clapton_initial_energy);
        let (clapton_vqe, cafqa_vqe) = match self.vqe_iterations {
            Some(iters) => {
                let config = VqeConfig::new(iters);
                (
                    Some(run_vqe(
                        &clapton.transformation.transformed,
                        &exec,
                        &zeros,
                        &config,
                    )),
                    Some(run_vqe(&self.hamiltonian, &exec, &cafqa.theta, &config)),
                )
            }
            None => (None, None),
        };
        Report {
            e0,
            cafqa,
            clapton,
            cafqa_initial_energy,
            clapton_initial_energy,
            eta_initial,
            clapton_vqe,
            cafqa_vqe,
        }
    }
}
