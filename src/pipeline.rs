//! The end-to-end application-to-device pipeline — the "framework" face of
//! the reproduction (§1: "Clapton is built as an end-to-end
//! application-to-device framework").
//!
//! [`Pipeline`] is now a thin *builder over [`JobSpec`]*: it collects the
//! same knobs as before (Hamiltonian → backend/noise → engine → optional
//! VQE), compiles them into the one serializable request type via
//! [`Pipeline::to_spec`], and executes through [`ClaptonService`]. The
//! builder surface and the [`Report`] shape are unchanged, and results are
//! bit-identical to the pre-service pipeline; what changed is that every
//! pipeline run is now *also* expressible as a JSON document — write
//! `to_spec()` to disk and any other entry point (the suite-runner CLI, a
//! future daemon) reproduces it exactly.

use clapton_core::{CafqaResult, ClaptonConfig, ClaptonResult};
use clapton_devices::FakeBackend;
use clapton_ga::MultiGaConfig;
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;
use clapton_runtime::WorkerPool;
use clapton_service::{
    BackendSpec, ClaptonService, EngineSpec, JobSpec, MethodSpec, NamedBackend, NoiseSpec,
    ProblemSpec, TermsProblem, UniformNoise, VqeRefineSpec,
};
use clapton_vqe::VqeTrace;
use std::sync::Arc;

/// Builder for an end-to-end Clapton run.
///
/// # Example
///
/// ```
/// use clapton::pipeline::Pipeline;
/// use clapton::models::ising;
///
/// let report = Pipeline::new(ising(4, 0.5))
///     .with_uniform_noise(1e-3, 1e-2, 2e-2)
///     .quick(7)
///     .run();
/// // Clapton's initial point is at least as good as CAFQA's on this model.
/// assert!(report.clapton_initial_energy <= report.cafqa_initial_energy + 1e-9);
/// assert!(report.eta_initial >= 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    hamiltonian: PauliSum,
    backend: Option<FakeBackend>,
    model: Option<NoiseModel>,
    /// Single source of truth for both the Clapton run and the baseline
    /// searches — the engine settings live inside [`ClaptonConfig`].
    clapton: ClaptonConfig,
    vqe_iterations: Option<usize>,
    /// Shared runtime pool the service executes on (None = a pool private
    /// to this run).
    pool: Option<Arc<WorkerPool>>,
}

/// Everything an end-to-end run produces.
#[derive(Debug, Clone)]
pub struct Report {
    /// Exact ground energy `E0` of the problem.
    pub e0: f64,
    /// CAFQA baseline search result.
    pub cafqa: CafqaResult,
    /// Clapton search result (transformation included).
    pub clapton: ClaptonResult,
    /// Device-model energy of the CAFQA initial point.
    pub cafqa_initial_energy: f64,
    /// Device-model energy of the Clapton initial point (θ = 0 on `Ĥ`).
    pub clapton_initial_energy: f64,
    /// η of Clapton over CAFQA at the initial point (Eq. 14).
    pub eta_initial: f64,
    /// VQE trace from the Clapton start (when VQE was requested).
    pub clapton_vqe: Option<VqeTrace>,
    /// VQE trace from the CAFQA start (when VQE was requested).
    pub cafqa_vqe: Option<VqeTrace>,
}

impl Pipeline {
    /// Starts a pipeline for a problem Hamiltonian.
    pub fn new(hamiltonian: PauliSum) -> Pipeline {
        Pipeline {
            hamiltonian,
            backend: None,
            model: None,
            clapton: ClaptonConfig::paper(),
            vqe_iterations: None,
            pool: None,
        }
    }

    /// Runs the Clapton search on a shared persistent [`WorkerPool`] — the
    /// runtime substrate suite runs and concurrent pipelines share. Results
    /// are bit-identical to the private-pool path.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Pipeline {
        self.pool = Some(pool);
        self
    }

    /// Targets a fake backend (topology + calibration snapshot).
    #[must_use]
    pub fn on_backend(mut self, backend: FakeBackend) -> Pipeline {
        self.backend = Some(backend);
        self.model = None;
        self
    }

    /// Targets a plain uniform noise model without transpilation.
    #[must_use]
    pub fn with_uniform_noise(mut self, p1: f64, p2: f64, readout: f64) -> Pipeline {
        self.model = Some(NoiseModel::uniform(
            self.hamiltonian.num_qubits(),
            p1,
            p2,
            readout,
        ));
        self.backend = None;
        self
    }

    /// Uses reduced search settings seeded by `seed` (for tests/demos).
    #[must_use]
    pub fn quick(mut self, seed: u64) -> Pipeline {
        self.clapton = ClaptonConfig::quick(seed);
        self
    }

    /// Overrides the multi-GA engine settings used by Clapton and the
    /// baseline searches alike.
    #[must_use]
    pub fn with_engine(mut self, engine: MultiGaConfig) -> Pipeline {
        self.clapton.engine = engine;
        self
    }

    /// Overrides the full Clapton configuration (engine, evaluator backend,
    /// seed, ablation switches).
    #[must_use]
    pub fn with_clapton_config(mut self, config: ClaptonConfig) -> Pipeline {
        self.clapton = config;
        self
    }

    /// Enables a follow-up VQE of `iterations` SPSA steps from both starts.
    #[must_use]
    pub fn with_vqe(mut self, iterations: usize) -> Pipeline {
        self.vqe_iterations = Some(iterations);
        self
    }

    /// Compiles the builder state into the serializable [`JobSpec`] the run
    /// executes — the declarative form of this exact pipeline. Writing it to
    /// JSON and submitting it through any entry point reproduces the run
    /// bit-identically.
    pub fn to_spec(&self) -> JobSpec {
        let n = self.hamiltonian.num_qubits();
        let problem = ProblemSpec::Terms(TermsProblem {
            qubits: n,
            terms: self
                .hamiltonian
                .iter()
                .map(|(c, p)| (c, p.to_string()))
                .collect(),
        });
        let (backend, noise) = match (&self.backend, &self.model) {
            (Some(b), _) => {
                // Registry devices compile to their name; anything else
                // (hardware variants, archived snapshots) inlines the full
                // snapshot so the spec stays self-contained.
                let spec = match FakeBackend::by_name(b.name()) {
                    Ok(registered) if &registered == b => BackendSpec::Named(NamedBackend {
                        name: b.name().to_string(),
                    }),
                    _ => BackendSpec::Snapshot(b.clone()),
                };
                (spec, NoiseSpec::Backend)
            }
            (None, Some(model)) => (
                BackendSpec::Logical,
                NoiseSpec::Uniform(UniformNoise {
                    p1: model.p1(0),
                    p2: model.p2(0, 1),
                    readout: model.readout(0),
                    t1: None,
                }),
            ),
            (None, None) => (BackendSpec::Logical, NoiseSpec::Noiseless),
        };
        let mut methods = vec![MethodSpec::Cafqa, MethodSpec::Clapton];
        if let Some(iterations) = self.vqe_iterations {
            methods.push(MethodSpec::VqeRefine(VqeRefineSpec { iterations }));
        }
        let engine = EngineSpec::from_config(self.clapton.engine);
        let mut spec = JobSpec::new(problem);
        spec.backend = backend;
        spec.noise = noise;
        spec.methods = methods;
        spec.engine = engine;
        spec.evaluator = self.clapton.evaluator;
        spec.seed = self.clapton.seed;
        spec.two_qubit_slots = self.clapton.two_qubit_slots;
        spec
    }

    /// Executes the pipeline through [`ClaptonService`].
    ///
    /// # Panics
    ///
    /// Panics if the compiled spec fails validation (the problem does not
    /// fit the chosen backend) — the builder's historical contract.
    pub fn run(self) -> Report {
        let service = match &self.pool {
            Some(pool) => ClaptonService::with_pool(Arc::clone(pool)),
            None => ClaptonService::new(),
        };
        let spec = self.to_spec();
        let report = service
            .run(spec)
            .unwrap_or_else(|e| panic!("pipeline job failed: {e}"));
        Report {
            e0: report.e0,
            cafqa: report.cafqa.expect("pipeline always runs CAFQA"),
            clapton: report.clapton.expect("pipeline always runs Clapton"),
            cafqa_initial_energy: report
                .cafqa_initial_energy
                .expect("pipeline always scores CAFQA"),
            clapton_initial_energy: report
                .clapton_initial_energy
                .expect("pipeline always scores Clapton"),
            eta_initial: report.eta_initial.expect("both methods present"),
            clapton_vqe: report.clapton_vqe,
            cafqa_vqe: report.cafqa_vqe,
        }
    }
}
