//! Dense density-matrix simulation with non-Clifford noise channels.

use crate::statevector::{i_power, masks};
use crate::{Complex64, StateVector};
use clapton_circuits::Gate;
use clapton_pauli::{PauliString, PauliSum};

/// A dense `2^N × 2^N` density matrix.
///
/// Supports unitary gates, single-/two-qubit depolarizing channels and
/// amplitude damping (thermal relaxation) — the "full complex noise model"
/// of the paper's device evaluations (§5.2.2), which is deliberately *not*
/// Clifford-simulable.
///
/// # Example
///
/// ```
/// use clapton_circuits::Gate;
/// use clapton_sim::DensityMatrix;
///
/// let mut rho = DensityMatrix::new(1);
/// rho.apply_gate(Gate::X(0));
/// // 30% amplitude damping partially restores |0⟩: ⟨Z⟩ = 2γ - 1.
/// rho.amplitude_damp(0, 0.3);
/// let z = "Z".parse().unwrap();
/// assert!((rho.expectation(&z) - (2.0 * 0.3 - 1.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 12` (the matrix would exceed 256 MiB).
    pub fn new(n: usize) -> DensityMatrix {
        assert!(n <= 12, "density matrix of {n} qubits is too large");
        let dim = 1usize << n;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        DensityMatrix { n, dim, data }
    }

    /// The projector onto a pure state.
    pub fn from_statevector(sv: &StateVector) -> DensityMatrix {
        let n = sv.num_qubits();
        let dim = 1usize << n;
        let amps = sv.amplitudes();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n, dim, data }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.dim + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: Complex64) {
        self.data[r * self.dim + c] = v;
    }

    /// The trace (1 for a valid state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|r| self.at(r, r).re).sum()
    }

    /// The purity `tr(ρ²)` (1 for pure states, `1/2^N` for fully mixed).
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_{r,c} ρ(r,c)·ρ(c,r) = Σ |ρ(r,c)|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Applies a unitary gate: `ρ ← U ρ U†`.
    pub fn apply_gate(&mut self, gate: Gate) {
        match gate {
            Gate::Ry(q, a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    q,
                    [
                        [Complex64::real(c), Complex64::real(-s)],
                        [Complex64::real(s), Complex64::real(c)],
                    ],
                );
            }
            Gate::Rz(q, a) => self.apply_1q(
                q,
                [
                    [Complex64::cis(-a / 2.0), Complex64::ZERO],
                    [Complex64::ZERO, Complex64::cis(a / 2.0)],
                ],
            ),
            Gate::H(q) => {
                let h = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
                self.apply_1q(q, [[h, h], [h, -h]]);
            }
            Gate::S(q) => self.apply_1q(
                q,
                [
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::I],
                ],
            ),
            Gate::Sdg(q) => self.apply_1q(
                q,
                [
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, -Complex64::I],
                ],
            ),
            Gate::X(q) => self.apply_1q(
                q,
                [
                    [Complex64::ZERO, Complex64::ONE],
                    [Complex64::ONE, Complex64::ZERO],
                ],
            ),
            Gate::Cx(c, t) => {
                let (bc, bt) = (1usize << c, 1usize << t);
                self.sandwich_permutation(|i| if i & bc != 0 { i ^ bt } else { i });
            }
            Gate::Swap(a, b) => {
                let (ba, bb) = (1usize << a, 1usize << b);
                self.sandwich_permutation(|i| {
                    let (ia, ib) = ((i & ba != 0) as usize, (i & bb != 0) as usize);
                    if ia != ib {
                        i ^ ba ^ bb
                    } else {
                        i
                    }
                });
            }
        }
    }

    /// `ρ ← P ρ P†` for a permutation `P` that is an involution
    /// (`f(f(i)) = i`), e.g. CX or SWAP.
    fn sandwich_permutation<F: Fn(usize) -> usize>(&mut self, f: F) {
        for r in 0..self.dim {
            for c in 0..self.dim {
                let (fr, fc) = (f(r), f(c));
                // Visit each 2-element orbit once.
                if (fr, fc) > (r, c) {
                    let tmp = self.at(r, c);
                    let other = self.at(fr, fc);
                    self.set(r, c, other);
                    self.set(fr, fc, tmp);
                }
            }
        }
    }

    /// `ρ ← (U⊗I) ρ (U†⊗I)` for a single-qubit unitary on `q`.
    fn apply_1q(&mut self, q: usize, u: [[Complex64; 2]; 2]) {
        let bit = 1usize << q;
        // Left multiplication: rows.
        for r in 0..self.dim {
            if r & bit == 0 {
                for c in 0..self.dim {
                    let (a0, a1) = (self.at(r, c), self.at(r | bit, c));
                    self.set(r, c, u[0][0] * a0 + u[0][1] * a1);
                    self.set(r | bit, c, u[1][0] * a0 + u[1][1] * a1);
                }
            }
        }
        // Right multiplication by U†: columns.
        for c in 0..self.dim {
            if c & bit == 0 {
                for r in 0..self.dim {
                    let (a0, a1) = (self.at(r, c), self.at(r, c | bit));
                    self.set(r, c, a0 * u[0][0].conj() + a1 * u[0][1].conj());
                    self.set(r, c | bit, a0 * u[1][0].conj() + a1 * u[1][1].conj());
                }
            }
        }
    }

    /// Single-qubit depolarizing channel of strength `p`
    /// (`X/Y/Z` each with probability `p/3` — the stim convention, §4.2.2).
    pub fn depolarize_1q(&mut self, q: usize, p: f64) {
        if p == 0.0 {
            return;
        }
        let bit = 1usize << q;
        let pop_keep = 1.0 - 2.0 * p / 3.0;
        let pop_mix = 2.0 * p / 3.0;
        let coh = 1.0 - 4.0 * p / 3.0;
        for r in 0..self.dim {
            if r & bit != 0 {
                continue;
            }
            for c in 0..self.dim {
                if c & bit != 0 {
                    continue;
                }
                let (r1, c1) = (r | bit, c | bit);
                let d00 = self.at(r, c);
                let d11 = self.at(r1, c1);
                self.set(r, c, d00.scale(pop_keep) + d11.scale(pop_mix));
                self.set(r1, c1, d11.scale(pop_keep) + d00.scale(pop_mix));
                self.set(r, c1, self.at(r, c1).scale(coh));
                self.set(r1, c, self.at(r1, c).scale(coh));
            }
        }
    }

    /// Two-qubit depolarizing channel of strength `p` (each of the 15
    /// non-identity two-qubit Paulis with probability `p/15`).
    ///
    /// Implemented via the identity
    /// `D(ρ) = λρ + (1-λ)·(tr_ab(ρ) ⊗ I/4)` with `λ = 1 - 16p/15`.
    pub fn depolarize_2q(&mut self, a: usize, b: usize, p: f64) {
        if p == 0.0 {
            return;
        }
        assert!(a != b, "two-qubit channel needs distinct qubits");
        let (ba, bb) = (1usize << a, 1usize << b);
        let mask = !(ba | bb);
        let lambda = 1.0 - 16.0 * p / 15.0;
        let sub = [0, ba, bb, ba | bb];
        for r in 0..self.dim {
            if r & (ba | bb) != 0 {
                continue;
            }
            for c in 0..self.dim {
                if c & (ba | bb) != 0 {
                    continue;
                }
                debug_assert_eq!(r & mask, r);
                debug_assert_eq!(c & mask, c);
                // Partial trace over the (a, b) subsystem for this block.
                let mut tr_sub = Complex64::ZERO;
                for &k in &sub {
                    tr_sub += self.at(r | k, c | k);
                }
                let mix = tr_sub.scale((1.0 - lambda) / 4.0);
                for &kr in &sub {
                    for &kc in &sub {
                        let old = self.at(r | kr, c | kc);
                        let new = if kr == kc {
                            old.scale(lambda) + mix
                        } else {
                            old.scale(lambda)
                        };
                        self.set(r | kr, c | kc, new);
                    }
                }
            }
        }
    }

    /// Amplitude damping (thermal relaxation toward `|0⟩`) with decay
    /// probability `γ = 1 - e^{-t/T1}` on qubit `q` (§2.2.1).
    pub fn amplitude_damp(&mut self, q: usize, gamma: f64) {
        if gamma == 0.0 {
            return;
        }
        assert!(
            (0.0..=1.0).contains(&gamma),
            "γ = {gamma} not a probability"
        );
        let bit = 1usize << q;
        let s = (1.0 - gamma).sqrt();
        for r in 0..self.dim {
            if r & bit != 0 {
                continue;
            }
            for c in 0..self.dim {
                if c & bit != 0 {
                    continue;
                }
                let (r1, c1) = (r | bit, c | bit);
                let d11 = self.at(r1, c1);
                // K0 ρ K0† + K1 ρ K1†.
                self.set(r, c, self.at(r, c) + d11.scale(gamma));
                self.set(r1, c1, d11.scale(1.0 - gamma));
                self.set(r, c1, self.at(r, c1).scale(s));
                self.set(r1, c, self.at(r1, c).scale(s));
            }
        }
    }

    /// The computational-basis outcome distribution (the diagonal of `ρ`).
    ///
    /// Entries are clamped at zero against floating-point round-off; they
    /// sum to the trace (1 for a valid state).
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|r| self.at(r, r).re.max(0.0)).collect()
    }

    /// The expectation value `tr(ρP)` of a Hermitian Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if the string acts on a different number of qubits.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n, "qubit count mismatch");
        let (x_mask, z_mask, y_count) = masks(p);
        let phase0 = i_power(y_count);
        let mut acc = Complex64::ZERO;
        // tr(ρP) = Σ_r ρ(r, r⊕x)·φ(r),  φ(r) = i^{#Y}(-1)^{z·r}.
        for r in 0..self.dim {
            let sign = if ((r as u64) & z_mask).count_ones() & 1 == 1 {
                -1.0
            } else {
                1.0
            };
            acc += self.at(r, r ^ (x_mask as usize)) * phase0.scale(sign);
        }
        debug_assert!(acc.im.abs() < 1e-9, "Hermitian expectation must be real");
        acc.re
    }

    /// The energy `tr(ρH)`.
    pub fn energy(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_circuits::Circuit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
        let mut c = Circuit::new(n);
        for _ in 0..len {
            match rng.gen_range(0..5) {
                0 => c.push(Gate::Ry(
                    rng.gen_range(0..n),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                )),
                1 => c.push(Gate::Rz(
                    rng.gen_range(0..n),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                )),
                2 => c.push(Gate::H(rng.gen_range(0..n))),
                3 => c.push(Gate::S(rng.gen_range(0..n))),
                _ => {
                    if n >= 2 {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        c.push(Gate::Cx(a, b));
                    }
                }
            }
        }
        c
    }

    #[test]
    fn pure_state_invariants() {
        let rho = DensityMatrix::new(3);
        assert!((rho.trace() - 1.0).abs() < 1e-15);
        assert!((rho.purity() - 1.0).abs() < 1e-15);
        assert_eq!(rho.expectation(&ps("ZZZ")), 1.0);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let n = rng.gen_range(1..4);
            let c = random_circuit(n, 15, &mut rng);
            let sv = StateVector::from_circuit(&c);
            let mut rho = DensityMatrix::new(n);
            for &g in c.gates() {
                rho.apply_gate(g);
            }
            assert!((rho.trace() - 1.0).abs() < 1e-10);
            assert!((rho.purity() - 1.0).abs() < 1e-10);
            for _ in 0..8 {
                let p = PauliString::random(n, &mut rng);
                assert!(
                    (rho.expectation(&p) - sv.expectation(&p)).abs() < 1e-9,
                    "term {p}"
                );
            }
        }
    }

    #[test]
    fn from_statevector_agrees() {
        let mut rng = StdRng::seed_from_u64(77);
        let c = random_circuit(3, 12, &mut rng);
        let sv = StateVector::from_circuit(&c);
        let rho = DensityMatrix::from_statevector(&sv);
        for _ in 0..10 {
            let p = PauliString::random(3, &mut rng);
            assert!((rho.expectation(&p) - sv.expectation(&p)).abs() < 1e-10);
        }
    }

    #[test]
    fn depolarize_1q_damps_coherences_and_populations() {
        let p = 0.3;
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(Gate::H(0));
        rho.depolarize_1q(0, p);
        // ⟨X⟩ is a coherence: damped by 1-4p/3.
        assert!((rho.expectation(&ps("X")) - (1.0 - 4.0 * p / 3.0)).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        // Fully depolarizing at p = 3/4 gives the maximally mixed state.
        let mut rho = DensityMatrix::new(1);
        rho.depolarize_1q(0, 0.75);
        assert!(rho.expectation(&ps("Z")).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarize_2q_damping_factor() {
        let p = 0.2;
        let mut rho = DensityMatrix::new(2);
        rho.apply_gate(Gate::H(0));
        rho.apply_gate(Gate::Cx(0, 1));
        rho.depolarize_2q(0, 1, p);
        let f = 1.0 - 16.0 * p / 15.0;
        for t in ["XX", "ZZ", "YY"] {
            let clean: f64 = if t == "YY" { -1.0 } else { 1.0 };
            assert!(
                (rho.expectation(&ps(t)) - clean * f).abs() < 1e-12,
                "term {t}"
            );
        }
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarize_2q_only_touches_pair() {
        let p = 0.4;
        let mut rho = DensityMatrix::new(3);
        rho.apply_gate(Gate::X(2));
        rho.depolarize_2q(0, 1, p);
        assert_eq!(rho.expectation(&ps("IIZ")), -1.0);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let gamma: f64 = 0.25;
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(Gate::X(0));
        rho.amplitude_damp(0, gamma);
        assert!((rho.expectation(&ps("Z")) - (2.0 * gamma - 1.0)).abs() < 1e-12);
        // Coherences decay by √(1-γ).
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(Gate::H(0));
        rho.amplitude_damp(0, gamma);
        assert!((rho.expectation(&ps("X")) - (1.0 - gamma).sqrt()).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_composes_exponentially() {
        // Two dampings of γ each = one damping of 1-(1-γ)².
        let gamma = 0.2;
        let mut a = DensityMatrix::new(1);
        a.apply_gate(Gate::X(0));
        a.amplitude_damp(0, gamma);
        a.amplitude_damp(0, gamma);
        let mut b = DensityMatrix::new(1);
        b.apply_gate(Gate::X(0));
        b.amplitude_damp(0, 1.0 - (1.0 - gamma) * (1.0 - gamma));
        assert!((a.expectation(&ps("Z")) - b.expectation(&ps("Z"))).abs() < 1e-12);
    }

    #[test]
    fn channels_preserve_trace_on_random_states() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = random_circuit(3, 20, &mut rng);
        let mut rho = DensityMatrix::new(3);
        for &g in c.gates() {
            rho.apply_gate(g);
        }
        rho.depolarize_1q(1, 0.1);
        rho.depolarize_2q(0, 2, 0.05);
        rho.amplitude_damp(2, 0.15);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.purity() <= 1.0 + 1e-10);
    }
}
