//! Exact extremal eigenvalues of Pauli-sum Hamiltonians via Lanczos.
//!
//! The paper computes the true ground-state energy `E0` "by diagonalizing the
//! Hamiltonian" (§5.2.1) to define the improvement metric η (Eq. 14). A dense
//! diagonalization is wasteful: Lanczos with full reorthogonalization on the
//! matrix-free Pauli matvec converges to machine precision for every
//! benchmark in the suite.

use crate::statevector::apply_pauli_sum_to;
use crate::Complex64;
use clapton_pauli::PauliSum;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The minimum eigenvalue (ground-state energy `E0`) of a Pauli-sum
/// Hamiltonian.
///
/// Deterministic: restarts from two fixed seeds and returns the smaller
/// result.
///
/// # Panics
///
/// Panics if the Hamiltonian has more than 24 qubits (dense vectors too
/// large) or zero qubits.
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliSum;
/// use clapton_sim::ground_energy;
///
/// // H = J X0X1 + Z0 + Z1 has E0 = -√(4 + J²).
/// let j = 0.5;
/// let h = PauliSum::from_terms(2, vec![
///     (j, "XX".parse().unwrap()),
///     (1.0, "ZI".parse().unwrap()),
///     (1.0, "IZ".parse().unwrap()),
/// ]);
/// assert!((ground_energy(&h) + (4.0 + j * j).sqrt()).abs() < 1e-9);
/// ```
pub fn ground_energy(h: &PauliSum) -> f64 {
    extremal_eigenvalue(h, false)
}

/// The maximum eigenvalue of a Pauli-sum Hamiltonian.
pub fn dominant_eigenvalue(h: &PauliSum) -> f64 {
    extremal_eigenvalue(h, true)
}

fn extremal_eigenvalue(h: &PauliSum, largest: bool) -> f64 {
    let n = h.num_qubits();
    assert!(n > 0, "need at least one qubit");
    assert!(
        n <= 24,
        "Hamiltonian on {n} qubits too large for dense vectors"
    );
    let mut best = f64::INFINITY;
    for seed in [0xC1AF_0001u64, 0xC1AF_0002u64] {
        let v = lanczos_min(h, seed, largest);
        best = best.min(v);
    }
    if largest {
        -best
    } else {
        best
    }
}

/// Lanczos iteration returning the smallest eigenvalue of `H` (or of `-H`
/// when `negate` is set).
fn lanczos_min(h: &PauliSum, seed: u64, negate: bool) -> f64 {
    let dim = 1usize << h.num_qubits();
    let m = dim.min(140);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut basis: Vec<Vec<Complex64>> = Vec::with_capacity(m);
    let mut v: Vec<Complex64> = (0..dim)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    normalize(&mut v);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut w = vec![Complex64::ZERO; dim];
    for j in 0..m {
        basis.push(v.clone());
        w.fill(Complex64::ZERO);
        apply_pauli_sum_to(h, &v, &mut w);
        if negate {
            for x in &mut w {
                *x = -*x;
            }
        }
        if j > 0 {
            let beta = betas[j - 1];
            for (wi, bi) in w.iter_mut().zip(&basis[j - 1]) {
                *wi -= bi.scale(beta);
            }
        }
        let alpha = dot(&basis[j], &w).re;
        alphas.push(alpha);
        for (wi, bi) in w.iter_mut().zip(&basis[j]) {
            *wi -= bi.scale(alpha);
        }
        // Full reorthogonalization for numerical robustness.
        for b in &basis {
            let overlap = dot(b, &w);
            for (wi, bi) in w.iter_mut().zip(b) {
                *wi -= *bi * overlap;
            }
        }
        let beta = norm(&w);
        if beta < 1e-12 || j + 1 == m {
            break;
        }
        betas.push(beta);
        v.clone_from(&w);
        let inv = 1.0 / beta;
        for x in &mut v {
            *x = x.scale(inv);
        }
    }
    tridiagonal_min_eigenvalue(&alphas, &betas)
}

fn dot(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    let mut acc = Complex64::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc += x.conj() * *y;
    }
    acc
}

fn norm(v: &[Complex64]) -> f64 {
    v.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
}

fn normalize(v: &mut [Complex64]) {
    let n = norm(v);
    assert!(n > 0.0, "cannot normalize zero vector");
    let inv = 1.0 / n;
    for x in v.iter_mut() {
        *x = x.scale(inv);
    }
}

/// Smallest eigenvalue of a symmetric tridiagonal matrix via Sturm-sequence
/// bisection.
fn tridiagonal_min_eigenvalue(alphas: &[f64], betas: &[f64]) -> f64 {
    assert!(!alphas.is_empty(), "empty tridiagonal matrix");
    // Gershgorin bounds.
    let k = alphas.len();
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &alpha) in alphas.iter().enumerate() {
        let r = betas.get(i.wrapping_sub(1)).copied().unwrap_or(0.0).abs()
            + betas.get(i).copied().unwrap_or(0.0).abs();
        lo = lo.min(alpha - r);
        hi = hi.max(alpha + r);
    }
    // Count of eigenvalues < x via the Sturm sequence.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = 1.0f64;
        for i in 0..k {
            let b2 = if i == 0 {
                0.0
            } else {
                betas[i - 1] * betas[i - 1]
            };
            d = alphas[i] - x - b2 / d;
            if d == 0.0 {
                d = 1e-300;
            }
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let (mut lo, mut hi) = (lo - 1e-9, hi + 1e-9);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_pauli::PauliString;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn single_qubit_z() {
        let h = PauliSum::from_terms(1, vec![(1.0, ps("Z"))]);
        assert!((ground_energy(&h) + 1.0).abs() < 1e-10);
        assert!((dominant_eigenvalue(&h) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn single_qubit_x_plus_z() {
        // H = X + Z has eigenvalues ±√2.
        let h = PauliSum::from_terms(1, vec![(1.0, ps("X")), (1.0, ps("Z"))]);
        assert!((ground_energy(&h) + 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn two_qubit_ising_closed_form() {
        // H = J XX + Z1 + Z2: E0 = -√(4 + J²).
        for j in [0.25, 0.5, 1.0, 2.0] {
            let h = PauliSum::from_terms(2, vec![(j, ps("XX")), (1.0, ps("ZI")), (1.0, ps("IZ"))]);
            assert!(
                (ground_energy(&h) + (4.0 + j * j).sqrt()).abs() < 1e-9,
                "J = {j}"
            );
        }
    }

    #[test]
    fn two_qubit_xxz_closed_form() {
        // H = J(XX + YY) + ZZ: spectrum {1, 1, -1+2J, -1-2J}.
        for j in [0.25, 0.5, 1.0] {
            let h = PauliSum::from_terms(2, vec![(j, ps("XX")), (j, ps("YY")), (1.0, ps("ZZ"))]);
            assert!(
                (ground_energy(&h) - (-1.0 - 2.0 * j)).abs() < 1e-9,
                "J = {j}"
            );
        }
    }

    #[test]
    fn identity_offset_shifts_spectrum() {
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZZ")), (-3.0, ps("II"))]);
        assert!((ground_energy(&h) + 4.0).abs() < 1e-9);
    }

    #[test]
    fn matches_power_iteration_on_random_hamiltonian() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(404);
        let n = 4;
        let h = PauliSum::from_terms(
            n,
            (0..12).map(|_| (rng.gen_range(-1.0..1.0), PauliString::random(n, &mut rng))),
        );
        let e0 = ground_energy(&h);
        // Independent check: power iteration on σI - H.
        let sigma = h.one_norm() + 1.0;
        let dim = 1usize << n;
        let mut v: Vec<Complex64> = (0..dim)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        normalize(&mut v);
        let mut w = vec![Complex64::ZERO; dim];
        let mut lambda = 0.0;
        for _ in 0..3000 {
            w.fill(Complex64::ZERO);
            apply_pauli_sum_to(&h, &v, &mut w);
            // w = σ v - H v
            for (wi, vi) in w.iter_mut().zip(&v) {
                *wi = vi.scale(sigma) - *wi;
            }
            lambda = norm(&w);
            v.clone_from(&w);
            let inv = 1.0 / lambda;
            for x in &mut v {
                *x = x.scale(inv);
            }
        }
        let e0_power = sigma - lambda;
        assert!(
            (e0 - e0_power).abs() < 1e-6,
            "lanczos {e0} vs power {e0_power}"
        );
    }

    #[test]
    fn larger_chain_is_consistent_with_variational_bound() {
        // E0 must lower-bound any computational-basis energy.
        let n = 6;
        let mut terms = vec![];
        for i in 0..n - 1 {
            let mut s = vec!['I'; n];
            s[i] = 'X';
            s[i + 1] = 'X';
            terms.push((0.5, s.iter().collect::<String>().parse().unwrap()));
        }
        for i in 0..n {
            let mut s = vec!['I'; n];
            s[i] = 'Z';
            terms.push((1.0, s.iter().collect::<String>().parse().unwrap()));
        }
        let h = PauliSum::from_terms(n, terms);
        let e0 = ground_energy(&h);
        for bits in 0..(1u64 << n) {
            assert!(e0 <= h.expectation_basis_state(&[bits]) + 1e-9);
        }
        // And it must be within the 1-norm ball.
        assert!(e0 >= -h.one_norm() - 1e-9);
    }
}
