//! Full-noise-model device evaluation: the paper's "device (model)
//! evaluation" (×) of Figures 2 and 5.

use crate::DensityMatrix;
use clapton_circuits::{Circuit, Gate};
use clapton_noise::NoiseModel;
use clapton_pauli::{Pauli, PauliString, PauliSum};

/// Runs circuits under the *full* noise model — depolarizing gate errors,
/// thermal relaxation on every qubit per scheduled moment, and readout
/// error — and evaluates Hamiltonian energies on the resulting mixed state.
///
/// This is the non-Clifford evaluation environment (Qiskit Aer in the paper):
/// amplitude damping makes it inaccessible to stabilizer simulation, which is
/// precisely the model/modeled-noise gap Clapton's hypothesis addresses.
///
/// Semantics shared with the Clifford evaluators so the two are comparable
/// term by term:
/// * every gate slot carries its depolarizing channel (identity rotations
///   included),
/// * measurement of a term includes basis-prep gate noise (depolarizing
///   commutes with single-qubit unitaries, so the prep noise contributes an
///   exact `(1-4p/3)` factor per prep gate) and the `(1-2p_k)` readout
///   factor per measured qubit,
/// * relaxation: all qubits decay for each moment's duration (ASAP schedule)
///   and for the readout duration at the end.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::NoiseModel;
/// use clapton_sim::DeviceEvaluator;
/// use clapton_pauli::PauliSum;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::X(0));
/// let mut model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// model.set_t1_uniform(100e-6);
/// let eval = DeviceEvaluator::run(&c, &model);
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZI".parse().unwrap())]);
/// let e = eval.energy(&h);
/// assert!(e > -1.0 && e < -0.9); // close to -1, degraded by noise
/// ```
#[derive(Debug, Clone)]
pub struct DeviceEvaluator {
    rho: DensityMatrix,
    model: NoiseModel,
}

impl DeviceEvaluator {
    /// Executes `circuit` under `model` from `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if circuit and model disagree on the register size, or the
    /// register exceeds the density-matrix limit (12 qubits).
    pub fn run(circuit: &Circuit, model: &NoiseModel) -> DeviceEvaluator {
        assert_eq!(
            circuit.num_qubits(),
            model.num_qubits(),
            "model/circuit size mismatch"
        );
        let n = circuit.num_qubits();
        let mut rho = DensityMatrix::new(n);
        let durations = model.durations();
        let gates = circuit.gates();
        for moment in circuit.moments() {
            let mut moment_duration = 0.0f64;
            for &gi in &moment {
                let g = gates[gi];
                rho.apply_gate(g);
                match g {
                    Gate::Cx(a, b) => {
                        rho.depolarize_2q(a, b, model.p2(a, b));
                        moment_duration = moment_duration.max(durations.two);
                    }
                    Gate::Swap(a, b) => {
                        rho.depolarize_2q(a, b, model.swap_error(a, b));
                        // A SWAP is three CX pulses long.
                        moment_duration = moment_duration.max(3.0 * durations.two);
                    }
                    g1 => {
                        let q = g1.qubits()[0];
                        rho.depolarize_1q(q, model.p1(q));
                        moment_duration = moment_duration.max(durations.single);
                    }
                }
            }
            Self::relax_all(&mut rho, model, moment_duration);
        }
        // Relaxation while the readout pulse runs.
        Self::relax_all(&mut rho, model, durations.readout);
        DeviceEvaluator {
            rho,
            model: model.clone(),
        }
    }

    fn relax_all(rho: &mut DensityMatrix, model: &NoiseModel, duration: f64) {
        if duration <= 0.0 {
            return;
        }
        for q in 0..model.num_qubits() {
            let t1 = model.t1(q);
            if t1.is_finite() {
                let gamma = 1.0 - (-duration / t1).exp();
                rho.amplitude_damp(q, gamma);
            }
        }
    }

    /// The measured expectation of one Pauli term, including basis-prep gate
    /// noise and readout error.
    pub fn expectation(&self, term: &PauliString) -> f64 {
        let mut factor = 1.0;
        for q in term.support() {
            factor *= 1.0 - 2.0 * self.model.readout(q);
            // Basis prep: 1 gate for X, 2 for Y, each a (1-4p/3) damping.
            let prep_gates = match term.get(q) {
                Pauli::X => 1,
                Pauli::Y => 2,
                _ => 0,
            };
            for _ in 0..prep_gates {
                factor *= 1.0 - 4.0 * self.model.p1(q) / 3.0;
            }
        }
        factor * self.rho.expectation(term)
    }

    /// The measured energy of a Hamiltonian.
    pub fn energy(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation(p)).sum()
    }

    /// The ideal (no readout / no prep noise) expectation `tr(ρP)` on the
    /// final state.
    pub fn state_expectation(&self, term: &PauliString) -> f64 {
        self.rho.expectation(term)
    }

    /// The final mixed state.
    pub fn state(&self) -> &DensityMatrix {
        &self.rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_noise::{ExactEvaluator, NoisyCircuit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn noiseless_run_is_exact() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let eval = DeviceEvaluator::run(&c, &NoiseModel::noiseless(2));
        assert!((eval.expectation(&ps("ZZ")) - 1.0).abs() < 1e-12);
        assert!((eval.expectation(&ps("XX")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_clifford_exact_evaluator_for_pauli_noise() {
        // With Pauli channels only (no T1), the density-matrix device
        // evaluation must agree with the closed-form Clifford evaluator on
        // every term — the cross-simulator consistency pillar.
        let mut rng = StdRng::seed_from_u64(2025);
        for _ in 0..8 {
            let n = rng.gen_range(2..5);
            let mut c = Circuit::new(n);
            for _ in 0..12 {
                match rng.gen_range(0..4) {
                    0 => c.push(Gate::H(rng.gen_range(0..n))),
                    1 => c.push(Gate::S(rng.gen_range(0..n))),
                    2 => c.push(Gate::Ry(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2)),
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        c.push(Gate::Cx(a, b));
                    }
                }
            }
            let model = NoiseModel::uniform(n, 2e-3, 8e-3, 1.5e-2);
            let device = DeviceEvaluator::run(&c, &model);
            let noisy = NoisyCircuit::from_circuit(&c, &model).unwrap();
            let clifford = ExactEvaluator::new(&noisy);
            for _ in 0..10 {
                let p = PauliString::random(n, &mut rng);
                let a = device.expectation(&p);
                let b = clifford.expectation(&p);
                assert!(
                    (a - b).abs() < 1e-9,
                    "term {p}: density {a} vs clifford {b} on {c}"
                );
            }
        }
    }

    #[test]
    fn relaxation_pulls_excited_state_down() {
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        let mut model = NoiseModel::noiseless(1);
        model.set_t1_uniform(50e-6);
        let eval = DeviceEvaluator::run(&c, &model);
        // One 1q moment (35 ns) + readout (860 ns) of decay.
        let t = 35e-9 + 860e-9;
        let gamma = 1.0 - (-t / 50e-6f64).exp();
        let expected = -(1.0 - gamma) + gamma;
        assert!(
            (eval.expectation(&ps("Z")) - expected).abs() < 1e-12,
            "got {}, expected {expected}",
            eval.expectation(&ps("Z"))
        );
    }

    #[test]
    fn relaxation_affects_idle_qubits() {
        // Qubit 1 idles while qubit 0 runs a long two-qubit-free circuit;
        // put qubit 1 in |1⟩ first: it must decay during the other gates.
        let mut c = Circuit::new(2);
        c.push(Gate::X(1));
        for _ in 0..50 {
            c.push(Gate::H(0));
        }
        let mut model = NoiseModel::noiseless(2);
        model.set_t1(1, 20e-6);
        let eval = DeviceEvaluator::run(&c, &model);
        // X(1) shares moment 0 with the first H; 50 moments total + readout.
        let idle_time = 50.0 * 35e-9 + 860e-9;
        let gamma = 1.0 - (-idle_time / 20e-6f64).exp();
        let expected = 2.0 * gamma - 1.0;
        assert!(
            (eval.expectation(&ps("IZ")) - expected).abs() < 1e-10,
            "got {}, expected {expected}",
            eval.expectation(&ps("IZ"))
        );
    }

    #[test]
    fn ground_state_is_robust_to_relaxation() {
        // The Clapton hypothesis in miniature: |0…0⟩ does not decay.
        let c = Circuit::new(2);
        let mut model = NoiseModel::noiseless(2);
        model.set_t1_uniform(10e-6);
        let eval = DeviceEvaluator::run(&c, &model);
        assert!((eval.expectation(&ps("ZZ")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_and_prep_factors_scale_energy() {
        let c = Circuit::new(1);
        let model = NoiseModel::uniform(1, 1e-2, 0.0, 5e-2);
        let eval = DeviceEvaluator::run(&c, &model);
        // ⟨Z⟩: readout only.
        assert!((eval.expectation(&ps("Z")) - (1.0 - 0.1)).abs() < 1e-12);
        // ⟨X⟩ on |0⟩ is 0 regardless.
        assert_eq!(eval.expectation(&ps("X")), 0.0);
    }
}
