//! Dense quantum simulation: the Qiskit Aer substitute of the Clapton stack.
//!
//! The paper evaluates its initializations under "realistic noise models
//! (not Clifford-only simulable)" (§5.2.2). This crate provides that
//! evaluation environment from scratch:
//!
//! * [`Complex64`] — minimal complex arithmetic (kept local; no external
//!   numerics dependency),
//! * [`StateVector`] — a dense statevector simulator for noiseless circuit
//!   evaluation and unitary-equivalence checks,
//! * [`DensityMatrix`] — a density-matrix simulator supporting depolarizing
//!   channels, **amplitude damping** (thermal relaxation — the non-Clifford
//!   channel the Clifford evaluators deliberately exclude) and analytic
//!   readout-error treatment,
//! * [`DeviceEvaluator`] — runs a circuit under a full [`NoiseModel`]
//!   (gate depolarizing + T1 decay per scheduled moment + readout) and
//!   returns Hamiltonian energies: the "device (model) evaluation" of
//!   Figures 2 and 5,
//! * [`ground_energy`] — Lanczos exact minimum eigenvalue (the paper's `E0`
//!   obtained "by diagonalizing the Hamiltonian", §5.2.1).
//!
//! Qubit convention: qubit `k` is bit `k` of the basis-state index
//! (little-endian), matching the first bit word of
//! `PauliString::expectation_basis_state` (the dense simulators are bounded
//! far below 64 qubits; the Pauli layer itself takes multi-word bit slices).

mod complex;
mod density;
mod eigen;
mod evaluate;
mod statevector;

pub use complex::Complex64;
pub use density::DensityMatrix;
pub use eigen::{dominant_eigenvalue, ground_energy};
pub use evaluate::DeviceEvaluator;
pub use statevector::StateVector;
