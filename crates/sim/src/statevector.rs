//! Dense statevector simulation.

use crate::Complex64;
use clapton_circuits::{Circuit, Gate};
use clapton_pauli::{PauliString, PauliSum};

/// A dense `2^N`-amplitude quantum state.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_sim::StateVector;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// let sv = StateVector::from_circuit(&c);
/// let zz = "ZZ".parse().unwrap();
/// assert!((sv.expectation(&zz) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 26` (amplitude vector would exceed 1 GiB).
    pub fn new(n: usize) -> StateVector {
        assert!(n <= 26, "statevector of {n} qubits is too large");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        StateVector { n, amps }
    }

    /// Runs a circuit on `|0…0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> StateVector {
        let mut sv = StateVector::new(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes (index bit `k` = qubit `k`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Applies a single gate.
    pub fn apply_gate(&mut self, gate: Gate) {
        match gate {
            Gate::Ry(q, a) => {
                let (c, s) = ((a / 2.0).cos(), (a / 2.0).sin());
                self.apply_1q(
                    q,
                    [
                        [Complex64::real(c), Complex64::real(-s)],
                        [Complex64::real(s), Complex64::real(c)],
                    ],
                );
            }
            Gate::Rz(q, a) => {
                self.apply_1q(
                    q,
                    [
                        [Complex64::cis(-a / 2.0), Complex64::ZERO],
                        [Complex64::ZERO, Complex64::cis(a / 2.0)],
                    ],
                );
            }
            Gate::H(q) => {
                let h = Complex64::real(std::f64::consts::FRAC_1_SQRT_2);
                self.apply_1q(q, [[h, h], [h, -h]]);
            }
            Gate::S(q) => self.apply_1q(
                q,
                [
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::I],
                ],
            ),
            Gate::Sdg(q) => self.apply_1q(
                q,
                [
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, -Complex64::I],
                ],
            ),
            Gate::X(q) => self.apply_1q(
                q,
                [
                    [Complex64::ZERO, Complex64::ONE],
                    [Complex64::ONE, Complex64::ZERO],
                ],
            ),
            Gate::Cx(c, t) => {
                let (bc, bt) = (1usize << c, 1usize << t);
                for i in 0..self.amps.len() {
                    if i & bc != 0 && i & bt == 0 {
                        self.amps.swap(i, i | bt);
                    }
                }
            }
            Gate::Swap(a, b) => {
                let (ba, bb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ba != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ba) | bb);
                    }
                }
            }
        }
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.n, "register size mismatch");
        for &g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    fn apply_1q(&mut self, q: usize, u: [[Complex64; 2]; 2]) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let (a0, a1) = (self.amps[i], self.amps[i | bit]);
                self.amps[i] = u[0][0] * a0 + u[0][1] * a1;
                self.amps[i | bit] = u[1][0] * a0 + u[1][1] * a1;
            }
        }
    }

    /// The expectation value `⟨ψ|P|ψ⟩` of a Hermitian Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if the string acts on a different number of qubits.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n, "qubit count mismatch");
        let (x_mask, z_mask, y_count) = masks(p);
        let phase0 = i_power(y_count);
        let mut acc = Complex64::ZERO;
        for s in 0..self.amps.len() {
            let sz = (s as u64) & z_mask;
            let sign = if sz.count_ones() & 1 == 1 { -1.0 } else { 1.0 };
            // P|s⟩ = i^{#Y}(-1)^{z·s}|s ⊕ x⟩ ⇒ ⟨ψ|P|ψ⟩ = Σ conj(ψ[s⊕x])·φ(s)·ψ[s]
            let target = s ^ (x_mask as usize);
            acc += self.amps[target].conj() * self.amps[s] * phase0.scale(sign);
        }
        debug_assert!(acc.im.abs() < 1e-9, "Hermitian expectation must be real");
        acc.re
    }

    /// The energy `⟨ψ|H|ψ⟩` of a Pauli-sum Hamiltonian.
    pub fn energy(&self, h: &PauliSum) -> f64 {
        h.iter().map(|(c, p)| c * self.expectation(p)).sum()
    }

    /// Applies `H` to the state: `|ψ⟩ ← H|ψ⟩` (not unitary; used by the
    /// Lanczos eigensolver).
    pub fn apply_pauli_sum(&self, h: &PauliSum, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.amps.len(), "output buffer size");
        out.fill(Complex64::ZERO);
        apply_pauli_sum_to(h, &self.amps, out);
    }

    /// The squared overlap `|⟨other|self⟩|²` (state fidelity for pure
    /// states).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "register size mismatch");
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += b.conj() * *a;
        }
        acc.norm_sqr()
    }

    /// The state norm (should be 1 for unitary evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Extracts `(x_mask, z_mask, #Y)` of a Pauli string for index arithmetic
/// (restricted to ≤ 64 qubits — dense simulation never exceeds that).
pub(crate) fn masks(p: &PauliString) -> (u64, u64, u32) {
    let x = p.x_words()[0];
    let z = p.z_words()[0];
    (x, z, (x & z).count_ones())
}

/// `i^k` as a complex number.
pub(crate) fn i_power(k: u32) -> Complex64 {
    match k & 3 {
        0 => Complex64::ONE,
        1 => Complex64::I,
        2 => -Complex64::ONE,
        _ => -Complex64::I,
    }
}

/// `out += H · v` for a Pauli-sum operator.
pub(crate) fn apply_pauli_sum_to(h: &PauliSum, v: &[Complex64], out: &mut [Complex64]) {
    for (c, p) in h.iter() {
        let (x_mask, z_mask, y_count) = masks(p);
        let phase0 = i_power(y_count).scale(c);
        for (s, &amp) in v.iter().enumerate() {
            let sign = if ((s as u64) & z_mask).count_ones() & 1 == 1 {
                -1.0
            } else {
                1.0
            };
            out[s ^ (x_mask as usize)] += amp * phase0.scale(sign);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_stabilizer::StabilizerState;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::{FRAC_PI_2, PI};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn fresh_state_is_zero() {
        let sv = StateVector::new(2);
        assert_eq!(sv.expectation(&ps("ZI")), 1.0);
        assert_eq!(sv.expectation(&ps("XI")), 0.0);
        assert!((sv.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips() {
        let mut sv = StateVector::new(1);
        sv.apply_gate(Gate::X(0));
        assert!((sv.expectation(&ps("Z")) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn ry_interpolates() {
        let mut sv = StateVector::new(1);
        sv.apply_gate(Gate::Ry(0, 0.7));
        // ⟨Z⟩ = cos θ, ⟨X⟩ = sin θ for Ry(θ)|0⟩.
        assert!((sv.expectation(&ps("Z")) - 0.7f64.cos()).abs() < 1e-12);
        assert!((sv.expectation(&ps("X")) - 0.7f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn rz_rotates_equator() {
        let mut sv = StateVector::new(1);
        sv.apply_gate(Gate::H(0));
        sv.apply_gate(Gate::Rz(0, FRAC_PI_2));
        // |+⟩ rotated by π/2 about Z: ⟨X⟩ → 0, ⟨Y⟩ → 1.
        assert!(sv.expectation(&ps("X")).abs() < 1e-12);
        assert!((sv.expectation(&ps("Y")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_matches_stabilizer() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let sv = StateVector::from_circuit(&c);
        for t in ["XX", "ZZ", "YY", "XY", "ZI", "IZ", "XI"] {
            let mut st = StabilizerState::new(2);
            st.apply_all(&c.to_clifford().unwrap());
            assert!(
                (sv.expectation(&ps(t)) - st.expectation(&ps(t))).abs() < 1e-12,
                "term {t}"
            );
        }
    }

    #[test]
    fn random_clifford_circuits_match_stabilizer() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..15 {
            let n = rng.gen_range(2..5);
            let mut c = Circuit::new(n);
            for _ in 0..20 {
                match rng.gen_range(0..6) {
                    0 => c.push(Gate::H(rng.gen_range(0..n))),
                    1 => c.push(Gate::S(rng.gen_range(0..n))),
                    2 => c.push(Gate::Ry(rng.gen_range(0..n), FRAC_PI_2)),
                    3 => c.push(Gate::Rz(rng.gen_range(0..n), PI)),
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        if rng.gen() {
                            c.push(Gate::Cx(a, b));
                        } else {
                            c.push(Gate::Swap(a, b));
                        }
                    }
                }
            }
            let sv = StateVector::from_circuit(&c);
            let mut st = StabilizerState::new(n);
            st.apply_all(&c.to_clifford().unwrap());
            for _ in 0..8 {
                let p = PauliString::random(n, &mut rng);
                assert!(
                    (sv.expectation(&p) - st.expectation(&p)).abs() < 1e-10,
                    "term {p} on {c}"
                );
            }
        }
    }

    #[test]
    fn swap_gate_exchanges() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(Gate::X(0));
        sv.apply_gate(Gate::Swap(0, 1));
        assert_eq!(sv.expectation(&ps("ZI")), 1.0);
        assert_eq!(sv.expectation(&ps("IZ")), -1.0);
    }

    #[test]
    fn energy_of_ising_plus_state() {
        // H = X0X1: on |++⟩ the energy is 1.
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        let sv = StateVector::from_circuit(&c);
        let h = PauliSum::from_terms(2, vec![(1.0, ps("XX"))]);
        assert!((sv.energy(&h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_pauli_sum_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 3;
        let mut c = Circuit::new(n);
        c.push(Gate::Ry(0, 0.4));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Ry(2, 1.1));
        let sv = StateVector::from_circuit(&c);
        let h = PauliSum::from_terms(
            n,
            (0..5).map(|_| (rng.gen_range(-1.0..1.0), PauliString::random(n, &mut rng))),
        );
        let mut hv = vec![Complex64::ZERO; 1 << n];
        sv.apply_pauli_sum(&h, &mut hv);
        // ⟨ψ|H|ψ⟩ via the matvec.
        let mut acc = Complex64::ZERO;
        for (a, b) in sv.amplitudes().iter().zip(&hv) {
            acc += a.conj() * *b;
        }
        assert!((acc.re - sv.energy(&h)).abs() < 1e-10);
        assert!(acc.im.abs() < 1e-10);
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal() {
        let a = StateVector::new(2);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-15);
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        let b = StateVector::from_circuit(&c);
        assert!(a.fidelity(&b) < 1e-15);
    }
}
