//! Minimal complex arithmetic (kept local to avoid external numerics
//! dependencies — see DESIGN.md).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Example
///
/// ```
/// use clapton_sim::Complex64;
///
/// let z = Complex64::new(1.0, 2.0) * Complex64::I;
/// assert_eq!(z, Complex64::new(-2.0, 1.0));
/// assert_eq!(z.conj().im, -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex64 {
        Complex64 { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Complex64 {
        Complex64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Complex64 {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Complex64 {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Complex64 {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Complex64 {
        Complex64::real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex64::new(2.0, 4.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!((z - Complex64::I).abs() < 1e-15);
    }
}
