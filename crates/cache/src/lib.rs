//! `clapton-cache`: a persistent content-addressed result store.
//!
//! The in-process [`clapton_eval::CachedEvaluator`] memo dies with its job;
//! this crate keeps the same pure genome → loss facts (and whole terminal
//! reports) on disk, so repeated traffic — a resubmitted spec, a second
//! suite run against the same registry, another shard worker — answers from
//! storage instead of recomputing.
//!
//! # Storage format
//!
//! The store lives in one directory (conventionally `<registry>/.cache`,
//! which [`clapton_runtime::RunRegistry`] skips when listing runs) holding
//! `shards` subdirectories. Each shard is a set of append-once *segment*
//! files: a segment is a concatenation of records, each record a
//! [`clapton_runtime::seal_envelope`]-wrapped compact JSON document
//! `{"ns":"<16-hex>","key":"<hex>","value":"..."}` followed by a newline.
//! Segments are written whole via the registry's tmp+rename discipline
//! (per-writer unique tmp names), so a reader never observes a partial
//! segment and racing writer processes each land their own complete file.
//!
//! On [`CacheStore::open`] every segment is scanned — newest last, so the
//! lexicographically latest write of a key wins — into an in-memory index.
//! A segment that fails envelope verification anywhere is quarantined
//! exactly like a corrupt artifact (renamed to `<name>.corrupt-<unix-ms>`,
//! counted in `clapton_cache_corrupt_segments_total`) and contributes no
//! entries; lookups keep working off the healthy segments.
//!
//! # Identity and safety
//!
//! Keys are content fingerprints supplied by the caller (loss namespaces
//! from `clapton_core::loss_namespace`, spec identities from the service),
//! and values are pure functions of their key. Racing inserts of the same
//! key are therefore benign: whichever segment sorts last wins, and it wins
//! bit-identically.
//!
//! # Eviction
//!
//! [`CacheConfig::max_bytes`] bounds the store (divided evenly across
//! shards). When a flush pushes a shard past its budget, its oldest
//! segments are deleted — never the one just written — and their index
//! entries dropped, counted in `clapton_cache_evictions_total`.

use clapton_eval::LossStore;
use clapton_runtime::{open_envelope_record, seal_envelope};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Directory name of the store under a run registry root. Dot-prefixed so
/// `RunRegistry::run_names` never lists it as a run.
pub const CACHE_DIR_NAME: &str = ".cache";

/// Pending records buffered in a shard before an automatic segment flush.
const AUTO_FLUSH_BYTES: usize = 512 * 1024;

/// Sizing knobs for a [`CacheStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total on-disk budget in bytes, divided evenly across shards. A shard
    /// over its slice evicts oldest segments first (the newest segment is
    /// always kept, so a single oversized record still caches).
    pub max_bytes: u64,
    /// Number of shard subdirectories (keys are hash-partitioned). More
    /// shards mean finer-grained eviction and less write contention.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_bytes: 256 * 1024 * 1024,
            shards: 8,
        }
    }
}

/// A point-in-time census of a [`CacheStore`] — the payload of the server's
/// `GET /v1/cache`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStoreStats {
    /// Distinct keys currently answerable.
    pub entries: u64,
    /// Bytes across live segment files (excluding unflushed buffers).
    pub bytes: u64,
    /// Live segment files.
    pub segments: u64,
    /// Lookups answered from the index since open.
    pub hits: u64,
    /// Lookups that found nothing since open.
    pub misses: u64,
    /// Fresh keys inserted since open.
    pub inserts: u64,
    /// Entries dropped by size-budget eviction since open.
    pub evictions: u64,
    /// Segments quarantined for failing envelope verification since open.
    pub corrupt_segments: u64,
}

/// One record as serialized into a segment.
#[derive(Debug, Serialize, Deserialize)]
struct CacheRecord {
    ns: String,
    key: String,
    value: String,
}

/// Where an indexed value currently lives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Home {
    /// Buffered in memory, not yet flushed to a segment.
    Pending,
    /// In the named segment file.
    Segment(String),
}

#[derive(Debug, Default)]
struct Shard {
    /// `(ns, key)` → (value, home).
    index: HashMap<(u64, Vec<u8>), (String, Home)>,
    /// Serialized records awaiting the next segment flush.
    pending: Vec<u8>,
    pending_keys: Vec<(u64, Vec<u8>)>,
    /// Live segments as `(file name, bytes)`, sorted oldest first.
    segments: Vec<(String, u64)>,
}

impl Shard {
    fn segment_bytes(&self) -> u64 {
        self.segments.iter().map(|&(_, b)| b).sum()
    }
}

/// Process-wide telemetry mirrors of the store counters.
struct CacheMetrics {
    hits: std::sync::Arc<clapton_telemetry::Counter>,
    misses: std::sync::Arc<clapton_telemetry::Counter>,
    inserts: std::sync::Arc<clapton_telemetry::Counter>,
    evictions: std::sync::Arc<clapton_telemetry::Counter>,
    corrupt_segments: std::sync::Arc<clapton_telemetry::Counter>,
    size_bytes: std::sync::Arc<clapton_telemetry::Gauge>,
    entries: std::sync::Arc<clapton_telemetry::Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    use std::sync::OnceLock;
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = clapton_telemetry::registry();
        CacheMetrics {
            hits: r.counter(
                "clapton_cache_hits_total",
                "Persistent-store lookups answered from the index",
            ),
            misses: r.counter(
                "clapton_cache_misses_total",
                "Persistent-store lookups that found nothing",
            ),
            inserts: r.counter(
                "clapton_cache_inserts_total",
                "Fresh keys inserted into the persistent store",
            ),
            evictions: r.counter(
                "clapton_cache_evictions_total",
                "Entries dropped by size-budget eviction",
            ),
            corrupt_segments: r.counter(
                "clapton_cache_corrupt_segments_total",
                "Segments quarantined for failing envelope verification",
            ),
            size_bytes: r.gauge(
                "clapton_cache_size_bytes",
                "Bytes across live persistent-store segments",
            ),
            entries: r.gauge(
                "clapton_cache_entries",
                "Distinct keys in the persistent store",
            ),
        }
    })
}

/// The persistent content-addressed store. Cheap to share (`Arc` it);
/// all methods take `&self`.
#[derive(Debug)]
pub struct CacheStore {
    root: PathBuf,
    config: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    corrupt_segments: AtomicU64,
}

/// FNV-1a 64 over `ns` then `key` — shard selector.
fn shard_hash(ns: u64, key: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ns.to_le_bytes().iter().chain(key) {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    (0..text.len() / 2)
        .map(|i| u8::from_str_radix(&text[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn unix_millis() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// A fresh segment file name: lexicographic order is creation order, and
/// the `(pid, seq)` suffix keeps racing writer processes from colliding.
fn segment_name() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "seg-{:015}-{:010}-{:06}.seg",
        unix_millis(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

impl CacheStore {
    /// Opens (creating if needed) the store rooted at `root`, scanning every
    /// live segment into the in-memory index. Corrupt segments are
    /// quarantined aside and contribute nothing.
    ///
    /// # Errors
    ///
    /// Real I/O failures only; corruption is handled, not an error.
    pub fn open(root: impl AsRef<Path>, config: CacheConfig) -> io::Result<CacheStore> {
        assert!(config.shards > 0, "a cache needs at least one shard");
        let root = root.as_ref().to_path_buf();
        let store = CacheStore {
            shards: (0..config.shards).map(|_| Mutex::default()).collect(),
            root,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_segments: AtomicU64::new(0),
        };
        for i in 0..config.shards {
            let dir = store.shard_dir(i);
            fs::create_dir_all(&dir)?;
            let mut names: Vec<String> = fs::read_dir(&dir)?
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    (name.starts_with("seg-") && name.ends_with(".seg")).then_some(name)
                })
                .collect();
            names.sort();
            let mut shard = store.shards[i].lock().expect("shard lock");
            for name in names {
                store.scan_segment(&dir, &name, &mut shard)?;
            }
        }
        Ok(store)
    }

    /// Opens the conventional store location under a run registry root:
    /// `<registry>/.cache`.
    pub fn open_under_registry(
        registry_root: impl AsRef<Path>,
        config: CacheConfig,
    ) -> io::Result<CacheStore> {
        CacheStore::open(registry_root.as_ref().join(CACHE_DIR_NAME), config)
    }

    /// The store's root directory.
    pub fn path(&self) -> &Path {
        &self.root
    }

    fn shard_dir(&self, i: usize) -> PathBuf {
        self.root.join(format!("shard-{i}"))
    }

    /// Scans one segment into `shard`'s index, or quarantines it whole on
    /// the first verification failure (its records — even ones that scanned
    /// clean — are discarded, matching artifact quarantine semantics).
    fn scan_segment(&self, dir: &Path, name: &str, shard: &mut Shard) -> io::Result<()> {
        let bytes = match fs::read(dir.join(name)) {
            Ok(b) => b,
            // A racing process may have evicted the segment between listing
            // and reading; nothing to index.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut parsed: Vec<(u64, Vec<u8>, String)> = Vec::new();
        let mut pos = 0;
        let mut detail: Option<String> = None;
        while pos < bytes.len() {
            if bytes[pos] == b'\n' {
                pos += 1;
                continue;
            }
            match open_envelope_record(&bytes[pos..]) {
                Ok((payload, consumed)) => {
                    let text = std::str::from_utf8(payload)
                        .map_err(|e| format!("record payload is not UTF-8: {e}"));
                    match text.and_then(|t| {
                        serde_json::from_str::<CacheRecord>(t)
                            .map_err(|e| format!("record payload does not parse: {e}"))
                    }) {
                        Ok(record) => {
                            let ns = u64::from_str_radix(&record.ns, 16).ok();
                            let key = hex_decode(&record.key);
                            match (ns, key) {
                                (Some(ns), Some(key)) => parsed.push((ns, key, record.value)),
                                _ => {
                                    detail = Some("record ns/key is not valid hex".to_string());
                                    break;
                                }
                            }
                        }
                        Err(e) => {
                            detail = Some(e);
                            break;
                        }
                    }
                    pos += consumed;
                }
                Err(e) => {
                    detail = Some(e);
                    break;
                }
            }
        }
        if detail.is_some() {
            let quarantined = format!("{name}.corrupt-{}", unix_millis());
            match fs::rename(dir.join(name), dir.join(&quarantined)) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
                _ => {}
            }
            self.corrupt_segments.fetch_add(1, Ordering::Relaxed);
            cache_metrics().corrupt_segments.inc();
            return Ok(());
        }
        let size = bytes.len() as u64;
        for (ns, key, value) in parsed {
            shard
                .index
                .insert((ns, key), (value, Home::Segment(name.to_string())));
        }
        shard.segments.push((name.to_string(), size));
        Ok(())
    }

    /// Looks up the value stored under `(ns, key)`.
    pub fn get(&self, ns: u64, key: &[u8]) -> Option<String> {
        let shard = self.shard_for(ns, key).lock().expect("shard lock");
        match shard.index.get(&(ns, key.to_vec())) {
            Some((value, _)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cache_metrics().hits.inc();
                Some(value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cache_metrics().misses.inc();
                None
            }
        }
    }

    /// Inserts `value` under `(ns, key)`. A key already present is a no-op
    /// (values are pure functions of their key, so a differing value can
    /// only mean a caller bug — the first write wins within a process).
    /// The record is buffered; it reaches disk on the next [`flush`]
    /// (automatic once a shard buffers [`AUTO_FLUSH_BYTES`]).
    ///
    /// [`flush`]: CacheStore::flush
    pub fn put(&self, ns: u64, key: &[u8], value: &str) {
        let shard_slot = self.shard_for(ns, key);
        let mut shard = shard_slot.lock().expect("shard lock");
        let index_key = (ns, key.to_vec());
        if shard.index.contains_key(&index_key) {
            return;
        }
        let record = CacheRecord {
            ns: format!("{ns:016x}"),
            key: hex_encode(key),
            value: value.to_string(),
        };
        let payload = serde_json::to_string(&record)
            .expect("record serializes")
            .into_bytes();
        let mut sealed = seal_envelope(&payload);
        sealed.push(b'\n');
        shard.pending.extend_from_slice(&sealed);
        shard.pending_keys.push(index_key.clone());
        shard
            .index
            .insert(index_key, (value.to_string(), Home::Pending));
        self.inserts.fetch_add(1, Ordering::Relaxed);
        cache_metrics().inserts.inc();
        if shard.pending.len() >= AUTO_FLUSH_BYTES {
            // Best-effort: an I/O failure here surfaces on the explicit
            // flush; the entry stays answerable from memory meanwhile.
            let _ = self.flush_shard(&mut shard, self.shard_index(ns, key));
        }
    }

    /// Writes every buffered record out as new segments (one per dirty
    /// shard, atomic tmp+rename) and applies the eviction budget.
    ///
    /// # Errors
    ///
    /// The first I/O failure; earlier shards stay flushed.
    pub fn flush(&self) -> io::Result<()> {
        for i in 0..self.shards.len() {
            let mut shard = self.shards[i].lock().expect("shard lock");
            self.flush_shard(&mut shard, i)?;
        }
        Ok(())
    }

    fn shard_index(&self, ns: u64, key: &[u8]) -> usize {
        (shard_hash(ns, key) % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, ns: u64, key: &[u8]) -> &Mutex<Shard> {
        &self.shards[self.shard_index(ns, key)]
    }

    fn flush_shard(&self, shard: &mut Shard, i: usize) -> io::Result<()> {
        if !shard.pending.is_empty() {
            let dir = self.shard_dir(i);
            let name = segment_name();
            let tmp = format!(
                "{name}.{}-{}.tmp",
                std::process::id(),
                // The segment name is already per-(process, call) unique;
                // reuse its uniqueness for the tmp sibling.
                shard.segments.len()
            );
            fs::write(dir.join(&tmp), &shard.pending)?;
            fs::rename(dir.join(&tmp), dir.join(&name))?;
            let size = shard.pending.len() as u64;
            shard.pending.clear();
            for index_key in std::mem::take(&mut shard.pending_keys) {
                if let Some((_, home)) = shard.index.get_mut(&index_key) {
                    if *home == Home::Pending {
                        *home = Home::Segment(name.clone());
                    }
                }
            }
            shard.segments.push((name, size));
        }
        // Evict oldest segments past the per-shard budget slice, always
        // keeping the newest so one oversized record still caches.
        let budget = self.config.max_bytes / self.shards.len() as u64;
        while shard.segments.len() > 1 && shard.segment_bytes() > budget {
            let (victim, _) = shard.segments.remove(0);
            match fs::remove_file(self.shard_dir(i).join(&victim)) {
                Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
                _ => {}
            }
            let home = Home::Segment(victim);
            let before = shard.index.len();
            shard.index.retain(|_, (_, h)| *h != home);
            let dropped = (before - shard.index.len()) as u64;
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            cache_metrics().evictions.add(dropped);
        }
        Ok(())
    }

    /// Deletes every entry and segment, returning how many entries were
    /// dropped — the server's `DELETE /v1/cache`.
    ///
    /// # Errors
    ///
    /// The first I/O failure encountered while unlinking segments.
    pub fn clear(&self) -> io::Result<u64> {
        let mut cleared = 0;
        for i in 0..self.shards.len() {
            let mut shard = self.shards[i].lock().expect("shard lock");
            cleared += shard.index.len() as u64;
            shard.index.clear();
            shard.pending.clear();
            shard.pending_keys.clear();
            for (name, _) in std::mem::take(&mut shard.segments) {
                match fs::remove_file(self.shard_dir(i).join(&name)) {
                    Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
                    _ => {}
                }
            }
        }
        Ok(cleared)
    }

    /// A point-in-time census. Also refreshes the
    /// `clapton_cache_size_bytes` / `clapton_cache_entries` gauges.
    pub fn stats(&self) -> CacheStoreStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        let mut segments = 0u64;
        for slot in &self.shards {
            let shard = slot.lock().expect("shard lock");
            entries += shard.index.len() as u64;
            bytes += shard.segment_bytes() + shard.pending.len() as u64;
            segments += shard.segments.len() as u64;
        }
        let stats = CacheStoreStats {
            entries,
            bytes,
            segments,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_segments: self.corrupt_segments.load(Ordering::Relaxed),
        };
        let metrics = cache_metrics();
        metrics.size_bytes.set(stats.bytes as f64);
        metrics.entries.set(stats.entries as f64);
        stats
    }

    /// Typed convenience: a JSON value under `(ns, key)`. A stored string
    /// that fails to parse as `T` reads as a miss.
    pub fn get_json<T: serde::de::DeserializeOwned>(&self, ns: u64, key: &[u8]) -> Option<T> {
        self.get(ns, key)
            .and_then(|text| serde_json::from_str(&text).ok())
    }

    /// Typed convenience: stores `value` serialized as compact JSON.
    pub fn put_json<T: Serialize>(&self, ns: u64, key: &[u8], value: &T) {
        let text = serde_json::to_string(value).expect("value serializes");
        self.put(ns, key, &text);
    }
}

impl Drop for CacheStore {
    fn drop(&mut self) {
        // Best-effort durability for buffered records; an explicit flush is
        // the reliable path.
        let _ = self.flush();
    }
}

/// Losses are stored as the 16-hex digits of [`f64::to_bits`] — exact,
/// locale-free, bit-stable round-trips.
impl LossStore for CacheStore {
    fn load(&self, ns: u64, key: &[u8]) -> Option<f64> {
        let text = self.get(ns, key)?;
        u64::from_str_radix(&text, 16).ok().map(f64::from_bits)
    }

    fn save(&self, ns: u64, key: &[u8], loss: f64) {
        self.put(ns, key, &format!("{:016x}", loss.to_bits()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "clapton-cache-{tag}-{}-{}",
            std::process::id(),
            unix_millis()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let root = scratch("roundtrip");
        let store = CacheStore::open(&root, CacheConfig::default()).unwrap();
        assert_eq!(store.get(7, b"genome"), None);
        store.put(7, b"genome", "value-a");
        assert_eq!(store.get(7, b"genome").as_deref(), Some("value-a"));
        store.save(9, b"loss-key", -1.25);
        store.flush().unwrap();
        drop(store);

        let reopened = CacheStore::open(&root, CacheConfig::default()).unwrap();
        assert_eq!(reopened.get(7, b"genome").as_deref(), Some("value-a"));
        assert_eq!(reopened.load(9, b"loss-key"), Some(-1.25));
        assert_eq!(reopened.get(7, b"other"), None);
        let stats = reopened.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn racing_writers_converge_to_one_bit_identical_entry() {
        // Two store handles over the same root — the multi-process picture —
        // insert the same pure key and flush in both orders.
        let root = scratch("race");
        let a = CacheStore::open(&root, CacheConfig::default()).unwrap();
        let b = CacheStore::open(&root, CacheConfig::default()).unwrap();
        a.save(3, b"shared", 0.5);
        b.save(3, b"shared", 0.5);
        b.flush().unwrap();
        a.flush().unwrap();
        drop(a);
        drop(b);

        let merged = CacheStore::open(&root, CacheConfig::default()).unwrap();
        // Exactly one visible entry, and it reads bit-identically.
        assert_eq!(merged.stats().entries, 1);
        assert_eq!(
            merged.load(3, b"shared").map(f64::to_bits),
            Some(0.5f64.to_bits())
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_without_failing_lookups() {
        let root = scratch("corrupt");
        let store = CacheStore::open(
            &root,
            CacheConfig {
                shards: 1,
                ..CacheConfig::default()
            },
        )
        .unwrap();
        store.put(1, b"early", "kept-in-seg-1");
        store.flush().unwrap();
        store.put(1, b"victim", "doomed");
        store.flush().unwrap();
        drop(store);

        // Garble the newer segment's payload bytes.
        let shard = root.join("shard-0");
        let mut names: Vec<String> = fs::read_dir(&shard)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names.len(), 2);
        let victim = shard.join(&names[1]);
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();

        let reopened = CacheStore::open(
            &root,
            CacheConfig {
                shards: 1,
                ..CacheConfig::default()
            },
        )
        .unwrap();
        // The healthy segment still answers; the corrupt one reads as a miss
        // and was renamed aside.
        assert_eq!(reopened.get(1, b"early").as_deref(), Some("kept-in-seg-1"));
        assert_eq!(reopened.get(1, b"victim"), None);
        assert_eq!(reopened.stats().corrupt_segments, 1);
        let quarantined = fs::read_dir(&shard)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().contains(".corrupt-"));
        assert!(quarantined, "corrupt segment renamed aside");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn eviction_respects_the_size_budget() {
        let root = scratch("evict");
        let config = CacheConfig {
            max_bytes: 2048,
            shards: 1,
        };
        let store = CacheStore::open(&root, config).unwrap();
        // Each flush lands one ~600-byte segment; the 2 KiB budget forces
        // the oldest out.
        for i in 0..8u32 {
            let key = format!("key-{i}");
            store.put(11, key.as_bytes(), &"x".repeat(500));
            store.flush().unwrap();
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "budget forced evictions");
        assert!(
            stats.bytes <= config.max_bytes,
            "{} bytes exceeds the {} budget",
            stats.bytes,
            config.max_bytes
        );
        // Newest entry still cached; the very first was evicted.
        assert!(store.get(11, b"key-7").is_some());
        assert_eq!(store.get(11, b"key-0"), None);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn clear_empties_the_store_on_disk_and_in_memory() {
        let root = scratch("clear");
        let store = CacheStore::open(&root, CacheConfig::default()).unwrap();
        store.put(2, b"a", "1");
        store.put(2, b"b", "2");
        store.flush().unwrap();
        assert_eq!(store.clear().unwrap(), 2);
        assert_eq!(store.get(2, b"a"), None);
        assert_eq!(store.stats().segments, 0);
        let reopened = CacheStore::open(&root, CacheConfig::default()).unwrap();
        assert_eq!(reopened.stats().entries, 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn json_helpers_round_trip_typed_values() {
        let root = scratch("json");
        let store = CacheStore::open(&root, CacheConfig::default()).unwrap();
        store.put_json(5, b"doc", &vec![1u64, 2, 3]);
        assert_eq!(store.get_json::<Vec<u64>>(5, b"doc"), Some(vec![1, 2, 3]));
        assert_eq!(store.get_json::<Vec<u64>>(5, b"missing"), None);
        fs::remove_dir_all(&root).unwrap();
    }
}
