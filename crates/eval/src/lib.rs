//! The batched loss-evaluation API.
//!
//! Clapton's runtime is dominated by loss evaluation: every GA individual
//! triggers a full Hamiltonian conjugation plus a noisy-expectation sweep.
//! This crate defines the execution model for that hot path:
//!
//! * [`LossEvaluator`] — the pluggable evaluation interface. Implementors
//!   provide genome-at-a-time [`LossEvaluator::evaluate`]; the provided
//!   [`LossEvaluator::evaluate_population`] gives callers a population-batch
//!   entry point that implementations (or wrappers) can accelerate.
//! * [`ParallelEvaluator`] — fans a population batch out over worker threads
//!   (order-preserving, bit-identical to the sequential path because losses
//!   are pure functions of the genome).
//! * [`CachedEvaluator`] — a genome → loss memo table with hit/miss
//!   statistics. Duplicate genomes recur heavily across the engine's
//!   mix-and-restart rounds, so this turns a large fraction of evaluations
//!   into hash lookups.
//! * [`FnEvaluator`] — adapts a plain closure for tests and toy problems.
//!
//! The combinators nest: `CachedEvaluator<ParallelEvaluator<&E>>` is the
//! engine's default stack (cache lookup first, misses evaluated as one
//! parallel batch).

use clapton_telemetry::metrics::{registry, Counter};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide genome-cache counters (every `CachedEvaluator` instance
/// aggregates into the same series).
struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| CacheMetrics {
        hits: registry().counter(
            "clapton_eval_cache_hits_total",
            "Genome-cache lookups answered from the memo table",
        ),
        misses: registry().counter(
            "clapton_eval_cache_misses_total",
            "Genome-cache lookups that required a fresh loss evaluation",
        ),
        inserts: registry().counter(
            "clapton_eval_cache_inserts_total",
            "Distinct genomes inserted into the memo table",
        ),
    })
}

/// A loss function over integer genomes, evaluated one genome or one
/// population at a time.
///
/// `Sync` is a supertrait: evaluators are shared across GA instance threads
/// and population-batch workers. Implementations must be pure — the loss of
/// a genome may be computed once, on any thread, and reused.
pub trait LossEvaluator: Sync {
    /// The loss of one genome (lower is better).
    fn evaluate(&self, genome: &[u8]) -> f64;

    /// The losses of a whole population, in order.
    ///
    /// The default implementation evaluates sequentially; wrappers such as
    /// [`ParallelEvaluator`] and [`CachedEvaluator`] override the execution
    /// strategy while preserving results bit-for-bit.
    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }

    /// A canonical cache key for a genome: two genomes with the same key are
    /// guaranteed to have the same loss.
    ///
    /// The default is the genome itself. Evaluators that ignore some genes
    /// (e.g. frozen/masked ranges) override this so memo tables deduplicate
    /// across equivalent genomes instead of recomputing each variant.
    fn canonical_key(&self, genome: &[u8]) -> Vec<u8> {
        genome.to_vec()
    }
}

/// A persistent genome → loss tier behind the in-memory memo: disk caches,
/// shared stores, anything that can answer a canonical key with a
/// previously computed loss.
///
/// Lookups are namespaced: `ns` fingerprints everything that shapes the
/// loss besides the genome (Hamiltonian, noise model, evaluator backend),
/// so one store safely serves many problems. Implementations must be
/// **pure and lossless**: a `load` hit must return the exact bits a prior
/// `save` stored — the caller counts a disk hit as a fresh evaluation, so
/// any drift would silently corrupt deterministic resume.
///
/// `save` is fire-and-forget: persistence failures must be swallowed (the
/// loss is already known; losing the write costs a future recompute, never
/// correctness).
pub trait LossStore: Send + Sync + std::fmt::Debug {
    /// The stored loss for `key` in namespace `ns`, if any.
    fn load(&self, ns: u64, key: &[u8]) -> Option<f64>;

    /// Records `loss` for `key` in namespace `ns` (best-effort).
    fn save(&self, ns: u64, key: &[u8], loss: f64);
}

impl<E: LossEvaluator + ?Sized> LossEvaluator for &E {
    fn evaluate(&self, genome: &[u8]) -> f64 {
        (**self).evaluate(genome)
    }

    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        (**self).evaluate_population(genomes)
    }

    fn canonical_key(&self, genome: &[u8]) -> Vec<u8> {
        (**self).canonical_key(genome)
    }
}

/// Adapts a closure to [`LossEvaluator`].
///
/// # Example
///
/// ```
/// use clapton_eval::{FnEvaluator, LossEvaluator};
///
/// let ones = FnEvaluator::new(|g: &[u8]| g.iter().filter(|&&x| x != 0).count() as f64);
/// assert_eq!(ones.evaluate(&[1, 0, 2]), 2.0);
/// assert_eq!(ones.evaluate_population(&[vec![0, 0], vec![3, 3]]), vec![0.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct FnEvaluator<F: Fn(&[u8]) -> f64 + Sync> {
    f: F,
}

impl<F: Fn(&[u8]) -> f64 + Sync> FnEvaluator<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> FnEvaluator<F> {
        FnEvaluator { f }
    }
}

impl<F: Fn(&[u8]) -> f64 + Sync> LossEvaluator for FnEvaluator<F> {
    fn evaluate(&self, genome: &[u8]) -> f64 {
        (self.f)(genome)
    }
}

/// Population-parallel batch evaluation over scoped worker threads.
///
/// Splits each batch into contiguous chunks, one per worker, and reassembles
/// results in order — the output is bit-identical to sequential evaluation
/// because [`LossEvaluator`] implementations are pure.
#[derive(Debug, Clone)]
pub struct ParallelEvaluator<E> {
    inner: E,
    threads: usize,
}

impl<E: LossEvaluator> ParallelEvaluator<E> {
    /// Wraps `inner`, using all available cores per batch.
    pub fn new(inner: E) -> ParallelEvaluator<E> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelEvaluator::with_threads(inner, threads)
    }

    /// Wraps `inner` with an explicit worker count (`1` evaluates inline,
    /// with no thread spawns).
    pub fn with_threads(inner: E, threads: usize) -> ParallelEvaluator<E> {
        ParallelEvaluator {
            inner,
            threads: threads.max(1),
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: LossEvaluator> LossEvaluator for ParallelEvaluator<E> {
    fn evaluate(&self, genome: &[u8]) -> f64 {
        self.inner.evaluate(genome)
    }

    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        // Spawning threads for tiny batches costs more than it saves.
        const MIN_CHUNK: usize = 4;
        let workers = self.threads.min(genomes.len().div_ceil(MIN_CHUNK)).max(1);
        if workers == 1 {
            return self.inner.evaluate_population(genomes);
        }
        let chunk_len = genomes.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = genomes
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(|| self.inner.evaluate_population(chunk)))
                .collect();
            let mut out = Vec::with_capacity(genomes.len());
            for handle in handles {
                out.extend(handle.join().expect("population evaluation worker"));
            }
            out
        })
    }

    fn canonical_key(&self, genome: &[u8]) -> Vec<u8> {
        self.inner.canonical_key(genome)
    }
}

/// Cache statistics of a [`CachedEvaluator`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Evaluations answered from the memo table (including in-batch
    /// duplicates and concurrent racing duplicates).
    pub hits: u64,
    /// Evaluations that inserted a new memo entry — i.e. distinct canonical
    /// keys actually computed.
    pub misses: u64,
}

impl CacheStats {
    /// Total evaluations requested.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (`0` when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }
}

/// A genome → loss memo table in front of another evaluator.
///
/// Batch evaluation answers hits from the table, deduplicates the remaining
/// genomes, and forwards one batch of unique misses to the wrapped
/// evaluator — so a population with heavy duplication (the norm across
/// mix-and-restart rounds) costs only its unique genomes.
///
/// Entries are keyed by [`LossEvaluator::canonical_key`], so evaluators that
/// ignore some genes (frozen ranges) deduplicate across equivalent genomes.
///
/// Thread-safe: the table is shared behind a mutex, statistics are atomic.
/// Because losses are pure, a cache hit is always bit-identical to
/// re-evaluation, regardless of which thread populated the entry. A miss is
/// counted only when the computed loss inserts a **new** table entry, so
/// `stats().misses` equals the number of distinct keys memoized — stable and
/// deterministic even when concurrent threads race to evaluate the same
/// genome (the racing duplicates count as hits).
#[derive(Debug)]
pub struct CachedEvaluator<E> {
    inner: E,
    table: Mutex<HashMap<Vec<u8>, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional persistent tier behind the memo, with the namespace this
    /// evaluator's lookups live in: memo miss → disk lookup → compute.
    /// A disk hit is recorded exactly like a fresh computation (it inserts
    /// a new memo entry and counts as a miss), so [`CacheStats`] — and
    /// everything serialized from it — is bit-identical whether a loss came
    /// from disk or from the evaluator.
    store: Option<(Arc<dyn LossStore>, u64)>,
}

impl<E: LossEvaluator> CachedEvaluator<E> {
    /// Wraps `inner` with an empty table.
    pub fn new(inner: E) -> CachedEvaluator<E> {
        CachedEvaluator {
            inner,
            table: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store: None,
        }
    }

    /// Attaches a persistent tier behind the memo: lookups that miss the
    /// in-memory table consult `store` (under namespace `ns`) before the
    /// wrapped evaluator runs, and freshly computed losses are written back.
    pub fn with_store(mut self, store: Arc<dyn LossStore>, ns: u64) -> CachedEvaluator<E> {
        self.store = Some((store, ns));
        self
    }

    /// Rebuilds a cache from a [`CachedEvaluator::export`] snapshot,
    /// restoring memoized losses and statistics bit-identically — the
    /// checkpoint/resume path of the GA engine.
    pub fn from_snapshot(
        inner: E,
        entries: Vec<(Vec<u8>, f64)>,
        stats: CacheStats,
    ) -> CachedEvaluator<E> {
        CachedEvaluator {
            inner,
            table: Mutex::new(entries.into_iter().collect()),
            hits: AtomicU64::new(stats.hits),
            misses: AtomicU64::new(stats.misses),
            store: None,
        }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct genomes memoized.
    pub fn entries(&self) -> usize {
        self.table.lock().expect("cache lock").len()
    }

    /// The memo table as `(canonical key, loss)` pairs, sorted by key so the
    /// snapshot is deterministic (hash-map iteration order is not).
    pub fn export(&self) -> Vec<(Vec<u8>, f64)> {
        let table = self.table.lock().expect("cache lock");
        let mut entries: Vec<(Vec<u8>, f64)> = table.iter().map(|(k, &v)| (k.clone(), v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

impl<E: LossEvaluator> CachedEvaluator<E> {
    /// Records `loss` for `key`, crediting a miss only for a fresh entry
    /// (concurrent duplicates reconcile to hits — see the type docs).
    fn record(&self, table: &mut HashMap<Vec<u8>, f64>, key: Vec<u8>, loss: f64) {
        if table.insert(key, loss).is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let metrics = cache_metrics();
            metrics.misses.inc();
            metrics.inserts.inc();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().hits.inc();
        }
    }
}

impl<E: LossEvaluator> LossEvaluator for CachedEvaluator<E> {
    fn evaluate(&self, genome: &[u8]) -> f64 {
        let key = self.inner.canonical_key(genome);
        if let Some(&loss) = self.table.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cache_metrics().hits.inc();
            return loss;
        }
        // The lock is NOT held while the loss runs: concurrent threads may
        // race to evaluate the same genome, but purity makes the duplicate
        // work harmless and the stored value identical.
        if let Some((store, ns)) = &self.store {
            if let Some(loss) = store.load(*ns, &key) {
                let mut table = self.table.lock().expect("cache lock");
                self.record(&mut table, key, loss);
                return loss;
            }
        }
        let loss = self.inner.evaluate(genome);
        if let Some((store, ns)) = &self.store {
            store.save(*ns, &key, loss);
        }
        let mut table = self.table.lock().expect("cache lock");
        self.record(&mut table, key, loss);
        loss
    }

    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        let mut out = vec![0.0f64; genomes.len()];
        // One representative genome per distinct pending key; duplicates
        // within the batch are evaluated once.
        let mut pending: Vec<(Vec<u8>, Vec<u8>)> = Vec::new(); // (key, genome)
        let mut pending_slots: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        {
            let table = self.table.lock().expect("cache lock");
            for (i, genome) in genomes.iter().enumerate() {
                let key = self.inner.canonical_key(genome);
                if let Some(&loss) = table.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    cache_metrics().hits.inc();
                    out[i] = loss;
                } else {
                    let slots = pending_slots.entry(key.clone()).or_default();
                    if slots.is_empty() {
                        pending.push((key, genome.clone()));
                    } else {
                        // In-batch duplicate of a pending key.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        cache_metrics().hits.inc();
                    }
                    slots.push(i);
                }
            }
        }
        if pending.is_empty() {
            return out;
        }
        // Second tier: the persistent store. Disk hits are recorded like
        // computed losses (fresh memo inserts), so [`CacheStats`] and every
        // downstream round-stats artifact stay bit-identical cold vs warm.
        let mut disk_hits: Vec<(Vec<u8>, f64)> = Vec::new();
        if let Some((store, ns)) = &self.store {
            pending.retain(|(key, _)| match store.load(*ns, key) {
                Some(loss) => {
                    disk_hits.push((key.clone(), loss));
                    false
                }
                None => true,
            });
        }
        let representatives: Vec<Vec<u8>> = pending.iter().map(|(_, g)| g.clone()).collect();
        let losses = if representatives.is_empty() {
            Vec::new()
        } else {
            self.inner.evaluate_population(&representatives)
        };
        if let Some((store, ns)) = &self.store {
            for ((key, _), loss) in pending.iter().zip(&losses) {
                store.save(*ns, key, *loss);
            }
        }
        let mut table = self.table.lock().expect("cache lock");
        for (key, loss) in disk_hits {
            for &slot in &pending_slots[&key] {
                out[slot] = loss;
            }
            self.record(&mut table, key, loss);
        }
        for ((key, _), loss) in pending.into_iter().zip(&losses) {
            for &slot in &pending_slots[&key] {
                out[slot] = *loss;
            }
            self.record(&mut table, key, *loss);
        }
        out
    }

    fn canonical_key(&self, genome: &[u8]) -> Vec<u8> {
        self.inner.canonical_key(genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A deterministic toy loss that counts its own invocations.
    struct CountingLoss {
        calls: AtomicUsize,
    }

    impl CountingLoss {
        fn new() -> CountingLoss {
            CountingLoss {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl LossEvaluator for CountingLoss {
        fn evaluate(&self, genome: &[u8]) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            genome
                .iter()
                .enumerate()
                .map(|(i, &g)| (g as f64) * (i as f64 + 1.0).sqrt())
                .sum()
        }
    }

    fn population(n: usize, genes: usize) -> Vec<Vec<u8>> {
        assert!(
            n <= 256,
            "first gene tags the member to keep genomes distinct"
        );
        (0..n)
            .map(|i| {
                (0..genes)
                    .map(|j| {
                        if j == 0 {
                            i as u8
                        } else {
                            ((i * 7 + j * 3) % 4) as u8
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn default_population_matches_sequential() {
        let eval = CountingLoss::new();
        let pop = population(17, 9);
        let batched = eval.evaluate_population(&pop);
        let sequential: Vec<f64> = pop.iter().map(|g| eval.evaluate(g)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let base = CountingLoss::new();
        let pop = population(103, 12);
        let sequential = base.evaluate_population(&pop);
        for threads in [1, 2, 3, 8, 64] {
            let par = ParallelEvaluator::with_threads(CountingLoss::new(), threads);
            assert_eq!(
                par.evaluate_population(&pop),
                sequential,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn parallel_handles_empty_and_tiny_batches() {
        let par = ParallelEvaluator::with_threads(CountingLoss::new(), 8);
        assert_eq!(par.evaluate_population(&[]), Vec::<f64>::new());
        let one = population(1, 4);
        assert_eq!(par.evaluate_population(&one), vec![par.evaluate(&one[0])]);
    }

    #[test]
    fn cache_deduplicates_within_and_across_batches() {
        let cached = CachedEvaluator::new(CountingLoss::new());
        let mut pop = population(10, 6);
        pop.extend(pop.clone()); // every genome duplicated in-batch
        let first = cached.evaluate_population(&pop);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 10);
        assert_eq!(cached.stats().misses, 10);
        assert_eq!(cached.stats().hits, 10);
        // Second batch: all hits.
        let second = cached.evaluate_population(&pop);
        assert_eq!(first, second);
        assert_eq!(cached.inner().calls.load(Ordering::Relaxed), 10);
        assert_eq!(cached.stats().hits, 30);
        assert_eq!(cached.entries(), 10);
    }

    #[test]
    fn cache_is_transparent() {
        let pop = population(23, 7);
        let plain = CountingLoss::new().evaluate_population(&pop);
        let cached = CachedEvaluator::new(ParallelEvaluator::with_threads(CountingLoss::new(), 4));
        assert_eq!(cached.evaluate_population(&pop), plain);
        // Single-genome path too.
        assert_eq!(cached.evaluate(&pop[0]), plain[0]);
    }

    #[test]
    fn fn_evaluator_adapts_closures() {
        let sum = FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum());
        assert_eq!(sum.evaluate(&[1, 2, 3]), 6.0);
        let stats_free: &dyn LossEvaluator = &sum;
        assert_eq!(stats_free.evaluate_population(&[vec![4]]), vec![4.0]);
    }

    #[test]
    fn snapshot_restores_losses_and_stats() {
        let cached = CachedEvaluator::new(CountingLoss::new());
        let pop = population(9, 5);
        let losses = cached.evaluate_population(&pop);
        let (entries, stats) = (cached.export(), cached.stats());
        assert_eq!(entries.len(), 9);
        // Exported entries are key-sorted → deterministic snapshots.
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        let restored = CachedEvaluator::from_snapshot(CountingLoss::new(), entries, stats);
        assert_eq!(restored.stats(), stats);
        assert_eq!(restored.evaluate_population(&pop), losses);
        // Everything was answered from the restored table.
        assert_eq!(restored.inner().calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cache_stats_round_trip_json() {
        let stats = CacheStats {
            hits: 12,
            misses: 5,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert_eq!(serde_json::from_str::<CacheStats>(&json).unwrap(), stats);
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let cached = CachedEvaluator::new(CountingLoss::new());
        let g = vec![1u8, 2, 3];
        cached.evaluate(&g);
        cached.evaluate(&g);
        cached.evaluate(&g);
        let stats = cached.stats();
        assert_eq!(stats.requests(), 3);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
