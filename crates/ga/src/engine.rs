//! The multi-instance mix-and-restart engine of Figure 4.

use crate::{GaConfig, GaInstance, Individual};
use clapton_eval::{CacheStats, CachedEvaluator, LossEvaluator, ParallelEvaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the full Clapton optimization engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGaConfig {
    /// Number of parallel GA instances (`s`).
    pub instances: usize,
    /// Top solutions taken from each instance when mixing (`k`).
    pub top_k: usize,
    /// Rounds without improvement tolerated before terminating
    /// ("two retry rounds", §4.1).
    pub max_retry_rounds: usize,
    /// Hard cap on rounds (safety bound; the paper loops to convergence).
    pub max_rounds: usize,
    /// Fraction of each new population drawn from the mixed pool (the rest
    /// are fresh random guesses).
    pub pool_fraction: f64,
    /// Run instances on parallel threads and fan population batches out over
    /// the remaining cores. Results are bit-identical to the serial path.
    pub parallel: bool,
    /// Per-instance GA settings.
    pub ga: GaConfig,
}

impl MultiGaConfig {
    /// The paper's hyper-parameters: `s = 10`, `m = 100`, `k = 20`,
    /// `|S| = 100` (§4.1).
    pub fn paper() -> MultiGaConfig {
        MultiGaConfig {
            instances: 10,
            top_k: 20,
            max_retry_rounds: 2,
            max_rounds: 64,
            pool_fraction: 0.5,
            parallel: true,
            ga: GaConfig::default(),
        }
    }

    /// A reduced setting for tests and quick experiments.
    pub fn quick() -> MultiGaConfig {
        MultiGaConfig {
            instances: 3,
            top_k: 6,
            max_retry_rounds: 1,
            max_rounds: 8,
            pool_fraction: 0.5,
            parallel: false,
            ga: GaConfig {
                population_size: 30,
                generations: 20,
                ..GaConfig::default()
            },
        }
    }
}

impl Default for MultiGaConfig {
    fn default() -> MultiGaConfig {
        MultiGaConfig::paper()
    }
}

/// The outcome of a multi-GA optimization.
#[derive(Debug, Clone)]
pub struct MultiGaResult {
    /// The best individual found.
    pub best: Individual,
    /// Global best loss after each round (non-increasing).
    pub round_bests: Vec<f64>,
    /// Total number of rounds executed.
    pub rounds: usize,
    /// Evaluation-cache traffic per round: how many fitness requests were
    /// answered from the genome → loss memo vs. actually computed. Duplicate
    /// genomes recur heavily across mix-and-restart rounds, so later rounds
    /// typically show high hit rates.
    pub round_eval_stats: Vec<CacheStats>,
    /// Distinct genomes (canonical keys) whose loss was actually computed.
    pub unique_evaluations: u64,
    /// Total fitness requests answered from the cache.
    pub cache_hits: u64,
}

impl MultiGaResult {
    /// Total fitness requests across the run (hits + real evaluations).
    pub fn fitness_requests(&self) -> u64 {
        self.unique_evaluations + self.cache_hits
    }

    /// Overall cache hit fraction in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.fitness_requests();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The multi-instance engine (Figure 4): spawn, evolve, mix, repeat until the
/// global loss stops decreasing.
///
/// Fitness flows through the [`LossEvaluator`] trait: the engine stacks a
/// shared genome → loss cache on top of a population-parallel batch path, so
/// every instance's generation is evaluated as one deduplicated batch. Both
/// wrappers are bit-transparent — results are identical to calling
/// `evaluate` genome-at-a-time on a single thread.
///
/// # Example
///
/// ```
/// use clapton_eval::FnEvaluator;
/// use clapton_ga::{MultiGa, MultiGaConfig};
///
/// let fitness = FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum::<f64>());
/// let result = MultiGa::new(10, 4, MultiGaConfig::quick()).run(42, &fitness);
/// assert_eq!(result.best.loss, 0.0);
/// // Mix-and-restart rounds re-submit known genomes: the cache absorbs them.
/// assert!(result.cache_hits > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiGa {
    num_genes: usize,
    cardinality: u8,
    config: MultiGaConfig,
}

impl MultiGa {
    /// Creates an engine for genomes of `num_genes` genes in
    /// `0..cardinality`.
    pub fn new(num_genes: usize, cardinality: u8, config: MultiGaConfig) -> MultiGa {
        MultiGa {
            num_genes,
            cardinality,
            config,
        }
    }

    /// Runs the engine to convergence, minimizing `evaluator`'s loss.
    pub fn run<E: LossEvaluator + ?Sized>(&self, seed: u64, evaluator: &E) -> MultiGaResult {
        let cfg = &self.config;
        // Evaluation stack: cache → population-parallel batches → user loss.
        // With instance threads already soaking up `instances` cores, each
        // batch gets the remaining share to avoid oversubscription.
        let batch_workers = if cfg.parallel {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            (cores / cfg.instances.max(1)).max(1)
        } else {
            1
        };
        let batched = ParallelEvaluator::with_threads(evaluator, batch_workers);
        let cached = CachedEvaluator::new(batched);

        let mut mix_rng = StdRng::seed_from_u64(seed ^ 0x5EED_A11C);
        let mut seeds_per_instance: Vec<Option<Vec<Vec<u8>>>> = vec![None; cfg.instances];
        let mut global_best: Option<Individual> = None;
        let mut round_bests = Vec::new();
        let mut round_eval_stats: Vec<CacheStats> = Vec::new();
        let mut stats_before = CacheStats::default();
        let mut retries = 0;
        let mut rounds = 0;
        for round in 0..cfg.max_rounds {
            rounds += 1;
            let finals = self.run_round(seed, round, &mut seeds_per_instance, &cached);
            let stats_after = cached.stats();
            round_eval_stats.push(CacheStats {
                hits: stats_after.hits - stats_before.hits,
                misses: stats_after.misses - stats_before.misses,
            });
            stats_before = stats_after;
            // Pool the top-k of every instance.
            let mut pool: Vec<Individual> = Vec::new();
            for pop in &finals {
                pool.extend(pop.top(cfg.top_k).iter().cloned());
            }
            pool.sort_by(|a, b| a.loss.total_cmp(&b.loss));
            let round_best = pool.first().expect("pool non-empty").clone();
            let improved = match &global_best {
                Some(b) => round_best.loss < b.loss - 1e-12,
                None => true,
            };
            if improved {
                global_best = Some(round_best.clone());
                retries = 0;
            } else {
                retries += 1;
            }
            round_bests.push(global_best.as_ref().expect("set above").loss);
            if retries > cfg.max_retry_rounds {
                break;
            }
            // Mix: every instance restarts from a random sample of the pool
            // plus fresh random guesses (Figure 4's shuffle step).
            let pool_share = ((cfg.ga.population_size as f64) * cfg.pool_fraction).round() as usize;
            for inst_seeds in seeds_per_instance.iter_mut() {
                let mut picks: Vec<Vec<u8>> = (0..pool_share.min(pool.len()))
                    .map(|_| pool[mix_rng.gen_range(0..pool.len())].genes.clone())
                    .collect();
                // Always propagate the global best so rounds never regress.
                if let Some(b) = &global_best {
                    picks.push(b.genes.clone());
                }
                *inst_seeds = Some(picks);
            }
        }
        let stats = cached.stats();
        MultiGaResult {
            best: global_best.expect("at least one round ran"),
            round_bests,
            rounds,
            round_eval_stats,
            unique_evaluations: stats.misses,
            cache_hits: stats.hits,
        }
    }

    /// Runs all instances of one round (in parallel when configured).
    fn run_round<E: LossEvaluator + ?Sized>(
        &self,
        seed: u64,
        round: usize,
        seeds_per_instance: &mut [Option<Vec<Vec<u8>>>],
        evaluator: &E,
    ) -> Vec<crate::Population> {
        let cfg = &self.config;
        let run_one = |i: usize, seeds: Option<Vec<Vec<u8>>>| {
            let inst_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 32)
                .wrapping_add(i as u64);
            let mut ga = GaInstance::new(self.num_genes, self.cardinality, cfg.ga, inst_seed);
            ga.run(evaluator, seeds)
        };
        if cfg.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = seeds_per_instance
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| {
                        let seeds = s.take();
                        scope.spawn(move || run_one(i, seeds))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("GA thread"))
                    .collect()
            })
        } else {
            seeds_per_instance
                .iter_mut()
                .enumerate()
                .map(|(i, s)| run_one(i, s.take()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_eval::FnEvaluator;

    fn sum_fitness() -> impl LossEvaluator {
        FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum())
    }

    #[test]
    fn converges_on_simple_problem() {
        let result = MultiGa::new(15, 4, MultiGaConfig::quick()).run(7, &sum_fitness());
        assert_eq!(result.best.loss, 0.0);
        assert!(result.rounds >= 2, "needs at least the retry rounds");
    }

    #[test]
    fn round_bests_are_monotone() {
        let result = MultiGa::new(30, 4, MultiGaConfig::quick()).run(11, &sum_fitness());
        for w in result.round_bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let engine = MultiGa::new(12, 4, MultiGaConfig::quick());
        let a = engine.run(99, &sum_fitness());
        let b = engine.run(99, &sum_fitness());
        assert_eq!(a.best, b.best);
        assert_eq!(a.round_bests, b.round_bests);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut cfg = MultiGaConfig::quick();
        let serial = MultiGa::new(12, 4, cfg).run(5, &sum_fitness());
        cfg.parallel = true;
        let parallel = MultiGa::new(12, 4, cfg).run(5, &sum_fitness());
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.round_bests, parallel.round_bests);
    }

    #[test]
    fn respects_max_rounds() {
        let mut cfg = MultiGaConfig::quick();
        cfg.max_rounds = 1;
        let result = MultiGa::new(10, 4, cfg).run(3, &sum_fitness());
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn cache_diagnostics_are_consistent() {
        let result = MultiGa::new(12, 4, MultiGaConfig::quick()).run(21, &sum_fitness());
        assert_eq!(result.round_eval_stats.len(), result.rounds);
        let hits: u64 = result.round_eval_stats.iter().map(|s| s.hits).sum();
        let misses: u64 = result.round_eval_stats.iter().map(|s| s.misses).sum();
        assert_eq!(hits, result.cache_hits);
        assert_eq!(misses, result.unique_evaluations);
        // The engine must have evaluated at least one full first-round
        // population per instance, and mixing must have produced re-submits.
        let cfg = MultiGaConfig::quick();
        assert!(result.unique_evaluations >= (cfg.ga.population_size * cfg.instances) as u64);
        assert!(result.cache_hits > 0, "mix rounds re-submit known genomes");
        assert!(result.cache_hit_rate() > 0.0 && result.cache_hit_rate() < 1.0);
    }

    #[test]
    fn harder_multimodal_problem() {
        // Deceptive fitness: genome must spell an alternating pattern.
        let fitness = FnEvaluator::new(|g: &[u8]| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| if x == ((i % 2) as u8 + 1) { 0.0 } else { 1.0 })
                .sum::<f64>()
        });
        let mut cfg = MultiGaConfig::quick();
        cfg.ga.generations = 40;
        cfg.max_rounds = 12;
        let result = MultiGa::new(20, 4, cfg).run(13, &fitness);
        assert_eq!(result.best.loss, 0.0, "engine should solve 20-gene pattern");
    }
}
