//! The multi-instance mix-and-restart engine of Figure 4, as a resumable
//! state machine.

use crate::{GaConfig, GaInstance, Individual};
use clapton_eval::{CacheStats, CachedEvaluator, LossEvaluator, LossStore, ParallelEvaluator};
use clapton_runtime::{PooledEvaluator, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hyper-parameters of the full Clapton optimization engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiGaConfig {
    /// Number of parallel GA instances (`s`).
    pub instances: usize,
    /// Top solutions taken from each instance when mixing (`k`).
    pub top_k: usize,
    /// Rounds without improvement tolerated before terminating
    /// ("two retry rounds", §4.1).
    pub max_retry_rounds: usize,
    /// Hard cap on rounds (safety bound; the paper loops to convergence).
    pub max_rounds: usize,
    /// Fraction of each new population drawn from the mixed pool (the rest
    /// are fresh random guesses).
    pub pool_fraction: f64,
    /// Run instances on parallel threads and fan population batches out over
    /// the remaining cores. Results are bit-identical to the serial path.
    /// (With [`MultiGa::run_pooled`] the shared worker pool takes over both
    /// roles and this flag is ignored.)
    pub parallel: bool,
    /// Per-instance GA settings.
    pub ga: GaConfig,
}

impl MultiGaConfig {
    /// The paper's hyper-parameters: `s = 10`, `m = 100`, `k = 20`,
    /// `|S| = 100` (§4.1).
    pub fn paper() -> MultiGaConfig {
        MultiGaConfig {
            instances: 10,
            top_k: 20,
            max_retry_rounds: 2,
            max_rounds: 64,
            pool_fraction: 0.5,
            parallel: true,
            ga: GaConfig::default(),
        }
    }

    /// A reduced setting for tests and quick experiments.
    pub fn quick() -> MultiGaConfig {
        MultiGaConfig {
            instances: 3,
            top_k: 6,
            max_retry_rounds: 1,
            max_rounds: 8,
            pool_fraction: 0.5,
            parallel: false,
            ga: GaConfig {
                population_size: 30,
                generations: 20,
                ..GaConfig::default()
            },
        }
    }
}

impl Default for MultiGaConfig {
    fn default() -> MultiGaConfig {
        MultiGaConfig::paper()
    }
}

/// The outcome of a multi-GA optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGaResult {
    /// The best individual found.
    pub best: Individual,
    /// Global best loss after each round (non-increasing).
    pub round_bests: Vec<f64>,
    /// Total number of rounds executed.
    pub rounds: usize,
    /// Evaluation-cache traffic per round: how many fitness requests were
    /// answered from the genome → loss memo vs. actually computed. Duplicate
    /// genomes recur heavily across mix-and-restart rounds, so later rounds
    /// typically show high hit rates.
    pub round_eval_stats: Vec<CacheStats>,
    /// Distinct genomes (canonical keys) whose loss was actually computed.
    pub unique_evaluations: u64,
    /// Total fitness requests answered from the cache.
    pub cache_hits: u64,
}

impl MultiGaResult {
    /// Total fitness requests across the run (hits + real evaluations).
    pub fn fitness_requests(&self) -> u64 {
        self.unique_evaluations + self.cache_hits
    }

    /// Overall cache hit fraction in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.fitness_requests();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The complete engine state between two rounds — the checkpoint unit.
///
/// Produced by [`MultiGa::start`], advanced one round at a time by
/// [`MultiGa::step`] (or [`MultiGa::step_pooled`]), and serializable as
/// JSON. A state written after round `k` and deserialized later continues
/// **bit-identically** to a run that was never interrupted: the mixing RNG
/// state, the per-instance restart seeds, and the full genome → loss memo
/// (with its statistics) are all part of the snapshot, and per-instance GA
/// streams are derived deterministically from `(seed, round, instance)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineState {
    /// The base seed the run was started with.
    pub seed: u64,
    /// Caller-defined problem fingerprint. The engine initializes it to `0`
    /// and never reads it; layers that serialize checkpoints (e.g.
    /// `run_clapton_resumable`) stamp a hash of their objective here and
    /// refuse to resume a state whose fingerprint does not match — a memo
    /// cache built against a different loss would silently corrupt the
    /// search.
    pub tag: u64,
    /// The next round to execute (= rounds completed so far).
    pub next_round: usize,
    /// Restart seeds assigned to each instance by the last mix step.
    pub seeds_per_instance: Vec<Option<Vec<Vec<u8>>>>,
    /// Best individual found so far.
    pub global_best: Option<Individual>,
    /// Global best loss after each completed round.
    pub round_bests: Vec<f64>,
    /// Cache traffic per completed round.
    pub round_eval_stats: Vec<CacheStats>,
    /// Rounds without improvement so far.
    pub retries: usize,
    /// Raw state of the mixing RNG.
    pub mix_rng: [u64; 4],
    /// The genome → loss memo, sorted by key (deterministic snapshots).
    pub cache_entries: Vec<(Vec<u8>, f64)>,
    /// Cache statistics matching `cache_entries`.
    pub cache_stats: CacheStats,
    /// Whether the run has converged (no further steps allowed).
    pub finished: bool,
}

impl EngineState {
    /// Number of completed rounds.
    pub fn rounds(&self) -> usize {
        self.next_round
    }
}

/// How one round's GA instances are executed.
#[derive(Clone, Copy)]
enum RoundExec<'p> {
    /// All instances on the calling thread.
    Serial,
    /// One scoped thread per instance (the legacy `parallel: true` path).
    Threads,
    /// Instance tasks on the shared persistent worker pool.
    Pool(&'p WorkerPool),
}

/// The multi-instance engine (Figure 4): spawn, evolve, mix, repeat until the
/// global loss stops decreasing.
///
/// Fitness flows through the [`LossEvaluator`] trait: the engine stacks a
/// shared genome → loss cache on top of a population-parallel batch path, so
/// every instance's generation is evaluated as one deduplicated batch. Both
/// wrappers are bit-transparent — results are identical to calling
/// `evaluate` genome-at-a-time on a single thread.
///
/// The engine is a resumable state machine: [`MultiGa::run`] is a loop over
/// [`MultiGa::step`] on an [`EngineState`], and callers that need
/// checkpointing drive the steps themselves, serializing the state between
/// rounds. [`MultiGa::run_pooled`] / [`MultiGa::step_pooled`] execute both
/// the instances and their population batches on a shared persistent
/// [`WorkerPool`] instead of spawning threads per round.
///
/// # Example
///
/// ```
/// use clapton_eval::FnEvaluator;
/// use clapton_ga::{MultiGa, MultiGaConfig};
///
/// let fitness = FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum::<f64>());
/// let result = MultiGa::new(10, 4, MultiGaConfig::quick()).run(42, &fitness);
/// assert_eq!(result.best.loss, 0.0);
/// // Mix-and-restart rounds re-submit known genomes: the cache absorbs them.
/// assert!(result.cache_hits > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiGa {
    num_genes: usize,
    cardinality: u8,
    config: MultiGaConfig,
    store: Option<(Arc<dyn LossStore>, u64)>,
}

impl MultiGa {
    /// Creates an engine for genomes of `num_genes` genes in
    /// `0..cardinality`.
    pub fn new(num_genes: usize, cardinality: u8, config: MultiGaConfig) -> MultiGa {
        MultiGa {
            num_genes,
            cardinality,
            config,
            store: None,
        }
    }

    /// Attaches a persistent loss store consulted on memo misses under
    /// namespace `ns` (see [`CachedEvaluator::with_store`] for the
    /// determinism contract — disk hits count as cache misses).
    pub fn with_loss_store(mut self, store: Arc<dyn LossStore>, ns: u64) -> MultiGa {
        self.store = Some((store, ns));
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &MultiGaConfig {
        &self.config
    }

    /// Wraps `batched` in the per-run memo cache, attaching the persistent
    /// store tier when one is configured.
    fn cached_for<E2: LossEvaluator>(
        &self,
        batched: E2,
        state: &mut EngineState,
    ) -> CachedEvaluator<E2> {
        let cached = CachedEvaluator::from_snapshot(
            batched,
            std::mem::take(&mut state.cache_entries),
            state.cache_stats,
        );
        match &self.store {
            Some((store, ns)) => cached.with_store(Arc::clone(store), *ns),
            None => cached,
        }
    }

    /// Runs the engine to convergence, minimizing `evaluator`'s loss.
    pub fn run<E: LossEvaluator + ?Sized>(&self, seed: u64, evaluator: &E) -> MultiGaResult {
        let mut state = self.start(seed);
        if self.config.parallel {
            let batched = ParallelEvaluator::with_threads(evaluator, self.batch_workers());
            self.run_to_convergence(&mut state, batched, RoundExec::Threads)
        } else {
            self.run_to_convergence(&mut state, evaluator, RoundExec::Serial)
        }
    }

    /// [`MultiGa::run`] with instances and population batches executed on a
    /// shared persistent pool — bit-identical results, no per-round thread
    /// spawns, and fair sharing with other runs on the same pool.
    pub fn run_pooled<E: LossEvaluator + ?Sized>(
        &self,
        seed: u64,
        evaluator: &E,
        pool: &Arc<WorkerPool>,
    ) -> MultiGaResult {
        let mut state = self.start(seed);
        let batched = PooledEvaluator::new(evaluator, Arc::clone(pool));
        self.run_to_convergence(&mut state, batched, RoundExec::Pool(pool))
    }

    /// Drives a fresh state to convergence on a *live* cache: monolithic
    /// runs keep the genome → loss memo across rounds and materialize the
    /// serializable snapshot only once at the end, instead of paying the
    /// per-round export/import that checkpointing steps require.
    fn run_to_convergence<E2: LossEvaluator>(
        &self,
        state: &mut EngineState,
        batched: E2,
        exec: RoundExec<'_>,
    ) -> MultiGaResult {
        let cached = self.cached_for(batched, state);
        while !self.step_core(state, &cached, exec) {}
        state.cache_entries = cached.export();
        state.cache_stats = cached.stats();
        self.result(state)
    }

    /// The initial [`EngineState`] for a run seeded with `seed`.
    pub fn start(&self, seed: u64) -> EngineState {
        EngineState {
            seed,
            tag: 0,
            next_round: 0,
            seeds_per_instance: vec![None; self.config.instances],
            global_best: None,
            round_bests: Vec::new(),
            round_eval_stats: Vec::new(),
            retries: 0,
            mix_rng: StdRng::seed_from_u64(seed ^ 0x5EED_A11C).state(),
            cache_entries: Vec::new(),
            cache_stats: CacheStats::default(),
            finished: false,
        }
    }

    /// Executes one round (evolve all instances, pool the elites, mix) and
    /// returns whether the run has converged.
    ///
    /// Respects `config.parallel` exactly like the original monolithic loop:
    /// scoped instance threads plus a per-batch thread fan-out, or fully
    /// serial execution.
    ///
    /// # Panics
    ///
    /// Panics if `state.finished` is already set.
    pub fn step<E: LossEvaluator + ?Sized>(&self, state: &mut EngineState, evaluator: &E) -> bool {
        if self.config.parallel {
            let batched = ParallelEvaluator::with_threads(evaluator, self.batch_workers());
            self.step_stacked(state, batched, RoundExec::Threads)
        } else {
            self.step_stacked(state, evaluator, RoundExec::Serial)
        }
    }

    /// [`MultiGa::step`] on a shared persistent [`WorkerPool`]: instances
    /// become pool tasks and population batches go through a
    /// [`PooledEvaluator`], so concurrent engine runs interleave fairly on
    /// one set of threads.
    ///
    /// # Panics
    ///
    /// Panics if `state.finished` is already set.
    pub fn step_pooled<E: LossEvaluator + ?Sized>(
        &self,
        state: &mut EngineState,
        evaluator: &E,
        pool: &Arc<WorkerPool>,
    ) -> bool {
        let batched = PooledEvaluator::new(evaluator, Arc::clone(pool));
        self.step_stacked(state, batched, RoundExec::Pool(pool))
    }

    /// The final result of a converged run (or the best-so-far snapshot of a
    /// suspended one).
    ///
    /// # Panics
    ///
    /// Panics if no round has completed yet.
    pub fn result(&self, state: &EngineState) -> MultiGaResult {
        MultiGaResult {
            best: state
                .global_best
                .clone()
                .expect("at least one round completed"),
            round_bests: state.round_bests.clone(),
            rounds: state.next_round,
            round_eval_stats: state.round_eval_stats.clone(),
            unique_evaluations: state.cache_stats.misses,
            cache_hits: state.cache_stats.hits,
        }
    }

    /// Workers per population batch when instance threads are also running
    /// (avoids oversubscription in the legacy scoped-thread mode).
    fn batch_workers(&self) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cores / self.config.instances.max(1)).max(1)
    }

    /// One checkpointable round: restore the genome → loss memo from the
    /// state snapshot, run the round, snapshot the memo back.
    fn step_stacked<E: LossEvaluator>(
        &self,
        state: &mut EngineState,
        batched: E,
        exec: RoundExec<'_>,
    ) -> bool {
        // Evaluation stack: cache → batch path → user loss, exactly as in a
        // monolithic run.
        let cached = self.cached_for(batched, state);
        let finished = self.step_core(state, &cached, exec);
        state.cache_entries = cached.export();
        state.cache_stats = cached.stats();
        finished
    }

    /// One round (evolve, pool elites, mix) against a live cache. The
    /// caller owns the cache ↔ snapshot synchronization.
    fn step_core<E: LossEvaluator>(
        &self,
        state: &mut EngineState,
        cached: &CachedEvaluator<E>,
        exec: RoundExec<'_>,
    ) -> bool {
        assert!(!state.finished, "stepping a finished engine run");
        let cfg = &self.config;
        let stats_before = cached.stats();
        let round = state.next_round;
        let finals = self.run_round(
            state.seed,
            round,
            &mut state.seeds_per_instance,
            cached,
            exec,
        );
        let stats_after = cached.stats();
        state.round_eval_stats.push(CacheStats {
            hits: stats_after.hits - stats_before.hits,
            misses: stats_after.misses - stats_before.misses,
        });
        // Pool the top-k of every instance.
        let mut pool: Vec<Individual> = Vec::new();
        for pop in &finals {
            pool.extend(pop.top(cfg.top_k).iter().cloned());
        }
        pool.sort_by(|a, b| a.loss.total_cmp(&b.loss));
        let round_best = pool.first().expect("pool non-empty").clone();
        let improved = match &state.global_best {
            Some(b) => round_best.loss < b.loss - 1e-12,
            None => true,
        };
        if improved {
            state.global_best = Some(round_best);
            state.retries = 0;
        } else {
            state.retries += 1;
        }
        state
            .round_bests
            .push(state.global_best.as_ref().expect("set above").loss);
        state.next_round += 1;
        let finished = state.retries > cfg.max_retry_rounds || state.next_round >= cfg.max_rounds;
        if !finished {
            // Mix: every instance restarts from a random sample of the pool
            // plus fresh random guesses (Figure 4's shuffle step).
            let mut mix_rng = StdRng::from_state(state.mix_rng);
            let pool_share = ((cfg.ga.population_size as f64) * cfg.pool_fraction).round() as usize;
            for inst_seeds in state.seeds_per_instance.iter_mut() {
                let mut picks: Vec<Vec<u8>> = (0..pool_share.min(pool.len()))
                    .map(|_| pool[mix_rng.gen_range(0..pool.len())].genes.clone())
                    .collect();
                // Always propagate the global best so rounds never regress.
                if let Some(b) = &state.global_best {
                    picks.push(b.genes.clone());
                }
                *inst_seeds = Some(picks);
            }
            state.mix_rng = mix_rng.state();
        }
        state.finished = finished;
        finished
    }

    /// Runs all instances of one round on the configured executor.
    fn run_round<E: LossEvaluator + ?Sized>(
        &self,
        seed: u64,
        round: usize,
        seeds_per_instance: &mut [Option<Vec<Vec<u8>>>],
        evaluator: &E,
        exec: RoundExec<'_>,
    ) -> Vec<crate::Population> {
        let cfg = &self.config;
        let run_one = |i: usize, seeds: Option<Vec<Vec<u8>>>| {
            let inst_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 32)
                .wrapping_add(i as u64);
            let mut ga = GaInstance::new(self.num_genes, self.cardinality, cfg.ga, inst_seed);
            ga.run(evaluator, seeds)
        };
        match exec {
            RoundExec::Serial => seeds_per_instance
                .iter_mut()
                .enumerate()
                .map(|(i, s)| run_one(i, s.take()))
                .collect(),
            RoundExec::Threads => std::thread::scope(|scope| {
                let handles: Vec<_> = seeds_per_instance
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| {
                        let seeds = s.take();
                        let run_one = &run_one;
                        scope.spawn(move || run_one(i, seeds))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("GA thread"))
                    .collect()
            }),
            RoundExec::Pool(pool) => {
                let mut out: Vec<Option<crate::Population>> =
                    seeds_per_instance.iter().map(|_| None).collect();
                pool.scope(|s| {
                    for (i, (slot, inst_seeds)) in out
                        .iter_mut()
                        .zip(seeds_per_instance.iter_mut())
                        .enumerate()
                    {
                        let seeds = inst_seeds.take();
                        let run_one = &run_one;
                        s.spawn(move || *slot = Some(run_one(i, seeds)));
                    }
                });
                out.into_iter()
                    .map(|p| p.expect("instance task completed"))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_eval::FnEvaluator;

    fn sum_fitness() -> impl LossEvaluator {
        FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum())
    }

    #[test]
    fn converges_on_simple_problem() {
        let result = MultiGa::new(15, 4, MultiGaConfig::quick()).run(7, &sum_fitness());
        assert_eq!(result.best.loss, 0.0);
        assert!(result.rounds >= 2, "needs at least the retry rounds");
    }

    #[test]
    fn round_bests_are_monotone() {
        let result = MultiGa::new(30, 4, MultiGaConfig::quick()).run(11, &sum_fitness());
        for w in result.round_bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let engine = MultiGa::new(12, 4, MultiGaConfig::quick());
        let a = engine.run(99, &sum_fitness());
        let b = engine.run(99, &sum_fitness());
        assert_eq!(a.best, b.best);
        assert_eq!(a.round_bests, b.round_bests);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut cfg = MultiGaConfig::quick();
        let serial = MultiGa::new(12, 4, cfg).run(5, &sum_fitness());
        cfg.parallel = true;
        let parallel = MultiGa::new(12, 4, cfg).run(5, &sum_fitness());
        assert_eq!(serial.best, parallel.best);
        assert_eq!(serial.round_bests, parallel.round_bests);
    }

    #[test]
    fn pooled_matches_serial_bit_for_bit() {
        let cfg = MultiGaConfig::quick();
        let engine = MultiGa::new(12, 4, cfg);
        let serial = engine.run(5, &sum_fitness());
        for workers in [0, 2] {
            let pool = Arc::new(WorkerPool::with_workers(workers));
            let pooled = engine.run_pooled(5, &sum_fitness(), &pool);
            assert_eq!(serial, pooled, "workers {workers}");
        }
    }

    #[test]
    fn respects_max_rounds() {
        let mut cfg = MultiGaConfig::quick();
        cfg.max_rounds = 1;
        let result = MultiGa::new(10, 4, cfg).run(3, &sum_fitness());
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn cache_diagnostics_are_consistent() {
        let result = MultiGa::new(12, 4, MultiGaConfig::quick()).run(21, &sum_fitness());
        assert_eq!(result.round_eval_stats.len(), result.rounds);
        let hits: u64 = result.round_eval_stats.iter().map(|s| s.hits).sum();
        let misses: u64 = result.round_eval_stats.iter().map(|s| s.misses).sum();
        assert_eq!(hits, result.cache_hits);
        assert_eq!(misses, result.unique_evaluations);
        // The engine must have evaluated at least one full first-round
        // population per instance, and mixing must have produced re-submits.
        let cfg = MultiGaConfig::quick();
        assert!(result.unique_evaluations >= (cfg.ga.population_size * cfg.instances) as u64);
        assert!(result.cache_hits > 0, "mix rounds re-submit known genomes");
        assert!(result.cache_hit_rate() > 0.0 && result.cache_hit_rate() < 1.0);
    }

    #[test]
    fn harder_multimodal_problem() {
        // Deceptive fitness: genome must spell an alternating pattern.
        let fitness = FnEvaluator::new(|g: &[u8]| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| if x == ((i % 2) as u8 + 1) { 0.0 } else { 1.0 })
                .sum::<f64>()
        });
        let mut cfg = MultiGaConfig::quick();
        cfg.ga.generations = 40;
        cfg.max_rounds = 12;
        let result = MultiGa::new(20, 4, cfg).run(13, &fitness);
        assert_eq!(result.best.loss, 0.0, "engine should solve 20-gene pattern");
    }

    #[test]
    fn stepping_matches_monolithic_run() {
        let engine = MultiGa::new(14, 4, MultiGaConfig::quick());
        let fitness = sum_fitness();
        let reference = engine.run(31, &fitness);
        let mut state = engine.start(31);
        let mut steps = 0;
        while !engine.step(&mut state, &fitness) {
            steps += 1;
            assert_eq!(state.rounds(), steps);
        }
        assert_eq!(engine.result(&state), reference);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let engine = MultiGa::new(14, 4, MultiGaConfig::quick());
        let fitness = sum_fitness();
        let reference = engine.run(77, &fitness);
        // Interrupt after every possible round k, resume from a JSON
        // round-trip of the state, and compare the final result.
        for k in 1..reference.rounds {
            let mut state = engine.start(77);
            for _ in 0..k {
                assert!(!engine.step(&mut state, &fitness), "k within run");
            }
            let json = serde_json::to_string(&state).expect("state serializes");
            let mut resumed: EngineState = serde_json::from_str(&json).expect("state parses");
            assert_eq!(resumed, state);
            while !engine.step(&mut resumed, &fitness) {}
            assert_eq!(engine.result(&resumed), reference, "interrupted at {k}");
        }
    }

    #[test]
    fn finished_state_rejects_further_steps() {
        let engine = MultiGa::new(8, 4, MultiGaConfig::quick());
        let fitness = sum_fitness();
        let mut state = engine.start(3);
        while !engine.step(&mut state, &fitness) {}
        assert!(state.finished);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.step(&mut state, &fitness)
        }));
        assert!(result.is_err());
    }
}
