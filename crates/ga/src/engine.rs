//! The multi-instance mix-and-restart engine of Figure 4.

use crate::{GaConfig, GaInstance, Individual};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the full Clapton optimization engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiGaConfig {
    /// Number of parallel GA instances (`s`).
    pub instances: usize,
    /// Top solutions taken from each instance when mixing (`k`).
    pub top_k: usize,
    /// Rounds without improvement tolerated before terminating
    /// ("two retry rounds", §4.1).
    pub max_retry_rounds: usize,
    /// Hard cap on rounds (safety bound; the paper loops to convergence).
    pub max_rounds: usize,
    /// Fraction of each new population drawn from the mixed pool (the rest
    /// are fresh random guesses).
    pub pool_fraction: f64,
    /// Run instances on parallel threads.
    pub parallel: bool,
    /// Per-instance GA settings.
    pub ga: GaConfig,
}

impl MultiGaConfig {
    /// The paper's hyper-parameters: `s = 10`, `m = 100`, `k = 20`,
    /// `|S| = 100` (§4.1).
    pub fn paper() -> MultiGaConfig {
        MultiGaConfig {
            instances: 10,
            top_k: 20,
            max_retry_rounds: 2,
            max_rounds: 64,
            pool_fraction: 0.5,
            parallel: true,
            ga: GaConfig::default(),
        }
    }

    /// A reduced setting for tests and quick experiments.
    pub fn quick() -> MultiGaConfig {
        MultiGaConfig {
            instances: 3,
            top_k: 6,
            max_retry_rounds: 1,
            max_rounds: 8,
            pool_fraction: 0.5,
            parallel: false,
            ga: GaConfig {
                population_size: 30,
                generations: 20,
                ..GaConfig::default()
            },
        }
    }
}

impl Default for MultiGaConfig {
    fn default() -> MultiGaConfig {
        MultiGaConfig::paper()
    }
}

/// The outcome of a multi-GA optimization.
#[derive(Debug, Clone)]
pub struct MultiGaResult {
    /// The best individual found.
    pub best: Individual,
    /// Global best loss after each round (non-increasing).
    pub round_bests: Vec<f64>,
    /// Total number of rounds executed.
    pub rounds: usize,
}

/// The multi-instance engine (Figure 4): spawn, evolve, mix, repeat until the
/// global loss stops decreasing.
///
/// # Example
///
/// ```
/// use clapton_ga::{MultiGa, MultiGaConfig};
///
/// let fitness = |g: &[u8]| g.iter().map(|&x| x as f64).sum::<f64>();
/// let result = MultiGa::new(10, 4, MultiGaConfig::quick()).run(42, &fitness);
/// assert_eq!(result.best.loss, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiGa {
    num_genes: usize,
    cardinality: u8,
    config: MultiGaConfig,
}

impl MultiGa {
    /// Creates an engine for genomes of `num_genes` genes in
    /// `0..cardinality`.
    pub fn new(num_genes: usize, cardinality: u8, config: MultiGaConfig) -> MultiGa {
        MultiGa {
            num_genes,
            cardinality,
            config,
        }
    }

    /// Runs the engine to convergence. `fitness` is minimized; it must be
    /// `Sync` because instances may run on parallel threads.
    pub fn run<F>(&self, seed: u64, fitness: &F) -> MultiGaResult
    where
        F: Fn(&[u8]) -> f64 + Sync + ?Sized,
    {
        let cfg = &self.config;
        let mut mix_rng = StdRng::seed_from_u64(seed ^ 0x5EED_A11C);
        let mut seeds_per_instance: Vec<Option<Vec<Vec<u8>>>> = vec![None; cfg.instances];
        let mut global_best: Option<Individual> = None;
        let mut round_bests = Vec::new();
        let mut retries = 0;
        let mut rounds = 0;
        for round in 0..cfg.max_rounds {
            rounds += 1;
            let finals = self.run_round(seed, round, &mut seeds_per_instance, fitness);
            // Pool the top-k of every instance.
            let mut pool: Vec<Individual> = Vec::new();
            for pop in &finals {
                pool.extend(pop.top(cfg.top_k).iter().cloned());
            }
            pool.sort_by(|a, b| a.loss.total_cmp(&b.loss));
            let round_best = pool.first().expect("pool non-empty").clone();
            let improved = match &global_best {
                Some(b) => round_best.loss < b.loss - 1e-12,
                None => true,
            };
            if improved {
                global_best = Some(round_best.clone());
                retries = 0;
            } else {
                retries += 1;
            }
            round_bests.push(global_best.as_ref().expect("set above").loss);
            if retries > cfg.max_retry_rounds {
                break;
            }
            // Mix: every instance restarts from a random sample of the pool
            // plus fresh random guesses (Figure 4's shuffle step).
            let pool_share =
                ((cfg.ga.population_size as f64) * cfg.pool_fraction).round() as usize;
            for inst_seeds in seeds_per_instance.iter_mut() {
                let mut picks: Vec<Vec<u8>> = (0..pool_share.min(pool.len()))
                    .map(|_| pool[mix_rng.gen_range(0..pool.len())].genes.clone())
                    .collect();
                // Always propagate the global best so rounds never regress.
                if let Some(b) = &global_best {
                    picks.push(b.genes.clone());
                }
                *inst_seeds = Some(picks);
            }
        }
        MultiGaResult {
            best: global_best.expect("at least one round ran"),
            round_bests,
            rounds,
        }
    }

    /// Runs all instances of one round (in parallel when configured).
    fn run_round<F>(
        &self,
        seed: u64,
        round: usize,
        seeds_per_instance: &mut [Option<Vec<Vec<u8>>>],
        fitness: &F,
    ) -> Vec<crate::Population>
    where
        F: Fn(&[u8]) -> f64 + Sync + ?Sized,
    {
        let cfg = &self.config;
        let run_one = |i: usize, seeds: Option<Vec<Vec<u8>>>| {
            let inst_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((round as u64) << 32)
                .wrapping_add(i as u64);
            let mut ga = GaInstance::new(self.num_genes, self.cardinality, cfg.ga, inst_seed);
            ga.run(fitness, seeds)
        };
        if cfg.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = seeds_per_instance
                    .iter_mut()
                    .enumerate()
                    .map(|(i, s)| {
                        let seeds = s.take();
                        scope.spawn(move || run_one(i, seeds))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("GA thread")).collect()
            })
        } else {
            seeds_per_instance
                .iter_mut()
                .enumerate()
                .map(|(i, s)| run_one(i, s.take()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_fitness(g: &[u8]) -> f64 {
        g.iter().map(|&x| x as f64).sum()
    }

    #[test]
    fn converges_on_simple_problem() {
        let result = MultiGa::new(15, 4, MultiGaConfig::quick()).run(7, &sum_fitness);
        assert_eq!(result.best.loss, 0.0);
        assert!(result.rounds >= 2, "needs at least the retry rounds");
    }

    #[test]
    fn round_bests_are_monotone() {
        let result = MultiGa::new(30, 4, MultiGaConfig::quick()).run(11, &sum_fitness);
        for w in result.round_bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let engine = MultiGa::new(12, 4, MultiGaConfig::quick());
        let a = engine.run(99, &sum_fitness);
        let b = engine.run(99, &sum_fitness);
        assert_eq!(a.best, b.best);
        assert_eq!(a.round_bests, b.round_bests);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut cfg = MultiGaConfig::quick();
        let serial = MultiGa::new(12, 4, cfg).run(5, &sum_fitness);
        cfg.parallel = true;
        let parallel = MultiGa::new(12, 4, cfg).run(5, &sum_fitness);
        assert_eq!(serial.best, parallel.best);
    }

    #[test]
    fn respects_max_rounds() {
        let mut cfg = MultiGaConfig::quick();
        cfg.max_rounds = 1;
        let result = MultiGa::new(10, 4, cfg).run(3, &sum_fitness);
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn harder_multimodal_problem() {
        // Deceptive fitness: genome must spell an alternating pattern.
        let fitness = |g: &[u8]| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| if x == ((i % 2) as u8 + 1) { 0.0 } else { 1.0 })
                .sum::<f64>()
        };
        let mut cfg = MultiGaConfig::quick();
        cfg.ga.generations = 40;
        cfg.max_rounds = 12;
        let result = MultiGa::new(20, 4, cfg).run(13, &fitness);
        assert_eq!(result.best.loss, 0.0, "engine should solve 20-gene pattern");
    }
}
