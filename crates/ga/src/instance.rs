//! A single genetic-algorithm instance on integer genomes.

use clapton_eval::LossEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of one GA instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size `|S|`.
    pub population_size: usize,
    /// Generations per round (`m` in the paper).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Probability of crossing two parents (otherwise the fitter parent is
    /// cloned).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Number of elite individuals copied unchanged each generation.
    pub elite: usize,
}

impl Default for GaConfig {
    /// The paper's setting: `|S| = 100`, `m = 100`, with standard
    /// tournament/crossover/mutation rates.
    fn default() -> GaConfig {
        GaConfig {
            population_size: 100,
            generations: 100,
            tournament_size: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.08,
            elite: 2,
        }
    }
}

/// One evaluated genome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Individual {
    /// The loss value (lower is better).
    pub loss: f64,
    /// The genome.
    pub genes: Vec<u8>,
}

/// An evaluated population, kept sorted by ascending loss.
#[derive(Debug, Clone, Default)]
pub struct Population {
    members: Vec<Individual>,
}

impl Population {
    /// Builds a population from evaluated individuals (sorts them).
    pub fn from_members(mut members: Vec<Individual>) -> Population {
        members.sort_by(|a, b| a.loss.total_cmp(&b.loss));
        Population { members }
    }

    /// Builds a population by batch-evaluating genomes.
    pub fn evaluate<E: LossEvaluator + ?Sized>(genomes: Vec<Vec<u8>>, evaluator: &E) -> Population {
        let losses = evaluator.evaluate_population(&genomes);
        Population::from_members(
            genomes
                .into_iter()
                .zip(losses)
                .map(|(genes, loss)| Individual { loss, genes })
                .collect(),
        )
    }

    /// The members in ascending-loss order.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// The best individual.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn best(&self) -> &Individual {
        self.members.first().expect("population is empty")
    }

    /// The `k` best individuals (fewer if the population is smaller).
    pub fn top(&self, k: usize) -> &[Individual] {
        &self.members[..k.min(self.members.len())]
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A single GA instance (one of the `GA_i` boxes of Figure 4).
///
/// Fitness is requested through the [`LossEvaluator`] trait in population
/// batches: each generation first breeds the full offspring set, then issues
/// one `evaluate_population` call — so a parallel or cached evaluator sees
/// the widest possible batch. Because selection only consults the *previous*
/// generation, batching is bit-identical to genome-at-a-time evaluation.
///
/// # Example
///
/// ```
/// use clapton_eval::FnEvaluator;
/// use clapton_ga::{GaConfig, GaInstance};
///
/// // Minimize the number of non-zero genes.
/// let fitness = FnEvaluator::new(|g: &[u8]| g.iter().filter(|&&x| x != 0).count() as f64);
/// let config = GaConfig { generations: 60, ..GaConfig::default() };
/// let mut ga = GaInstance::new(12, 4, config, 7);
/// let pop = ga.run(&fitness, None);
/// assert_eq!(pop.best().loss, 0.0);
/// ```
#[derive(Debug)]
pub struct GaInstance {
    num_genes: usize,
    cardinality: u8,
    config: GaConfig,
    rng: StdRng,
}

impl GaInstance {
    /// Creates an instance for genomes of `num_genes` genes, each in
    /// `0..cardinality`.
    ///
    /// # Panics
    ///
    /// Panics if `num_genes == 0`, `cardinality == 0` or the population is
    /// smaller than 2.
    pub fn new(num_genes: usize, cardinality: u8, config: GaConfig, seed: u64) -> GaInstance {
        assert!(num_genes > 0, "need at least one gene");
        assert!(cardinality > 0, "need at least one gene value");
        assert!(config.population_size >= 2, "population too small");
        GaInstance {
            num_genes,
            cardinality,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a random genome.
    pub fn random_genome(&mut self) -> Vec<u8> {
        let card = self.cardinality;
        (0..self.num_genes)
            .map(|_| self.rng.gen_range(0..card))
            .collect()
    }

    /// Runs `generations` of evolution, optionally seeded with starting
    /// genomes (topped up with random ones), returning the final population.
    pub fn run<E: LossEvaluator + ?Sized>(
        &mut self,
        evaluator: &E,
        seeds: Option<Vec<Vec<u8>>>,
    ) -> Population {
        let mut genomes: Vec<Vec<u8>> = seeds.unwrap_or_default();
        genomes.retain(|g| g.len() == self.num_genes);
        genomes.truncate(self.config.population_size);
        while genomes.len() < self.config.population_size {
            let g = self.random_genome();
            genomes.push(g);
        }
        let mut pop = Population::evaluate(genomes, evaluator);
        for _ in 0..self.config.generations {
            pop = self.step(pop, evaluator);
        }
        pop
    }

    /// One generation: elitism + tournament selection + crossover + mutation,
    /// with the offspring evaluated as a single population batch.
    fn step<E: LossEvaluator + ?Sized>(&mut self, pop: Population, evaluator: &E) -> Population {
        let size = self.config.population_size;
        let mut next: Vec<Individual> = pop.top(self.config.elite).to_vec();
        let mut offspring: Vec<Vec<u8>> = Vec::with_capacity(size - next.len());
        while next.len() + offspring.len() < size {
            let a = self.tournament(&pop);
            let b = self.tournament(&pop);
            let mut child = if self.rng.gen::<f64>() < self.config.crossover_rate {
                self.crossover(&pop.members()[a].genes, &pop.members()[b].genes)
            } else {
                // Clone the fitter parent (lower index = lower loss).
                pop.members()[a.min(b)].genes.clone()
            };
            self.mutate(&mut child);
            offspring.push(child);
        }
        let losses = evaluator.evaluate_population(&offspring);
        next.extend(
            offspring
                .into_iter()
                .zip(losses)
                .map(|(genes, loss)| Individual { loss, genes }),
        );
        Population::from_members(next)
    }

    /// Tournament selection: index of the best of `tournament_size` random
    /// members (population is sorted, so the smallest index wins).
    fn tournament(&mut self, pop: &Population) -> usize {
        let n = pop.len();
        (0..self.config.tournament_size.max(1))
            .map(|_| self.rng.gen_range(0..n))
            .min()
            .expect("tournament size >= 1")
    }

    /// Single-point crossover.
    fn crossover(&mut self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let point = self.rng.gen_range(0..self.num_genes);
        a[..point]
            .iter()
            .chain(b[point..].iter())
            .copied()
            .collect()
    }

    /// Per-gene mutation to a uniformly random value.
    fn mutate(&mut self, genes: &mut [u8]) {
        for g in genes.iter_mut() {
            if self.rng.gen::<f64>() < self.config.mutation_rate {
                *g = self.rng.gen_range(0..self.cardinality);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_eval::FnEvaluator;

    fn ones_count() -> impl LossEvaluator {
        FnEvaluator::new(|g: &[u8]| g.iter().filter(|&&x| x != 0).count() as f64)
    }

    #[test]
    fn solves_all_zeros() {
        let mut ga = GaInstance::new(16, 4, GaConfig::default(), 1);
        let pop = ga.run(&ones_count(), None);
        assert_eq!(pop.best().loss, 0.0);
        assert!(pop.best().genes.iter().all(|&g| g == 0));
    }

    #[test]
    fn solves_target_matching() {
        let target: Vec<u8> = (0..20).map(|i| (i % 4) as u8).collect();
        let t = target.clone();
        let fitness = FnEvaluator::new(move |g: &[u8]| {
            g.iter().zip(&t).filter(|(a, b)| a != b).count() as f64
        });
        let mut ga = GaInstance::new(20, 4, GaConfig::default(), 2);
        let pop = ga.run(&fitness, None);
        assert_eq!(pop.best().loss, 0.0);
        assert_eq!(pop.best().genes, target);
    }

    #[test]
    fn populations_stay_sorted() {
        let mut ga = GaInstance::new(
            8,
            4,
            GaConfig {
                generations: 5,
                ..GaConfig::default()
            },
            3,
        );
        let pop = ga.run(&ones_count(), None);
        for w in pop.members().windows(2) {
            assert!(w[0].loss <= w[1].loss);
        }
        assert_eq!(pop.len(), 100);
    }

    #[test]
    fn elitism_never_regresses() {
        // Track the best loss across generations manually.
        let mut ga = GaInstance::new(
            24,
            4,
            GaConfig {
                generations: 1,
                ..GaConfig::default()
            },
            4,
        );
        let fitness = ones_count();
        let mut pop = ga.run(&fitness, None);
        let mut best = pop.best().loss;
        for _ in 0..30 {
            let seeds: Vec<Vec<u8>> = pop.members().iter().map(|m| m.genes.clone()).collect();
            pop = ga.run(&fitness, Some(seeds));
            assert!(pop.best().loss <= best + 1e-12, "best-so-far regressed");
            best = pop.best().loss;
        }
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let run = |seed| {
            let mut ga = GaInstance::new(
                10,
                4,
                GaConfig {
                    generations: 20,
                    ..GaConfig::default()
                },
                seed,
            );
            ga.run(&ones_count(), None).best().clone()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn seeds_are_respected() {
        // Seeding the optimum keeps it (elitism).
        let optimum = vec![0u8; 10];
        let mut ga = GaInstance::new(
            10,
            4,
            GaConfig {
                generations: 3,
                ..GaConfig::default()
            },
            9,
        );
        let pop = ga.run(&ones_count(), Some(vec![optimum.clone()]));
        assert_eq!(pop.best().genes, optimum);
    }

    #[test]
    fn population_batch_equals_individual_evaluation() {
        // `Population::evaluate` must agree with genome-at-a-time calls.
        let fitness = ones_count();
        let genomes: Vec<Vec<u8>> = (0..12).map(|i| vec![(i % 4) as u8; 6]).collect();
        let pop = Population::evaluate(genomes.clone(), &fitness);
        for member in pop.members() {
            assert_eq!(member.loss, fitness.evaluate(&member.genes));
        }
        assert_eq!(pop.len(), genomes.len());
    }

    #[test]
    fn top_k_clamps() {
        let pop = Population::from_members(vec![
            Individual {
                loss: 1.0,
                genes: vec![1],
            },
            Individual {
                loss: 0.0,
                genes: vec![0],
            },
        ]);
        assert_eq!(pop.top(5).len(), 2);
        assert_eq!(pop.top(1)[0].loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn rejects_tiny_population() {
        GaInstance::new(
            4,
            4,
            GaConfig {
                population_size: 1,
                ..GaConfig::default()
            },
            0,
        );
    }
}
