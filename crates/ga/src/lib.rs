//! Integer-genome genetic algorithms: the PyGAD substitute.
//!
//! Clapton solves the discrete optimization `γ̂ = argmin L(γ)` over genomes
//! with four-valued genes using genetic algorithms (§4.1). The engine here
//! mirrors Figure 4 of the paper:
//!
//! 1. spawn `s` independent GA instances from random populations,
//! 2. each runs `m` generations of tournament selection, crossover and
//!    mutation,
//! 3. pool the top `k` solutions of every instance, mix them into fresh
//!    starting populations (topped up with new random guesses),
//! 4. repeat rounds until the global best loss stops improving, allowing two
//!    retry rounds before terminating.
//!
//! Paper hyper-parameters: `s = 10`, `m = 100`, `k = 20`, `|S| = 100`
//! ([`MultiGaConfig::paper`]).
//!
//! Fitness is consumed exclusively through the [`LossEvaluator`] trait
//! (re-exported from `clapton-eval`): instances request losses in population
//! batches, and [`MultiGa`] stacks a shared genome → loss cache on a
//! population-parallel batch path. Wrap a plain closure with
//! [`FnEvaluator`] when a full evaluator object is overkill.

mod engine;
mod instance;

pub use clapton_eval::{
    CacheStats, CachedEvaluator, FnEvaluator, LossEvaluator, ParallelEvaluator,
};
pub use clapton_runtime::{PooledEvaluator, WorkerPool};
pub use engine::{EngineState, MultiGa, MultiGaConfig, MultiGaResult};
pub use instance::{GaConfig, GaInstance, Individual, Population};
