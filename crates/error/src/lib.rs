//! The typed error hierarchy of the Clapton stack.
//!
//! Before the `JobSpec` front door, every entry point reported failures its
//! own way: panics in [`Pipeline`]-style builders, `Result<_, String>` in
//! `FakeBackend::from_json` and `ExecutableAnsatz::on_device`, `io::Error`
//! with stringified payloads in the suite runner. This crate is the one
//! vocabulary they all share now:
//!
//! * [`SpecError`] — a job *specification* is invalid (unknown registry
//!   name, qubit mismatch, out-of-range probability, …). Produced by
//!   `JobSpec::validate` and every registry lookup; always user-fixable by
//!   editing the spec.
//! * [`ClaptonError`] — anything that can go wrong *running* a job: an
//!   invalid spec (wrapping [`SpecError`]), malformed serialized input,
//!   ansatz placement failures, artifact I/O, or a job suspended on its
//!   round budget.
//!
//! Both implement [`std::error::Error`], so they compose with `?`, `Box<dyn
//! Error>`, and `anyhow`-style consumers without string plumbing.
//!
//! The crate sits at the bottom of the dependency graph (no dependencies),
//! so device, core, and service layers can all speak it.

use std::fmt;
use std::io;

/// Why a job specification was rejected before any work started.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec's `version` is newer than this build understands.
    UnsupportedVersion {
        /// The version the spec declared.
        version: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// A problem name that no registry entry matches.
    UnknownProblem {
        /// The requested name.
        name: String,
        /// Every name the registry would have accepted.
        available: Vec<String>,
    },
    /// A backend name that no registry entry matches.
    UnknownBackend {
        /// The requested name.
        name: String,
        /// Every name the registry would have accepted.
        available: Vec<String>,
    },
    /// The problem does not fit on the requested backend.
    QubitMismatch {
        /// What was being placed (problem / calibration / noise vector).
        context: String,
        /// Qubits the problem needs.
        needed: usize,
        /// Qubits the target provides.
        provided: usize,
    },
    /// A rate that must be a probability lies outside `[0, 1]`.
    InvalidProbability {
        /// Which field carried the value (e.g. `"noise.p2"`).
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A sampled evaluator with a zero shot budget (the estimate would be
    /// undefined).
    ZeroShots,
    /// Any other structurally invalid field.
    InvalidField {
        /// Dotted path of the field (e.g. `"methods"`).
        field: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnsupportedVersion { version, supported } => write!(
                f,
                "spec version {version} is newer than the supported version {supported}"
            ),
            SpecError::UnknownProblem { name, available } => write!(
                f,
                "unknown problem {name:?} (available: {})",
                available.join(", ")
            ),
            SpecError::UnknownBackend { name, available } => write!(
                f,
                "unknown backend {name:?} (available: {})",
                available.join(", ")
            ),
            SpecError::QubitMismatch {
                context,
                needed,
                provided,
            } => write!(
                f,
                "{context}: needs {needed} qubits but the target provides {provided}"
            ),
            SpecError::InvalidProbability { context, value } => {
                write!(f, "{context} = {value} is not a probability in [0, 1]")
            }
            SpecError::ZeroShots => write!(f, "sampled evaluator needs a non-zero shot budget"),
            SpecError::InvalidField { field, reason } => write!(f, "invalid {field}: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Anything that can go wrong submitting or running a Clapton job.
#[derive(Debug)]
pub enum ClaptonError {
    /// The job specification failed validation.
    Spec(SpecError),
    /// Serialized input (a spec file, a backend snapshot, a checkpoint) did
    /// not parse.
    Parse {
        /// What was being parsed.
        what: String,
        /// The underlying parse failure.
        detail: String,
    },
    /// The ansatz could not be placed on the device topology.
    Placement {
        /// The underlying layout/routing failure.
        detail: String,
    },
    /// Artifact or spec-file I/O failed.
    Io(io::Error),
    /// The job suspended on its round budget (or a drain request) before
    /// converging; resubmit the same spec (with the same artifact directory)
    /// to continue from the persisted checkpoint.
    Suspended {
        /// GA rounds completed so far.
        rounds: usize,
    },
    /// The job was cooperatively cancelled at a round boundary; the
    /// `cancelled` state is terminal and persisted beside the artifacts.
    Cancelled {
        /// GA rounds completed before the cancellation took effect.
        rounds: usize,
    },
    /// The job's executing thread died (panicked or was torn down) before
    /// producing a result — the typed replacement for what used to be a
    /// channel-disconnect panic in `JobHandle::wait`.
    JobAborted {
        /// Name of the job that died.
        job: String,
        /// Whatever is known about why (panic payload text when available).
        detail: String,
    },
    /// A submission names an artifact directory (job name + seed) already
    /// owned by a *different* spec — accepting it would mix checkpoints and
    /// reports of two distinct jobs.
    Conflict {
        /// The contested run directory.
        run: String,
    },
    /// An artifact file failed integrity verification (torn write, bit
    /// rot) and was quarantined — renamed to `<name>.corrupt-<ts>` so the
    /// slot can be rewritten. Recovery normally falls back to the previous
    /// round checkpoint; this error surfaces only when no fallback exists.
    CorruptArtifact {
        /// Name of the artifact that failed verification.
        artifact: String,
        /// File name the corrupt bytes were quarantined under.
        quarantined_to: String,
    },
    /// The job's artifact directory is leased by another live worker (a
    /// peer process sharing the run registry); retry after its lease is
    /// released or expires.
    Leased {
        /// The leased run directory.
        run: String,
        /// The worker currently holding the lease.
        owner: String,
        /// Milliseconds since the holder's last heartbeat.
        heartbeat_age_ms: u64,
    },
}

impl fmt::Display for ClaptonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaptonError::Spec(e) => write!(f, "invalid job spec: {e}"),
            ClaptonError::Parse { what, detail } => write!(f, "malformed {what}: {detail}"),
            ClaptonError::Placement { detail } => write!(f, "ansatz placement failed: {detail}"),
            ClaptonError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            ClaptonError::Suspended { rounds } => write!(
                f,
                "job suspended after {rounds} rounds (budget exhausted); \
                 resubmit to resume from the checkpoint"
            ),
            ClaptonError::Cancelled { rounds } => {
                write!(f, "job cancelled after {rounds} rounds")
            }
            ClaptonError::JobAborted { job, detail } => {
                write!(f, "job {job:?} aborted before producing a result: {detail}")
            }
            ClaptonError::Conflict { run } => write!(
                f,
                "run directory {run} was created from a different spec; refusing to mix \
                 artifacts (submit under a different name or seed)"
            ),
            ClaptonError::CorruptArtifact {
                artifact,
                quarantined_to,
            } => write!(
                f,
                "artifact {artifact} failed integrity verification and was \
                 quarantined as {quarantined_to}; no valid fallback was available"
            ),
            ClaptonError::Leased {
                run,
                owner,
                heartbeat_age_ms,
            } => write!(
                f,
                "run directory {run} is leased by live worker {owner:?} \
                 (last heartbeat {heartbeat_age_ms} ms ago); retry later"
            ),
        }
    }
}

impl std::error::Error for ClaptonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClaptonError::Spec(e) => Some(e),
            ClaptonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ClaptonError {
    fn from(e: SpecError) -> ClaptonError {
        ClaptonError::Spec(e)
    }
}

impl From<io::Error> for ClaptonError {
    fn from(e: io::Error) -> ClaptonError {
        ClaptonError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_are_informative() {
        let e = SpecError::UnknownProblem {
            name: "isig(J=0.25)".to_string(),
            available: vec!["ising(J=0.25)".to_string(), "xxz(J=1.00)".to_string()],
        };
        let msg = e.to_string();
        assert!(msg.contains("isig"), "{msg}");
        assert!(msg.contains("ising(J=0.25)"), "{msg}");

        let e = SpecError::InvalidProbability {
            context: "noise.p2".to_string(),
            value: 1.5,
        };
        assert!(e.to_string().contains("noise.p2 = 1.5"));
    }

    #[test]
    fn clapton_error_wraps_and_sources() {
        let spec = SpecError::ZeroShots;
        let e: ClaptonError = spec.clone().into();
        assert!(matches!(&e, ClaptonError::Spec(s) if *s == spec));
        assert!(e.source().is_some());
        let io: ClaptonError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io.source().is_some());
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_boxable() {
        fn takes_box(_: Box<dyn std::error::Error>) {}
        takes_box(Box::new(SpecError::ZeroShots));
        takes_box(Box::new(ClaptonError::Suspended { rounds: 3 }));
        takes_box(Box::new(ClaptonError::Cancelled { rounds: 3 }));
        takes_box(Box::new(ClaptonError::JobAborted {
            job: "ising(J=0.25)".to_string(),
            detail: "worker thread panicked".to_string(),
        }));
    }

    #[test]
    fn terminal_variants_name_the_job_state() {
        assert!(ClaptonError::Cancelled { rounds: 5 }
            .to_string()
            .contains("cancelled after 5 rounds"));
        let aborted = ClaptonError::JobAborted {
            job: "xxz(J=1.00)".to_string(),
            detail: "panic: index out of bounds".to_string(),
        };
        let msg = aborted.to_string();
        assert!(msg.contains("xxz(J=1.00)"), "{msg}");
        assert!(msg.contains("index out of bounds"), "{msg}");
        assert!(ClaptonError::Conflict {
            run: "/tmp/jobs/ising-seed7".to_string(),
        }
        .to_string()
        .contains("different spec"));
        let leased = ClaptonError::Leased {
            run: "/tmp/jobs/ising-seed7".to_string(),
            owner: "w1234-abcd".to_string(),
            heartbeat_age_ms: 250,
        };
        let msg = leased.to_string();
        assert!(msg.contains("w1234-abcd"), "{msg}");
        assert!(msg.contains("250 ms"), "{msg}");
        let corrupt = ClaptonError::CorruptArtifact {
            artifact: "queue.json".to_string(),
            quarantined_to: "queue.json.corrupt-1720000000000".to_string(),
        };
        let msg = corrupt.to_string();
        assert!(msg.contains("queue.json"), "{msg}");
        assert!(msg.contains("quarantined"), "{msg}");
    }
}
