//! Single-qubit Pauli operators.

use crate::Phase;
use std::fmt;

/// A single-qubit Pauli operator.
///
/// The `(x, z)` bit encoding matches the symplectic convention used by
/// [`PauliString`](crate::PauliString): `I=(0,0)`, `X=(1,0)`, `Y=(1,1)`,
/// `Z=(0,1)`.
///
/// # Example
///
/// ```
/// use clapton_pauli::{Pauli, Phase};
///
/// let (phase, p) = Pauli::X.mul(Pauli::Y);
/// assert_eq!((phase, p), (Phase::I, Pauli::Z)); // XY = iZ
/// assert!(!Pauli::X.commutes_with(Pauli::Z));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// The bit-flip operator.
    X,
    /// The combined bit-and-phase-flip operator (`Y = iXZ`).
    Y,
    /// The phase-flip operator.
    Z,
}

impl Pauli {
    /// All four Paulis in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Builds a Pauli from its symplectic `(x, z)` bits.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// The symplectic `(x, z)` bits of this Pauli.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Whether this is the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Multiplies two single-qubit Paulis: `self · rhs = phase · result`.
    ///
    /// The phase is exact, e.g. `X·Y = iZ` and `Y·X = -iZ`.
    ///
    /// Not `std::ops::Mul`: the product carries a phase alongside the Pauli,
    /// so the output type differs from `Self`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Pauli) -> (Phase, Pauli) {
        use Pauli::*;
        match (self, rhs) {
            (I, p) | (p, I) => (Phase::ONE, p),
            (a, b) if a == b => (Phase::ONE, I),
            (X, Y) => (Phase::I, Z),
            (Y, X) => (Phase::MINUS_I, Z),
            (Y, Z) => (Phase::I, X),
            (Z, Y) => (Phase::MINUS_I, X),
            (Z, X) => (Phase::I, Y),
            (X, Z) => (Phase::MINUS_I, Y),
            _ => unreachable!(),
        }
    }

    /// Whether two single-qubit Paulis commute.
    #[inline]
    pub fn commutes_with(self, rhs: Pauli) -> bool {
        self.is_identity() || rhs.is_identity() || self == rhs
    }

    /// The character representation (`'I'`, `'X'`, `'Y'`, `'Z'`).
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Parses a Pauli from a character (case-insensitive).
    #[inline]
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' | '_' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_table_is_su2_algebra() {
        use Pauli::*;
        // XY = iZ, YZ = iX, ZX = iY and the reversed products pick up -i.
        assert_eq!(X.mul(Y), (Phase::I, Z));
        assert_eq!(Y.mul(Z), (Phase::I, X));
        assert_eq!(Z.mul(X), (Phase::I, Y));
        assert_eq!(Y.mul(X), (Phase::MINUS_I, Z));
        assert_eq!(Z.mul(Y), (Phase::MINUS_I, X));
        assert_eq!(X.mul(Z), (Phase::MINUS_I, Y));
        for p in Pauli::ALL {
            assert_eq!(p.mul(p), (Phase::ONE, I));
            assert_eq!(I.mul(p), (Phase::ONE, p));
            assert_eq!(p.mul(I), (Phase::ONE, p));
        }
    }

    #[test]
    fn multiplication_is_associative() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                for c in Pauli::ALL {
                    let (p1, ab) = a.mul(b);
                    let (p2, ab_c) = ab.mul(c);
                    let left = (p1 * p2, ab_c);
                    let (q1, bc) = b.mul(c);
                    let (q2, a_bc) = a.mul(bc);
                    let right = (q1 * q2, a_bc);
                    assert_eq!(left, right, "({a}{b}){c} != {a}({b}{c})");
                }
            }
        }
    }

    #[test]
    fn commutation_matches_products() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (pab, _) = a.mul(b);
                let (pba, _) = b.mul(a);
                assert_eq!(a.commutes_with(b), pab == pba);
            }
        }
    }

    #[test]
    fn xz_round_trip() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn char_round_trip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
        }
        assert_eq!(Pauli::from_char('q'), None);
        assert_eq!(Pauli::from_char('_'), Some(Pauli::I));
    }
}
