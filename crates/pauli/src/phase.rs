//! The phase group `{1, i, -1, -i}` arising from Pauli products.

use std::fmt;
use std::ops::{Mul, MulAssign};

/// A power of the imaginary unit, `i^k` for `k ∈ {0, 1, 2, 3}`.
///
/// Products of Hermitian Pauli strings are Pauli strings up to one of these
/// four phases; Clifford conjugation of a Hermitian Pauli only ever produces
/// the real phases `±1` (see [`Phase::is_real`] / [`Phase::as_sign`]).
///
/// # Example
///
/// ```
/// use clapton_pauli::Phase;
///
/// assert_eq!(Phase::I * Phase::I, Phase::MINUS_ONE);
/// assert_eq!(Phase::MINUS_I.conj(), Phase::I);
/// assert_eq!(Phase::MINUS_ONE.as_sign(), Some(-1.0));
/// assert_eq!(Phase::I.as_sign(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Phase(u8);

impl Phase {
    /// The identity phase `+1`.
    pub const ONE: Phase = Phase(0);
    /// The imaginary unit `i`.
    pub const I: Phase = Phase(1);
    /// The phase `-1`.
    pub const MINUS_ONE: Phase = Phase(2);
    /// The phase `-i`.
    pub const MINUS_I: Phase = Phase(3);

    /// Creates `i^k` (the exponent is reduced modulo 4).
    #[inline]
    pub fn from_exponent(k: u8) -> Phase {
        Phase(k & 3)
    }

    /// The exponent `k` of `i^k`, in `0..4`.
    #[inline]
    pub fn exponent(self) -> u8 {
        self.0
    }

    /// Complex conjugate (`i ↔ -i`).
    #[inline]
    #[must_use]
    pub fn conj(self) -> Phase {
        Phase(self.0.wrapping_neg() & 3)
    }

    /// Multiplicative inverse (same as [`Phase::conj`] for unit phases).
    #[inline]
    #[must_use]
    pub fn inverse(self) -> Phase {
        self.conj()
    }

    /// Whether the phase is real (`+1` or `-1`).
    #[inline]
    pub fn is_real(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `Some(±1.0)` for real phases, `None` for `±i`.
    #[inline]
    pub fn as_sign(self) -> Option<f64> {
        match self.0 {
            0 => Some(1.0),
            2 => Some(-1.0),
            _ => None,
        }
    }

    /// The real/imaginary components `(re, im)` of the phase as floats.
    #[inline]
    pub fn as_complex(self) -> (f64, f64) {
        match self.0 {
            0 => (1.0, 0.0),
            1 => (0.0, 1.0),
            2 => (-1.0, 0.0),
            _ => (0.0, -1.0),
        }
    }
}

impl Mul for Phase {
    type Output = Phase;
    #[inline]
    fn mul(self, rhs: Phase) -> Phase {
        Phase((self.0 + rhs.0) & 3)
    }
}

impl MulAssign for Phase {
    #[inline]
    fn mul_assign(&mut self, rhs: Phase) {
        *self = *self * rhs;
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            0 => "+1",
            1 => "+i",
            2 => "-1",
            _ => "-i",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_table() {
        let all = [Phase::ONE, Phase::I, Phase::MINUS_ONE, Phase::MINUS_I];
        for &a in &all {
            assert_eq!(a * a.inverse(), Phase::ONE);
            for &b in &all {
                assert_eq!((a * b).exponent(), (a.exponent() + b.exponent()) % 4);
            }
        }
    }

    #[test]
    fn conjugation() {
        assert_eq!(Phase::ONE.conj(), Phase::ONE);
        assert_eq!(Phase::I.conj(), Phase::MINUS_I);
        assert_eq!(Phase::MINUS_ONE.conj(), Phase::MINUS_ONE);
        assert_eq!(Phase::MINUS_I.conj(), Phase::I);
    }

    #[test]
    fn signs_and_reality() {
        assert!(Phase::ONE.is_real());
        assert!(!Phase::I.is_real());
        assert_eq!(Phase::ONE.as_sign(), Some(1.0));
        assert_eq!(Phase::MINUS_I.as_sign(), None);
        assert_eq!(Phase::I.as_complex(), (0.0, 1.0));
    }

    #[test]
    fn display() {
        assert_eq!(Phase::ONE.to_string(), "+1");
        assert_eq!(Phase::MINUS_I.to_string(), "-i");
    }
}
