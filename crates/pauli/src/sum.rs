//! Weighted sums of Pauli strings — the Hamiltonian representation.

use crate::PauliString;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One Hamiltonian term `c · P`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// The real energy coefficient `c_i`.
    pub coefficient: f64,
    /// The Pauli string `P_i`.
    pub pauli: PauliString,
}

/// A Hermitian operator expressed as a real-weighted sum of Pauli strings,
/// `H = Σ_i c_i P_i` (paper §3.2).
///
/// This is the problem representation every part of Clapton consumes: the
/// Clifford transformation maps each `P_i` to a signed `P'_i` and absorbs the
/// sign into the coefficient, so the structure is closed under the
/// transformation (Eq. 6).
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliSum;
///
/// # fn main() -> Result<(), clapton_pauli::PauliParseError> {
/// let mut h = PauliSum::new(3);
/// h.push(0.5, "XXI".parse()?);
/// h.push(0.5, "XXI".parse()?); // duplicates combine on simplify
/// h.push(1.0, "ZII".parse()?);
/// h.simplify();
/// assert_eq!(h.num_terms(), 2);
/// assert_eq!(h.coefficient_of(&"XXI".parse()?), Some(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliSum {
    num_qubits: usize,
    terms: Vec<Term>,
}

impl PauliSum {
    /// Creates an empty sum (the zero operator) on `n` qubits.
    pub fn new(n: usize) -> PauliSum {
        PauliSum {
            num_qubits: n,
            terms: Vec::new(),
        }
    }

    /// Builds a sum from `(coefficient, pauli)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any string acts on a different number of qubits than `n`.
    pub fn from_terms<I>(n: usize, terms: I) -> PauliSum
    where
        I: IntoIterator<Item = (f64, PauliString)>,
    {
        let mut sum = PauliSum::new(n);
        for (c, p) in terms {
            sum.push(c, p);
        }
        sum
    }

    /// Appends a term (no combining; see [`PauliSum::simplify`]).
    ///
    /// # Panics
    ///
    /// Panics if `pauli.num_qubits() != self.num_qubits()`.
    pub fn push(&mut self, coefficient: f64, pauli: PauliString) {
        assert_eq!(
            pauli.num_qubits(),
            self.num_qubits,
            "term qubit count mismatch"
        );
        self.terms.push(Term { coefficient, pauli });
    }

    /// The number of qubits the operator acts on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of stored terms `M`.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The stored terms.
    #[inline]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Iterates over `(coefficient, pauli)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &PauliString)> + '_ {
        self.terms.iter().map(|t| (t.coefficient, &t.pauli))
    }

    /// The coefficient of the identity component (zero if absent).
    ///
    /// This equals `tr(H)/2^N`, i.e. the energy `E_ρ` of the fully mixed state
    /// used for the normalization of Figure 5 in the paper.
    pub fn identity_coefficient(&self) -> f64 {
        self.terms
            .iter()
            .filter(|t| t.pauli.is_identity())
            .map(|t| t.coefficient)
            .sum()
    }

    /// The coefficient attached to `pauli` after combining duplicates, or
    /// `None` if the string does not appear.
    pub fn coefficient_of(&self, pauli: &PauliString) -> Option<f64> {
        let mut acc = None;
        for t in &self.terms {
            if &t.pauli == pauli {
                *acc.get_or_insert(0.0) += t.coefficient;
            }
        }
        acc
    }

    /// Combines duplicate strings, drops terms with |c| below `1e-12`, and
    /// sorts terms canonically. Deterministic.
    pub fn simplify(&mut self) {
        let mut map: BTreeMap<PauliString, f64> = BTreeMap::new();
        for t in self.terms.drain(..) {
            *map.entry(t.pauli).or_insert(0.0) += t.coefficient;
        }
        self.terms = map
            .into_iter()
            .filter(|(_, c)| c.abs() > 1e-12)
            .map(|(pauli, coefficient)| Term { coefficient, pauli })
            .collect();
    }

    /// Expectation value `⟨0…0|H|0…0⟩`: the sum of Z-type coefficients.
    ///
    /// This is Clapton's noiseless loss term `L0(γ) = ⟨0|H(γ)|0⟩` (Eq. 10).
    pub fn expectation_all_zeros(&self) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coefficient * t.pauli.expectation_all_zeros())
            .sum()
    }

    /// Expectation value on a computational basis state given as
    /// little-endian bit words (see
    /// [`PauliString::expectation_basis_state`]).
    pub fn expectation_basis_state(&self, bits: &[u64]) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coefficient * t.pauli.expectation_basis_state(bits))
            .sum()
    }

    /// The 1-norm `Σ|c_i|`, an upper bound on the spectral range spread.
    pub fn one_norm(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient.abs()).sum()
    }

    /// Transforms each term's Pauli string through `f`, which returns the
    /// image string and a sign; signs are absorbed into coefficients (Eq. 6).
    pub fn map_terms<F>(&self, mut f: F) -> PauliSum
    where
        F: FnMut(&PauliString) -> (f64, PauliString),
    {
        let terms = self
            .terms
            .iter()
            .map(|t| {
                let (sign, p) = f(&t.pauli);
                Term {
                    coefficient: sign * t.coefficient,
                    pauli: p,
                }
            })
            .collect();
        PauliSum {
            num_qubits: self.num_qubits,
            terms,
        }
    }

    /// [`PauliSum::map_terms`] writing into `out`, reusing its term storage:
    /// `f` receives each source string and a pre-sized scratch destination
    /// to fill, and returns the sign to absorb into the coefficient. After
    /// the first call with a given shape, re-mapping performs no heap
    /// allocation — the hot path of the per-genome Hamiltonian transform.
    pub fn map_terms_into<F>(&self, mut f: F, out: &mut PauliSum)
    where
        F: FnMut(&PauliString, &mut PauliString) -> f64,
    {
        out.num_qubits = self.num_qubits;
        out.terms.truncate(self.terms.len());
        while out.terms.len() < self.terms.len() {
            out.terms.push(Term {
                coefficient: 0.0,
                pauli: PauliString::identity(self.num_qubits),
            });
        }
        for (src, dst) in self.terms.iter().zip(out.terms.iter_mut()) {
            if dst.pauli.num_qubits() != self.num_qubits {
                dst.pauli = PauliString::identity(self.num_qubits);
            }
            let sign = f(&src.pauli, &mut dst.pauli);
            dst.coefficient = sign * src.coefficient;
        }
    }

    /// Scales every coefficient by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for t in &mut self.terms {
            t.coefficient *= factor;
        }
    }

    /// Maximum term weight (locality) of the operator.
    pub fn max_weight(&self) -> usize {
        self.terms
            .iter()
            .map(|t| t.pauli.weight())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{:+.6}·{}", t.coefficient, t.pauli)?;
        }
        Ok(())
    }
}

impl Extend<(f64, PauliString)> for PauliSum {
    fn extend<I: IntoIterator<Item = (f64, PauliString)>>(&mut self, iter: I) {
        for (c, p) in iter {
            self.push(c, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pauli;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn simplify_combines_and_drops() {
        let mut h = PauliSum::from_terms(
            2,
            vec![
                (1.0, ps("XX")),
                (2.0, ps("XX")),
                (0.5, ps("ZI")),
                (-0.5, ps("ZI")),
            ],
        );
        h.simplify();
        assert_eq!(h.num_terms(), 1);
        assert_eq!(h.coefficient_of(&ps("XX")), Some(3.0));
        assert_eq!(h.coefficient_of(&ps("ZI")), None);
    }

    #[test]
    fn simplify_is_deterministic() {
        let build = |order: &[(f64, &str)]| {
            let mut h = PauliSum::new(2);
            for &(c, s) in order {
                h.push(c, ps(s));
            }
            h.simplify();
            h
        };
        let a = build(&[(1.0, "XX"), (2.0, "ZZ"), (3.0, "XY")]);
        let b = build(&[(3.0, "XY"), (1.0, "XX"), (2.0, "ZZ")]);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_coefficient_is_mixed_state_energy() {
        let h = PauliSum::from_terms(2, vec![(-4.0, ps("II")), (1.0, ps("ZZ")), (2.0, ps("XI"))]);
        // tr(H)/4 = -4 since non-identity Paulis are traceless.
        assert_eq!(h.identity_coefficient(), -4.0);
    }

    #[test]
    fn all_zeros_expectation_sums_z_terms() {
        let h = PauliSum::from_terms(
            3,
            vec![
                (1.0, ps("ZII")),
                (2.0, ps("IZZ")),
                (7.0, ps("XII")),
                (-0.5, ps("III")),
            ],
        );
        assert_eq!(h.expectation_all_zeros(), 1.0 + 2.0 - 0.5);
    }

    #[test]
    fn basis_state_expectation() {
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZI")), (1.0, ps("IZ")), (1.0, ps("ZZ"))]);
        // |01⟩ (qubit 1 excited): Z0=+1, Z1=-1, Z0Z1=-1.
        assert_eq!(h.expectation_basis_state(&[0b10]), -1.0);
        assert_eq!(h.expectation_basis_state(&[0b00]), 3.0);
    }

    #[test]
    fn basis_state_expectation_beyond_64_qubits() {
        let n = 100;
        let single = |q: usize| PauliString::single(n, q, crate::Pauli::Z);
        let h = PauliSum::from_terms(n, vec![(1.0, single(2)), (1.0, single(90))]);
        let mut bits = [0u64; 2];
        bits[90 / 64] |= 1 << (90 % 64);
        // Qubit 90 excited: its Z term reads -1, qubit 2's reads +1.
        assert_eq!(h.expectation_basis_state(&bits), 0.0);
        assert_eq!(h.expectation_basis_state(&[]), 2.0);
    }

    #[test]
    fn map_terms_absorbs_signs() {
        let h = PauliSum::from_terms(1, vec![(2.0, ps("X")), (3.0, ps("Z"))]);
        // A fake "transformation" flipping X→-Z and Z→X.
        let t = h.map_terms(|p| {
            if p.get(0) == Pauli::X {
                (-1.0, ps("Z"))
            } else {
                (1.0, ps("X"))
            }
        });
        assert_eq!(t.coefficient_of(&ps("Z")), Some(-2.0));
        assert_eq!(t.coefficient_of(&ps("X")), Some(3.0));
    }

    #[test]
    fn map_terms_into_matches_map_terms_and_reuses_storage() {
        let h = PauliSum::from_terms(2, vec![(2.0, ps("XY")), (3.0, ps("ZI")), (-1.0, ps("II"))]);
        let flip = |p: &PauliString| -> (f64, PauliString) {
            if p.get(0) == Pauli::X {
                (-1.0, ps("ZZ"))
            } else {
                (1.0, p.clone())
            }
        };
        let expected = h.map_terms(flip);
        // Start from a differently-shaped buffer: wrong register, wrong
        // term count — map_terms_into must rebuild it.
        let mut out = PauliSum::from_terms(3, vec![(9.0, ps("XXX"))]);
        h.map_terms_into(
            |src, dst| {
                let (sign, image) = flip(src);
                dst.clear();
                for q in image.support() {
                    dst.set(q, image.get(q));
                }
                sign
            },
            &mut out,
        );
        assert_eq!(out, expected);
        // A second pass over a now-matching buffer agrees too.
        h.map_terms_into(
            |src, dst| {
                let (sign, image) = flip(src);
                dst.clear();
                for q in image.support() {
                    dst.set(q, image.get(q));
                }
                sign
            },
            &mut out,
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn one_norm_and_weight() {
        let h = PauliSum::from_terms(3, vec![(1.5, ps("XYZ")), (-2.0, ps("ZII"))]);
        assert_eq!(h.one_norm(), 3.5);
        assert_eq!(h.max_weight(), 3);
    }

    #[test]
    fn display_formats_terms() {
        let h = PauliSum::from_terms(2, vec![(0.25, ps("XX"))]);
        assert_eq!(h.to_string(), "+0.250000·XX");
        assert_eq!(PauliSum::new(2).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn push_rejects_wrong_size() {
        let mut h = PauliSum::new(2);
        h.push(1.0, ps("XXX"));
    }

    #[test]
    fn serde_round_trip() {
        let h = PauliSum::from_terms(2, vec![(0.5, ps("XY")), (1.25, ps("ZI"))]);
        let json = serde_json::to_string(&h).unwrap();
        let back: PauliSum = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
