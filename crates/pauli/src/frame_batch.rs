//! Bit-parallel batches of Pauli error frames (64 frames per word).
//!
//! A Pauli-frame Monte Carlo simulator propagates one Pauli *error frame*
//! per shot through a Clifford circuit. Done one shot at a time that is a
//! scalar loop over per-qubit `get`/`mul`/`set` calls; stim's key insight is
//! that `K` frames can share one pass when their bits are stored
//! **transposed**: instead of one `(x, z)` bit pair per qubit per frame,
//! [`FrameBatch`] keeps, for every qubit, one `u64` x-word and one `u64`
//! z-word whose bit `s` belongs to shot `s`. Every frame operation then
//! becomes word-level boolean algebra applied to all 64 shots at once:
//!
//! * Clifford conjugation is a fixed XOR/swap network on the two words of
//!   the touched qubits (signs are irrelevant for error frames — only
//!   commutation with the measured observable matters),
//! * depolarizing-error injection XORs random masks into the words,
//! * the measurement flip of every shot is the XOR, over the observable's
//!   support, of the anticommuting bit planes ([`FrameBatch::anticommutation_mask`]).
//!
//! The random masks come from [`BernoulliWords`], a buffered geometric
//! sampler: for a channel of probability `p` it draws the *gaps* between
//! error shots (`⌊ln U / ln(1-p)⌋`), so a word of 64 shots costs `O(1 + 64p)`
//! RNG draws instead of 64 — the regime that matters, since physical error
//! rates are `10⁻⁴`–`10⁻²`. The gap state is carried across word boundaries,
//! so a multi-word shot sequence is one exact Bernoulli process.

use crate::{Pauli, PauliString};
use rand::Rng;

/// A batch of [`FrameBatch::LANES`] Pauli frames stored shot-major: for each
/// qubit `q`, bit `s` of `x(q)`/`z(q)` is the symplectic `(x, z)` bit of
/// shot `s`'s frame on that qubit.
///
/// The batch carries no phases: frames are error operators and only their
/// commutation structure is observable.
///
/// # Example
///
/// ```
/// use clapton_pauli::{FrameBatch, Pauli, PauliString};
///
/// let mut batch = FrameBatch::new(3);
/// // Inject X on qubit 1 into shots 0 and 5.
/// batch.xor_x(1, 0b100001);
/// assert_eq!(batch.frame(0), PauliString::single(3, 1, Pauli::X));
/// assert_eq!(batch.frame(1), PauliString::identity(3));
/// // Shots 0 and 5 anticommute with Z on qubit 1.
/// let obs = PauliString::single(3, 1, Pauli::Z);
/// assert_eq!(batch.anticommutation_mask(&obs), 0b100001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameBatch {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
}

impl FrameBatch {
    /// Shots per batch: one per bit of the per-qubit storage words.
    pub const LANES: usize = 64;

    /// A batch of identity frames on `n` qubits.
    pub fn new(n: usize) -> FrameBatch {
        FrameBatch {
            n,
            x: vec![0; n],
            z: vec![0; n],
        }
    }

    /// The register size.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Resets every frame to the identity.
    pub fn clear(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
    }

    /// The x bit-plane of `qubit` (bit `s` = shot `s`).
    #[inline]
    pub fn x(&self, qubit: usize) -> u64 {
        self.x[qubit]
    }

    /// The z bit-plane of `qubit`.
    #[inline]
    pub fn z(&self, qubit: usize) -> u64 {
        self.z[qubit]
    }

    /// XORs `mask` into the x plane of `qubit` (multiplies an `X` error into
    /// every frame whose mask bit is set).
    #[inline]
    pub fn xor_x(&mut self, qubit: usize, mask: u64) {
        self.x[qubit] ^= mask;
    }

    /// XORs `mask` into the z plane of `qubit`.
    #[inline]
    pub fn xor_z(&mut self, qubit: usize, mask: u64) {
        self.z[qubit] ^= mask;
    }

    /// Swaps the x and z planes of `qubit` (the H / √Y symplectic action).
    #[inline]
    pub fn swap_xz(&mut self, qubit: usize) {
        std::mem::swap(&mut self.x[qubit], &mut self.z[qubit]);
    }

    /// Swaps two qubits across all lanes (the SWAP gate).
    #[inline]
    pub fn swap_qubits(&mut self, a: usize, b: usize) {
        self.x.swap(a, b);
        self.z.swap(a, b);
    }

    /// Per-shot anticommutation with `obs`: bit `s` of the result is `1` iff
    /// shot `s`'s frame anticommutes with `obs`. Cost is one or two XORs per
    /// support qubit of `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `obs` acts on a different number of qubits.
    pub fn anticommutation_mask(&self, obs: &PauliString) -> u64 {
        assert_eq!(self.n, obs.num_qubits(), "qubit count mismatch");
        let mut acc = 0u64;
        for q in obs.support() {
            let (ox, oz) = obs.get(q).xz();
            if oz {
                acc ^= self.x[q];
            }
            if ox {
                acc ^= self.z[q];
            }
        }
        acc
    }

    /// Extracts shot `lane`'s frame as a [`PauliString`] (diagnostics/tests).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= FrameBatch::LANES`.
    pub fn frame(&self, lane: usize) -> PauliString {
        assert!(lane < FrameBatch::LANES, "lane {lane} out of range");
        PauliString::from_sparse(
            self.n,
            (0..self.n).map(|q| {
                let xb = (self.x[q] >> lane) & 1 == 1;
                let zb = (self.z[q] >> lane) & 1 == 1;
                (q, Pauli::from_xz(xb, zb))
            }),
        )
    }
}

/// A buffered geometric sampler producing 64-shot Bernoulli masks: each bit
/// of [`BernoulliWords::next_mask`] is set independently with probability
/// `p`, and the geometric gap state is carried across words so consecutive
/// masks form one exact Bernoulli process over the whole shot sequence.
///
/// `ln(1-p)` is precomputed once per channel; drawing a mask costs one RNG
/// draw per *set* bit (plus at most one for the carried gap), which for
/// physical error rates is orders of magnitude fewer draws than one per
/// shot.
#[derive(Debug, Clone)]
pub struct BernoulliWords {
    /// `1 / ln(1-p)` (negative); `p ∈ {0, 1}` short-circuit via the flags.
    inv_ln_q: f64,
    always: bool,
    never: bool,
    /// Shots to skip before the next error (`u64::MAX` ≈ never).
    gap: u64,
    primed: bool,
}

impl BernoulliWords {
    /// A sampler for per-shot probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64) -> BernoulliWords {
        BernoulliWords {
            // ln_1p keeps ln(1-p) finite and negative even when p is so
            // small that `1.0 - p` rounds to 1.0 — a plain ln would return
            // 0 there, flip the gap sign to -∞, and inject an error on
            // *every* shot instead of (almost) never.
            inv_ln_q: if p > 0.0 && p < 1.0 {
                (-p).ln_1p().recip()
            } else {
                0.0
            },
            always: p >= 1.0,
            // NaN probabilities count as "never" rather than poisoning gaps.
            never: p <= 0.0 || p.is_nan(),
            gap: 0,
            primed: false,
        }
    }

    /// Draws the geometric gap to the next error: `⌊ln U / ln(1-p)⌋`.
    fn draw_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // 1-u ∈ (0, 1], so the ratio of two non-positive logs is ≥ 0.
        let g = (-u).ln_1p() * self.inv_ln_q;
        if g >= u64::MAX as f64 {
            u64::MAX
        } else {
            g as u64
        }
    }

    /// The Bernoulli mask of the next 64 shots.
    pub fn next_mask<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if self.never {
            return 0;
        }
        if self.always {
            return !0;
        }
        if !self.primed {
            self.gap = self.draw_gap(rng);
            self.primed = true;
        }
        let mut mask = 0u64;
        while self.gap < FrameBatch::LANES as u64 {
            mask |= 1 << self.gap;
            // Two saturating steps: `1 + draw_gap()` itself overflows when
            // the draw saturated at u64::MAX.
            self.gap = self
                .gap
                .saturating_add(1)
                .saturating_add(self.draw_gap(rng));
        }
        self.gap -= FrameBatch::LANES as u64;
        mask
    }
}

/// Uniform non-identity Pauli planes for every set bit of `mask`: returns
/// `(x, z)` words where each masked bit pair is uniform over
/// `{X=(1,0), Y=(1,1), Z=(0,1)}` (the single-qubit depolarizing kick).
/// Bits outside `mask` are zero.
///
/// Uses word-level rejection: a draw gives each bit pair uniform over four
/// combinations, and only the (exponentially shrinking) set of bits that
/// drew identity is redrawn.
pub fn uniform_pauli_planes<R: Rng + ?Sized>(mask: u64, rng: &mut R) -> (u64, u64) {
    let (mut x, mut z) = (rng.gen::<u64>(), rng.gen::<u64>());
    let mut identity = mask & !(x | z);
    while identity != 0 {
        x |= rng.gen::<u64>() & identity;
        z |= rng.gen::<u64>() & identity;
        identity = mask & !(x | z);
    }
    (x & mask, z & mask)
}

/// Uniform non-identity *two-qubit* Pauli planes for every set bit of
/// `mask`: returns `(xa, za, xb, zb)` words where each masked 4-bit column
/// is uniform over the 15 non-identity two-qubit Paulis (the two-qubit
/// depolarizing kick). Bits outside `mask` are zero.
pub fn uniform_pauli_pair_planes<R: Rng + ?Sized>(mask: u64, rng: &mut R) -> (u64, u64, u64, u64) {
    let (mut xa, mut za) = (rng.gen::<u64>(), rng.gen::<u64>());
    let (mut xb, mut zb) = (rng.gen::<u64>(), rng.gen::<u64>());
    let mut identity = mask & !(xa | za | xb | zb);
    while identity != 0 {
        xa |= rng.gen::<u64>() & identity;
        za |= rng.gen::<u64>() & identity;
        xb |= rng.gen::<u64>() & identity;
        zb |= rng.gen::<u64>() & identity;
        identity = mask & !(xa | za | xb | zb);
    }
    (xa & mask, za & mask, xb & mask, zb & mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_batch_is_all_identity() {
        let batch = FrameBatch::new(5);
        for lane in 0..FrameBatch::LANES {
            assert!(batch.frame(lane).is_identity());
        }
    }

    #[test]
    fn injection_and_extraction_round_trip() {
        let mut batch = FrameBatch::new(4);
        batch.xor_x(0, 0b01);
        batch.xor_z(0, 0b10);
        batch.xor_x(3, 0b10);
        batch.xor_z(3, 0b10);
        assert_eq!(batch.frame(0), "XIII".parse().unwrap());
        assert_eq!(batch.frame(1), "ZIIY".parse().unwrap());
        assert_eq!(batch.frame(2), PauliString::identity(4));
        batch.clear();
        assert_eq!(batch.frame(0), PauliString::identity(4));
    }

    #[test]
    fn anticommutation_mask_matches_per_lane_check() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 3, 70] {
            let mut batch = FrameBatch::new(n);
            for q in 0..n {
                batch.xor_x(q, rng.gen());
                batch.xor_z(q, rng.gen());
            }
            for _ in 0..5 {
                let obs = PauliString::random(n, &mut rng);
                let mask = batch.anticommutation_mask(&obs);
                for lane in [0usize, 1, 17, 63] {
                    let expected = !batch.frame(lane).commutes_with(&obs);
                    assert_eq!((mask >> lane) & 1 == 1, expected, "lane {lane} n {n}");
                }
            }
        }
    }

    #[test]
    fn swap_qubits_and_planes() {
        let mut batch = FrameBatch::new(2);
        batch.xor_x(0, 0b1);
        batch.swap_qubits(0, 1);
        assert_eq!(batch.frame(0), "IX".parse().unwrap());
        batch.swap_xz(1);
        assert_eq!(batch.frame(0), "IZ".parse().unwrap());
    }

    #[test]
    fn bernoulli_words_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(BernoulliWords::new(0.0).next_mask(&mut rng), 0);
        assert_eq!(BernoulliWords::new(-1.0).next_mask(&mut rng), 0);
        assert_eq!(BernoulliWords::new(1.0).next_mask(&mut rng), !0);
        assert_eq!(BernoulliWords::new(2.0).next_mask(&mut rng), !0);
    }

    #[test]
    fn bernoulli_words_match_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        for &p in &[1e-3, 0.05, 0.3, 0.9] {
            let mut sampler = BernoulliWords::new(p);
            let words = 4000usize;
            let ones: u32 = (0..words)
                .map(|_| sampler.next_mask(&mut rng).count_ones())
                .sum();
            let rate = ones as f64 / (words * 64) as f64;
            let sigma = (p * (1.0 - p) / (words * 64) as f64).sqrt();
            assert!((rate - p).abs() < 6.0 * sigma + 1e-6, "p {p}: rate {rate}");
        }
    }

    #[test]
    fn bernoulli_words_survive_extreme_probabilities() {
        // Regression: p below f64's 1-p resolution must behave as "almost
        // never" (a plain ln(1.0-p) = 0 inverted the gap to -∞, which set
        // EVERY bit), and gap draws that saturate at u64::MAX must not
        // overflow the `1 + gap` advance.
        let mut rng = StdRng::seed_from_u64(3);
        for &p in &[1e-300, f64::MIN_POSITIVE, 1e-25, 1e-18] {
            let mut sampler = BernoulliWords::new(p);
            for _ in 0..256 {
                assert_eq!(sampler.next_mask(&mut rng), 0, "p = {p:e}");
            }
        }
    }

    #[test]
    fn bernoulli_words_is_deterministic() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut s = BernoulliWords::new(0.02);
            (0..32).map(|_| s.next_mask(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn uniform_pauli_planes_cover_xyz_only() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4]; // I, X, Y, Z
        for _ in 0..500 {
            let (x, z) = uniform_pauli_planes(!0, &mut rng);
            for b in 0..64 {
                let idx = (((x >> b) & 1) + 2 * ((z >> b) & 1)) as usize;
                counts[idx] += 1;
            }
        }
        assert_eq!(counts[0], 0, "identity must never be injected");
        let total: usize = counts.iter().sum();
        for &c in &counts[1..] {
            let rate = c as f64 / total as f64;
            assert!((rate - 1.0 / 3.0).abs() < 0.01, "counts {counts:?}");
        }
    }

    #[test]
    fn uniform_pauli_planes_respect_mask() {
        let mut rng = StdRng::seed_from_u64(6);
        let mask = 0xF0F0_0000_1234_0001;
        let (x, z) = uniform_pauli_planes(mask, &mut rng);
        assert_eq!(x & !mask, 0);
        assert_eq!(z & !mask, 0);
        assert_eq!(mask & !(x | z), 0, "every masked bit got a non-identity");
        let (xa, za, xb, zb) = uniform_pauli_pair_planes(mask, &mut rng);
        for w in [xa, za, xb, zb] {
            assert_eq!(w & !mask, 0);
        }
        assert_eq!(mask & !(xa | za | xb | zb), 0);
    }

    #[test]
    fn uniform_pauli_pair_planes_are_uniform_over_fifteen() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0usize; 16];
        for _ in 0..800 {
            let (xa, za, xb, zb) = uniform_pauli_pair_planes(!0, &mut rng);
            for b in 0..64 {
                let idx = (((xa >> b) & 1)
                    + 2 * ((za >> b) & 1)
                    + 4 * ((xb >> b) & 1)
                    + 8 * ((zb >> b) & 1)) as usize;
                counts[idx] += 1;
            }
        }
        assert_eq!(counts[0], 0);
        let total: usize = counts.iter().sum();
        for &c in &counts[1..] {
            let rate = c as f64 / total as f64;
            assert!((rate - 1.0 / 15.0).abs() < 0.01, "counts {counts:?}");
        }
    }
}
