//! Bit-packed Pauli algebra for the Clapton reproduction.
//!
//! This crate is the foundation of the whole stack: it provides
//!
//! * [`Pauli`] — the single-qubit Pauli operators `I, X, Y, Z` with an exact
//!   multiplication table (including the `i^k` phases),
//! * [`Phase`] — the group `{1, i, -1, -i}` of phases that arise when
//!   multiplying Pauli operators,
//! * [`PauliString`] — an `N`-qubit Pauli operator stored as two bit vectors
//!   (`x` and `z` masks), with phase-exact products, commutation checks and
//!   support queries,
//! * [`PauliSum`] — a real-weighted sum of Pauli strings, the representation of
//!   every VQE Hamiltonian in the paper (`H = Σ_i c_i P_i`, §3.2),
//! * [`FrameBatch`] — 64 Pauli error frames stored shot-major (one `u64`
//!   x/z word pair per qubit), the bit-parallel substrate of the stim-style
//!   frame sampler, with [`BernoulliWords`] buffered-geometric error masks,
//! * [`TermBatch`] — the signed sibling of [`FrameBatch`]: 64 Hamiltonian-term
//!   observables stored term-major plus a sign bit-plane, the substrate of
//!   the bit-parallel *exact* back-propagation path.
//!
//! The representation follows the symplectic convention used by stim and
//! Qiskit: a qubit with `(x, z)` bits `(0,0), (1,0), (1,1), (0,1)` carries
//! `I, X, Y, Z` respectively, and the string always denotes the *Hermitian*
//! tensor product of those single-qubit operators. Phases only appear as the
//! result of operations (products, Clifford conjugations) and are tracked
//! explicitly through [`Phase`].
//!
//! # Example
//!
//! ```
//! use clapton_pauli::{PauliString, PauliSum};
//!
//! # fn main() -> Result<(), clapton_pauli::PauliParseError> {
//! let xx: PauliString = "XX".parse()?;
//! let zz: PauliString = "ZZ".parse()?;
//! assert!(xx.commutes_with(&zz));
//!
//! // The 2-qubit transverse-field Ising Hamiltonian J X0X1 + Z0 + Z1.
//! let h = PauliSum::from_terms(2, vec![
//!     (0.5, "XX".parse()?),
//!     (1.0, "ZI".parse()?),
//!     (1.0, "IZ".parse()?),
//! ]);
//! assert_eq!(h.num_terms(), 3);
//! // ⟨00|H|00⟩ = 2 (the XX term has zero diagonal on |00⟩).
//! assert_eq!(h.expectation_all_zeros(), 2.0);
//! # Ok(())
//! # }
//! ```

mod frame_batch;
mod phase;
mod single;
mod string;
mod sum;
mod term_batch;

pub use frame_batch::{
    uniform_pauli_pair_planes, uniform_pauli_planes, BernoulliWords, FrameBatch,
};
pub use phase::Phase;
pub use single::Pauli;
pub use string::{PauliParseError, PauliString};
pub use sum::{PauliSum, Term};
pub use term_batch::TermBatch;

/// Number of bits per storage word in [`PauliString`].
pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed to store `n` bits.
pub(crate) fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}
