//! Multi-qubit Pauli strings with bit-packed storage.

use crate::{words_for, Pauli, Phase, WORD_BITS};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// An `N`-qubit Hermitian Pauli operator `P = P_1 ⊗ P_2 ⊗ … ⊗ P_N`.
///
/// Storage is symplectic: two bit vectors hold the `x` and `z` bits of every
/// qubit, so products, commutation checks and Clifford conjugations are a few
/// word-level operations per 64 qubits. The string itself is always the
/// *Hermitian* operator; phases produced by operations are returned as
/// [`Phase`] values.
///
/// Qubit `0` is the **leftmost** character in the text representation, i.e.
/// `"XIZ"` is `X` on qubit 0 and `Z` on qubit 2, matching the paper's
/// `P_1 P_2 … P_N` notation (Eq. 1).
///
/// # Example
///
/// ```
/// use clapton_pauli::{Pauli, PauliString, Phase};
///
/// # fn main() -> Result<(), clapton_pauli::PauliParseError> {
/// let p: PauliString = "XYI".parse()?;
/// let q: PauliString = "YXI".parse()?;
/// let (phase, prod) = p.mul(&q);
/// // (X⊗Y)(Y⊗X) = (XY)⊗(YX) = (iZ)⊗(-iZ) = Z⊗Z
/// assert_eq!(phase, Phase::ONE);
/// assert_eq!(prod, "ZZI".parse()?);
/// assert_eq!(p.weight(), 2);
/// assert_eq!(p.get(1), Pauli::Y);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
}

/// Error returned when parsing a [`PauliString`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliParseError {
    offending: char,
}

impl fmt::Display for PauliParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Pauli character {:?} (expected one of I, X, Y, Z or _)",
            self.offending
        )
    }
}

impl std::error::Error for PauliParseError {}

impl PauliString {
    /// Creates the identity operator on `n` qubits.
    pub fn identity(n: usize) -> PauliString {
        let w = words_for(n);
        PauliString {
            n,
            x: vec![0; w],
            z: vec![0; w],
        }
    }

    /// Creates a single-qubit Pauli embedded into an `n`-qubit string.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> PauliString {
        let mut s = PauliString::identity(n);
        s.set(qubit, p);
        s
    }

    /// Builds a Pauli string from an iterator of `(qubit, Pauli)` pairs;
    /// unspecified qubits are identity.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn from_sparse<I>(n: usize, ops: I) -> PauliString
    where
        I: IntoIterator<Item = (usize, Pauli)>,
    {
        let mut s = PauliString::identity(n);
        for (q, p) in ops {
            s.set(q, p);
        }
        s
    }

    /// The number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits()`.
    #[inline]
    pub fn get(&self, qubit: usize) -> Pauli {
        assert!(qubit < self.n, "qubit {qubit} out of range (n={})", self.n);
        let (w, b) = (qubit / WORD_BITS, qubit % WORD_BITS);
        Pauli::from_xz((self.x[w] >> b) & 1 == 1, (self.z[w] >> b) & 1 == 1)
    }

    /// Sets the Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits()`.
    #[inline]
    pub fn set(&mut self, qubit: usize, p: Pauli) {
        assert!(qubit < self.n, "qubit {qubit} out of range (n={})", self.n);
        let (w, b) = (qubit / WORD_BITS, qubit % WORD_BITS);
        let (xb, zb) = p.xz();
        self.x[w] = (self.x[w] & !(1 << b)) | ((xb as u64) << b);
        self.z[w] = (self.z[w] & !(1 << b)) | ((zb as u64) << b);
    }

    /// Raw `x` bit words (little-endian qubit order within each word).
    #[inline]
    pub fn x_words(&self) -> &[u64] {
        &self.x
    }

    /// Raw `z` bit words.
    #[inline]
    pub fn z_words(&self) -> &[u64] {
        &self.z
    }

    /// Resets every qubit to the identity, keeping the register size (and
    /// the storage allocation — the in-place counterpart of
    /// [`PauliString::identity`] for scratch buffers).
    pub fn clear(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
    }

    /// Whether this is the identity string.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x.iter().all(|&w| w == 0) && self.z.iter().all(|&w| w == 0)
    }

    /// Whether the operator acts non-trivially on `qubit`.
    #[inline]
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.get(qubit) != Pauli::I
    }

    /// Number of qubits on which the operator is non-identity.
    pub fn weight(&self) -> usize {
        self.x
            .iter()
            .zip(&self.z)
            .map(|(&x, &z)| (x | z).count_ones() as usize)
            .sum()
    }

    /// Whether every non-identity factor is `Z` (diagonal in the computational
    /// basis). The identity string is Z-type.
    pub fn is_z_type(&self) -> bool {
        self.x.iter().all(|&w| w == 0)
    }

    /// Whether every non-identity factor is `X`.
    pub fn is_x_type(&self) -> bool {
        self.z.iter().all(|&w| w == 0)
    }

    /// Iterates over the qubits in the support (non-identity positions).
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        SupportIter {
            words: self
                .x
                .iter()
                .zip(&self.z)
                .map(|(&x, &z)| x | z)
                .collect::<Vec<_>>(),
            word: 0,
            n: self.n,
        }
    }

    /// Whether two Pauli strings commute (symplectic inner product is even).
    ///
    /// # Panics
    ///
    /// Panics if the operands act on different numbers of qubits.
    pub fn commutes_with(&self, rhs: &PauliString) -> bool {
        assert_eq!(self.n, rhs.n, "qubit count mismatch");
        let mut acc = 0u32;
        for i in 0..self.x.len() {
            acc ^= (self.x[i] & rhs.z[i]).count_ones() & 1;
            acc ^= (self.z[i] & rhs.x[i]).count_ones() & 1;
        }
        acc & 1 == 0
    }

    /// Multiplies two Pauli strings, returning the exact phase:
    /// `self · rhs = phase · result`.
    ///
    /// # Panics
    ///
    /// Panics if the operands act on different numbers of qubits.
    pub fn mul(&self, rhs: &PauliString) -> (Phase, PauliString) {
        let mut out = self.clone();
        let phase = out.mul_assign_right(rhs);
        (phase, out)
    }

    /// In-place right multiplication: `self ← self · rhs`, returning the phase.
    ///
    /// # Panics
    ///
    /// Panics if the operands act on different numbers of qubits.
    pub fn mul_assign_right(&mut self, rhs: &PauliString) -> Phase {
        assert_eq!(self.n, rhs.n, "qubit count mismatch");
        // Per-qubit phase exponents of σ_a σ_b accumulated at word level:
        // +1 (i) for (Y,Z), (X,Y), (Z,X); -1 (-i) for (Y,X), (X,Z), (Z,Y).
        let mut exp: u32 = 0;
        for i in 0..self.x.len() {
            let (x1, z1) = (self.x[i], self.z[i]);
            let (x2, z2) = (rhs.x[i], rhs.z[i]);
            let plus = (x1 & z1 & z2 & !x2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            let minus = (x1 & z1 & x2 & !z2) | (x1 & !z1 & !x2 & z2) | (!x1 & z1 & x2 & z2);
            exp = exp
                .wrapping_add(plus.count_ones())
                .wrapping_sub(minus.count_ones());
            self.x[i] = x1 ^ x2;
            self.z[i] = z1 ^ z2;
        }
        Phase::from_exponent((exp & 3) as u8)
    }

    /// Expectation value `⟨0…0|P|0…0⟩`: `1.0` for Z-type strings (every factor
    /// `I` or `Z` fixes `|0⟩`), otherwise `0.0`.
    pub fn expectation_all_zeros(&self) -> f64 {
        if self.is_z_type() {
            1.0
        } else {
            0.0
        }
    }

    /// Expectation value `⟨b|P|b⟩` for the computational basis state whose
    /// qubit `k` is `(bits[k / 64] >> (k % 64)) & 1` (little-endian words,
    /// matching [`PauliString::z_words`]). Returns `0.0` unless `P` is
    /// Z-type, and otherwise `±1` depending on the parity of flipped qubits
    /// in the support.
    ///
    /// Missing trailing words of `bits` are treated as `0`, so a
    /// single-`u64` slice works for any register of at most 64 qubits;
    /// extra words are ignored.
    pub fn expectation_basis_state(&self, bits: &[u64]) -> f64 {
        if !self.is_z_type() {
            return 0.0;
        }
        let parity = self
            .z
            .iter()
            .zip(bits)
            .fold(0u32, |acc, (&z, &b)| acc ^ ((z & b).count_ones() & 1));
        if parity == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Returns the tensor product `self ⊗ rhs` on `self.n + rhs.n` qubits.
    pub fn tensor(&self, rhs: &PauliString) -> PauliString {
        let mut out = PauliString::identity(self.n + rhs.n);
        for q in 0..self.n {
            out.set(q, self.get(q));
        }
        for q in 0..rhs.n {
            out.set(self.n + q, rhs.get(q));
        }
        out
    }

    /// Iterates over `(qubit, Pauli)` for every qubit (including identities).
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.n).map(move |q| self.get(q))
    }

    /// Samples a uniformly random Pauli string (each qubit uniform over
    /// `{I, X, Y, Z}`).
    pub fn random<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> PauliString {
        let w = words_for(n);
        let mut s = PauliString {
            n,
            x: (0..w).map(|_| rng.gen()).collect(),
            z: (0..w).map(|_| rng.gen()).collect(),
        };
        s.mask_top();
        s
    }

    /// Samples a random *non-identity* Pauli string.
    pub fn random_non_identity<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> PauliString {
        assert!(n > 0, "need at least one qubit");
        loop {
            let s = PauliString::random(n, rng);
            if !s.is_identity() {
                return s;
            }
        }
    }

    /// Zeroes the unused bits above qubit `n-1` in the top storage word.
    fn mask_top(&mut self) {
        let rem = self.n % WORD_BITS;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            if let Some(last) = self.x.last_mut() {
                *last &= mask;
            }
            if let Some(last) = self.z.last_mut() {
                *last &= mask;
            }
        }
    }

    /// A canonical ordering key (used for sorting/deduplicating Hamiltonian
    /// terms deterministically).
    pub fn order_key(&self) -> (usize, &[u64], &[u64]) {
        (self.n, &self.z, &self.x)
    }
}

struct SupportIter {
    words: Vec<u64>,
    word: usize,
    n: usize,
}

impl Iterator for SupportIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        while self.word < self.words.len() {
            let w = self.words[self.word];
            if w == 0 {
                self.word += 1;
                continue;
            }
            let bit = w.trailing_zeros() as usize;
            self.words[self.word] &= w - 1;
            let q = self.word * WORD_BITS + bit;
            if q < self.n {
                return Some(q);
            }
        }
        None
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.iter() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl FromStr for PauliString {
    type Err = PauliParseError;

    fn from_str(s: &str) -> Result<PauliString, PauliParseError> {
        let chars: Vec<char> = s.chars().collect();
        let mut out = PauliString::identity(chars.len());
        for (q, &c) in chars.iter().enumerate() {
            let p = Pauli::from_char(c).ok_or(PauliParseError { offending: c })?;
            out.set(q, p);
        }
        Ok(out)
    }
}

impl PartialOrd for PauliString {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PauliString {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl Serialize for PauliString {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for PauliString {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn identity_and_single() {
        let id = PauliString::identity(5);
        assert!(id.is_identity());
        assert_eq!(id.weight(), 0);
        let x2 = PauliString::single(5, 2, Pauli::X);
        assert_eq!(x2.to_string(), "IIXII");
        assert_eq!(x2.weight(), 1);
        assert!(x2.acts_on(2));
        assert!(!x2.acts_on(1));
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["XYZI", "IIII", "ZZZZZZZZZZ", "X", "Y_Z"] {
            let p = ps(s);
            let canonical = s.replace('_', "I");
            assert_eq!(p.to_string(), canonical);
        }
        assert!("XQ".parse::<PauliString>().is_err());
    }

    #[test]
    fn product_phases_match_single_qubit_table() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let pa = PauliString::single(1, 0, a);
                let pb = PauliString::single(1, 0, b);
                let (phase, prod) = pa.mul(&pb);
                let (ephase, eprod) = a.mul(b);
                assert_eq!(phase, ephase, "{a} * {b}");
                assert_eq!(prod.get(0), eprod);
            }
        }
    }

    #[test]
    fn multi_qubit_product_example() {
        // (X⊗Y⊗Z)(Y⊗Y⊗I) = (XY)⊗(YY)⊗Z = iZ ⊗ I ⊗ Z
        let (phase, prod) = ps("XYZ").mul(&ps("YYI"));
        assert_eq!(phase, Phase::I);
        assert_eq!(prod, ps("ZIZ"));
    }

    #[test]
    fn commutation_examples() {
        assert!(ps("XX").commutes_with(&ps("ZZ")));
        assert!(!ps("XI").commutes_with(&ps("ZI")));
        assert!(ps("XY").commutes_with(&ps("YX")));
        assert!(ps("IIII").commutes_with(&ps("XYZX")));
    }

    #[test]
    fn support_iterates_non_identity_qubits() {
        let p = ps("IXIYZ");
        assert_eq!(p.support().collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(PauliString::identity(3).support().count(), 0);
    }

    #[test]
    fn support_works_across_word_boundaries() {
        let mut p = PauliString::identity(130);
        p.set(0, Pauli::X);
        p.set(63, Pauli::Y);
        p.set(64, Pauli::Z);
        p.set(129, Pauli::X);
        assert_eq!(p.support().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(p.weight(), 4);
    }

    #[test]
    fn z_type_and_expectations() {
        assert!(ps("ZIZ").is_z_type());
        assert!(!ps("ZXZ").is_z_type());
        assert_eq!(ps("ZIZ").expectation_all_zeros(), 1.0);
        assert_eq!(ps("XII").expectation_all_zeros(), 0.0);
        // ⟨10|Z0 Z1|10⟩ with bit 0 set: one flipped qubit in support → -1.
        assert_eq!(ps("ZZ").expectation_basis_state(&[0b01]), -1.0);
        assert_eq!(ps("ZZ").expectation_basis_state(&[0b11]), 1.0);
        assert_eq!(ps("ZI").expectation_basis_state(&[0b10]), 1.0);
        assert_eq!(ps("XZ").expectation_basis_state(&[0b00]), 0.0);
        // An empty slice is the all-zeros state.
        assert_eq!(ps("ZZ").expectation_basis_state(&[]), 1.0);
    }

    #[test]
    fn basis_state_expectation_beyond_64_qubits() {
        // Regression: the parity must read every bit word, not just the
        // first — a flipped qubit ≥ 64 in the support must show up.
        let mut p = PauliString::identity(130);
        p.set(3, Pauli::Z);
        p.set(70, Pauli::Z);
        p.set(129, Pauli::Z);
        let mut bits = [0u64; 3];
        bits[70 / 64] |= 1 << (70 % 64);
        assert_eq!(p.expectation_basis_state(&bits), -1.0);
        // Flip a second support qubit in another word: parity is even again.
        bits[129 / 64] |= 1 << (129 % 64);
        assert_eq!(p.expectation_basis_state(&bits), 1.0);
        // Flips outside the support never matter, in any word.
        bits[1] |= 1 << (100 % 64);
        assert_eq!(p.expectation_basis_state(&bits), 1.0);
        // X anywhere still zeroes the diagonal element.
        p.set(65, Pauli::X);
        assert_eq!(p.expectation_basis_state(&bits), 0.0);
    }

    #[test]
    fn clear_resets_to_identity_in_place() {
        let mut p = ps("XYZI");
        p.clear();
        assert!(p.is_identity());
        assert_eq!(p.num_qubits(), 4);
        // Works across word boundaries too.
        let mut wide = PauliString::identity(130);
        wide.set(129, Pauli::Y);
        wide.clear();
        assert!(wide.is_identity());
    }

    #[test]
    fn tensor_concatenates() {
        let t = ps("XY").tensor(&ps("Z"));
        assert_eq!(t, ps("XYZ"));
    }

    #[test]
    fn random_respects_qubit_count() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 3, 64, 65, 100] {
            let p = PauliString::random(n, &mut rng);
            assert_eq!(p.num_qubits(), n);
            // No stray bits above n.
            assert!(p.support().all(|q| q < n));
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = ps("XIZY");
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "\"XIZY\"");
        let back: PauliString = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }

    /// Two uniformly random Pauli strings of the same (random) length.
    fn same_length_pair() -> impl Strategy<Value = (PauliString, PauliString)> {
        (1usize..80).prop_flat_map(|n| {
            let one = proptest::collection::vec(0u8..4, n).prop_map(|v| {
                PauliString::from_sparse(
                    v.len(),
                    v.iter()
                        .enumerate()
                        .map(|(q, &k)| (q, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k as usize])),
                )
            });
            (one.clone(), one)
        })
    }

    proptest! {
        #[test]
        fn prop_product_self_inverse(s in "[IXYZ]{1,80}") {
            let p = ps(&s);
            let (phase, prod) = p.mul(&p);
            prop_assert_eq!(phase, Phase::ONE);
            prop_assert!(prod.is_identity());
        }

        #[test]
        fn prop_commutation_matches_phase_difference((pa, pb) in same_length_pair()) {
            let (ph_ab, prod_ab) = pa.mul(&pb);
            let (ph_ba, prod_ba) = pb.mul(&pa);
            prop_assert_eq!(prod_ab, prod_ba);
            // PQ = ±QP: commuting iff phases equal.
            prop_assert_eq!(pa.commutes_with(&pb), ph_ab == ph_ba);
        }

        #[test]
        fn prop_product_weight_bounded((pa, pb) in same_length_pair()) {
            let (_, prod) = pa.mul(&pb);
            prop_assert!(prod.weight() <= pa.weight() + pb.weight());
        }

        #[test]
        fn prop_associativity(
            a in "[IXYZ]{6}", b in "[IXYZ]{6}", c in "[IXYZ]{6}"
        ) {
            let (pa, pb, pc) = (ps(&a), ps(&b), ps(&c));
            let (p1, ab) = pa.mul(&pb);
            let (p2, ab_c) = ab.mul(&pc);
            let (q1, bc) = pb.mul(&pc);
            let (q2, a_bc) = pa.mul(&bc);
            prop_assert_eq!(p1 * p2, q1 * q2);
            prop_assert_eq!(ab_c, a_bc);
        }

        #[test]
        fn prop_parse_display_round_trip(s in "[IXYZ]{1,100}") {
            let p = ps(&s);
            prop_assert_eq!(p.to_string(), s);
        }
    }
}
