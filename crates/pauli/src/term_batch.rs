//! Bit-parallel batches of *signed* Pauli observables (64 terms per word).
//!
//! [`crate::FrameBatch`] made the sampled noise path bit-parallel by storing
//! 64 error frames transposed; error frames carry no phases, so its gate
//! action is sign-free. The **exact** noisy-loss path (Heisenberg
//! back-propagation of every Hamiltonian term) needs the same transposition
//! trick *with signs*: conjugating an observable through a Clifford gate can
//! flip its sign, and that sign multiplies the term's energy contribution.
//!
//! [`TermBatch`] therefore packs 64 Hamiltonian-term observables term-major —
//! for every qubit one `u64` x-word and one `u64` z-word whose bit `ℓ`
//! belongs to lane (term) `ℓ` — **plus one `u64` sign bit-plane** whose bit
//! `ℓ` records whether lane `ℓ` has accumulated a `-1` so far. Clifford
//! conjugation of all 64 observables is then a handful of word operations
//! per gate, with the Aaronson–Gottesman sign rules evaluated as word-level
//! boolean formulas on the same planes (see
//! `CliffordGate::conjugate_terms` in `clapton-stabilizer`).

use crate::{Pauli, PauliString};

/// A batch of [`TermBatch::LANES`] signed Pauli observables stored
/// term-major: for each qubit `q`, bit `ℓ` of `x(q)`/`z(q)` is the
/// symplectic `(x, z)` bit of lane `ℓ`'s observable on that qubit, and bit
/// `ℓ` of [`TermBatch::sign_mask`] is set iff lane `ℓ` currently carries an
/// overall factor `-1`.
///
/// # Example
///
/// ```
/// use clapton_pauli::{Pauli, PauliString, TermBatch};
///
/// let mut batch = TermBatch::new(3);
/// batch.set_lane(0, &"XIZ".parse().unwrap(), false);
/// batch.set_lane(5, &"IYI".parse().unwrap(), true);
/// assert_eq!(batch.lane(0), (false, "XIZ".parse().unwrap()));
/// assert_eq!(batch.lane(5), (true, "IYI".parse().unwrap()));
/// assert_eq!(batch.lane(1), (false, PauliString::identity(3)));
/// // Lanes 0 and 5 touch qubits {0, 2} and {1}: per-qubit support masks.
/// assert_eq!(batch.support_mask(0), 0b000001);
/// assert_eq!(batch.support_mask(1), 0b100000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermBatch {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    sign: u64,
}

impl TermBatch {
    /// Terms per batch: one per bit of the per-qubit storage words.
    pub const LANES: usize = 64;

    /// A batch of positive identity observables on `n` qubits.
    pub fn new(n: usize) -> TermBatch {
        TermBatch {
            n,
            x: vec![0; n],
            z: vec![0; n],
            sign: 0,
        }
    }

    /// The register size.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Resets every lane to the positive identity.
    pub fn clear(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
        self.sign = 0;
    }

    /// The x bit-plane of `qubit` (bit `ℓ` = lane `ℓ`).
    #[inline]
    pub fn x(&self, qubit: usize) -> u64 {
        self.x[qubit]
    }

    /// The z bit-plane of `qubit`.
    #[inline]
    pub fn z(&self, qubit: usize) -> u64 {
        self.z[qubit]
    }

    /// XORs `mask` into the x plane of `qubit`.
    #[inline]
    pub fn xor_x(&mut self, qubit: usize, mask: u64) {
        self.x[qubit] ^= mask;
    }

    /// XORs `mask` into the z plane of `qubit`.
    #[inline]
    pub fn xor_z(&mut self, qubit: usize, mask: u64) {
        self.z[qubit] ^= mask;
    }

    /// Swaps the x and z planes of `qubit` (the H / √Y / √Y† symplectic
    /// action).
    #[inline]
    pub fn swap_xz(&mut self, qubit: usize) {
        std::mem::swap(&mut self.x[qubit], &mut self.z[qubit]);
    }

    /// Swaps two qubits across all lanes (the SWAP gate).
    #[inline]
    pub fn swap_qubits(&mut self, a: usize, b: usize) {
        self.x.swap(a, b);
        self.z.swap(a, b);
    }

    /// The sign bit-plane: bit `ℓ` set iff lane `ℓ` carries a factor `-1`.
    #[inline]
    pub fn sign_mask(&self) -> u64 {
        self.sign
    }

    /// Flips the sign of every lane whose `mask` bit is set (how gate sign
    /// rules are applied word-parallel).
    #[inline]
    pub fn xor_sign(&mut self, mask: u64) {
        self.sign ^= mask;
    }

    /// Per-lane support of `qubit`: bit `ℓ` set iff lane `ℓ`'s observable
    /// acts non-trivially there. One OR — this is what makes depolarizing
    /// damping decisions word-parallel.
    #[inline]
    pub fn support_mask(&self, qubit: usize) -> u64 {
        self.x[qubit] | self.z[qubit]
    }

    /// Lanes whose observable has any x bit left anywhere on the register —
    /// i.e. is *not* Z-type, so its `⟨0…0| · |0…0⟩` expectation vanishes.
    pub fn any_x_mask(&self) -> u64 {
        self.x.iter().fold(0, |acc, &w| acc | w)
    }

    /// Loads `p` (with sign `-1` iff `negative`) into `lane`.
    ///
    /// The lane must currently be the positive identity (e.g. right after
    /// [`TermBatch::new`] or [`TermBatch::clear`]); cost is `O(weight)`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= TermBatch::LANES`, if `p` acts on a different
    /// number of qubits, or (debug builds) if the lane is not empty.
    pub fn set_lane(&mut self, lane: usize, p: &PauliString, negative: bool) {
        assert!(lane < TermBatch::LANES, "lane {lane} out of range");
        assert_eq!(self.n, p.num_qubits(), "qubit count mismatch");
        debug_assert_eq!(
            self.lane(lane),
            (false, PauliString::identity(self.n)),
            "lane {lane} must be cleared before set_lane"
        );
        let bit = 1u64 << lane;
        for q in p.support() {
            let (x, z) = p.get(q).xz();
            if x {
                self.x[q] |= bit;
            }
            if z {
                self.z[q] |= bit;
            }
        }
        if negative {
            self.sign |= bit;
        }
    }

    /// Extracts lane `lane` as `(negative, observable)` (diagnostics/tests).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= TermBatch::LANES`.
    pub fn lane(&self, lane: usize) -> (bool, PauliString) {
        assert!(lane < TermBatch::LANES, "lane {lane} out of range");
        let p = PauliString::from_sparse(
            self.n,
            (0..self.n).map(|q| {
                let xb = (self.x[q] >> lane) & 1 == 1;
                let zb = (self.z[q] >> lane) & 1 == 1;
                (q, Pauli::from_xz(xb, zb))
            }),
        );
        ((self.sign >> lane) & 1 == 1, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn new_batch_is_all_positive_identity() {
        let batch = TermBatch::new(4);
        for lane in 0..TermBatch::LANES {
            assert_eq!(batch.lane(lane), (false, PauliString::identity(4)));
        }
        assert_eq!(batch.sign_mask(), 0);
        assert_eq!(batch.any_x_mask(), 0);
    }

    #[test]
    fn set_lane_round_trips() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [1usize, 5, 70] {
            let mut batch = TermBatch::new(n);
            let terms: Vec<(bool, PauliString)> = (0..TermBatch::LANES)
                .map(|_| (rng.gen(), PauliString::random(n, &mut rng)))
                .collect();
            for (lane, (neg, p)) in terms.iter().enumerate() {
                batch.set_lane(lane, p, *neg);
            }
            for (lane, (neg, p)) in terms.iter().enumerate() {
                assert_eq!(batch.lane(lane), (*neg, p.clone()), "lane {lane} n {n}");
            }
            batch.clear();
            assert_eq!(batch.lane(17), (false, PauliString::identity(n)));
            assert_eq!(batch.sign_mask(), 0);
        }
    }

    #[test]
    fn support_and_x_masks_match_per_lane_queries() {
        let mut rng = StdRng::seed_from_u64(29);
        let n = 6;
        let mut batch = TermBatch::new(n);
        let terms: Vec<PauliString> = (0..TermBatch::LANES)
            .map(|_| PauliString::random(n, &mut rng))
            .collect();
        for (lane, p) in terms.iter().enumerate() {
            batch.set_lane(lane, p, false);
        }
        for q in 0..n {
            let mask = batch.support_mask(q);
            for (lane, p) in terms.iter().enumerate() {
                assert_eq!((mask >> lane) & 1 == 1, p.acts_on(q), "q {q} lane {lane}");
            }
        }
        let any_x = batch.any_x_mask();
        for (lane, p) in terms.iter().enumerate() {
            assert_eq!((any_x >> lane) & 1 == 1, !p.is_z_type(), "lane {lane}");
        }
    }

    #[test]
    fn plane_operations_match_frame_batch_semantics() {
        let mut batch = TermBatch::new(2);
        batch.xor_x(0, 0b1);
        batch.swap_qubits(0, 1);
        assert_eq!(batch.lane(0).1, "IX".parse().unwrap());
        batch.swap_xz(1);
        assert_eq!(batch.lane(0).1, "IZ".parse().unwrap());
        batch.xor_sign(0b1);
        assert_eq!(batch.lane(0), (true, "IZ".parse().unwrap()));
        batch.xor_sign(0b1);
        assert!(!batch.lane(0).0);
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn set_lane_rejects_wrong_register() {
        let mut batch = TermBatch::new(3);
        batch.set_lane(0, &"XX".parse().unwrap(), false);
    }
}
