//! Clifford tableaus: precomputed conjugation maps for whole circuits.

use crate::CliffordGate;
use clapton_pauli::{Pauli, PauliString, Phase};

/// One tableau row: a signed Hermitian Pauli string.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    negative: bool,
    pauli: PauliString,
}

/// The conjugation action of a Clifford circuit `C`, stored as the images of
/// all generators: `C X_j C†` and `C Z_j C†`.
///
/// Building the map costs `O(N·L)` for a circuit of `L` gates; conjugating an
/// arbitrary Pauli string afterwards costs `O(w·N/64)` for a string of weight
/// `w`, independent of circuit depth. This is how Clapton transforms the
/// `M`-term Hamiltonian for every candidate `γ` (Eq. 6) without re-walking the
/// circuit per term.
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliString;
/// use clapton_stabilizer::{CliffordGate, CliffordMap};
///
/// // C = CX(0→1) · H(0) prepares a Bell pair from |00⟩; it maps Z0 → X0X1.
/// let map = CliffordMap::conjugation(2, &[CliffordGate::H(0), CliffordGate::Cx(0, 1)]);
/// let (sign, image) = map.conjugate(&"ZI".parse().unwrap());
/// assert_eq!(sign, 1.0);
/// assert_eq!(image, "XX".parse().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliffordMap {
    n: usize,
    /// Images of `X_j` under conjugation.
    x_rows: Vec<Row>,
    /// Images of `Z_j` under conjugation.
    z_rows: Vec<Row>,
}

impl CliffordMap {
    /// The identity map on `n` qubits.
    pub fn identity(n: usize) -> CliffordMap {
        CliffordMap {
            n,
            x_rows: (0..n)
                .map(|q| Row {
                    negative: false,
                    pauli: PauliString::single(n, q, Pauli::X),
                })
                .collect(),
            z_rows: (0..n)
                .map(|q| Row {
                    negative: false,
                    pauli: PauliString::single(n, q, Pauli::Z),
                })
                .collect(),
        }
    }

    /// Builds the map `P → C P C†` for the circuit `C = g_L ⋯ g_1`
    /// (gates applied in iteration order).
    pub fn conjugation(n: usize, gates: &[CliffordGate]) -> CliffordMap {
        let mut map = CliffordMap::identity(n);
        for g in gates {
            map.append(*g);
        }
        map
    }

    /// Builds the *anticonjugation* map `P → C† P C` for the same circuit.
    ///
    /// This is the direction of the Clapton Hamiltonian transformation
    /// (§3.2): `Ĥ = Ĉ† H Ĉ`.
    pub fn anticonjugation(n: usize, gates: &[CliffordGate]) -> CliffordMap {
        let mut map = CliffordMap::identity(n);
        for g in gates.iter().rev() {
            map.append(g.inverse());
        }
        map
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Extends the map by one more gate applied *after* the current circuit:
    /// the map becomes `P → g (C P C†) g†`.
    pub fn append(&mut self, gate: CliffordGate) {
        for row in self.x_rows.iter_mut().chain(self.z_rows.iter_mut()) {
            if gate.conjugate(&mut row.pauli) {
                row.negative = !row.negative;
            }
        }
    }

    /// Applies the map to a Hermitian Pauli string: returns `(sign, image)`
    /// with `sign ∈ {+1, -1}` such that `map(P) = sign · image`.
    ///
    /// # Panics
    ///
    /// Panics if `p` acts on a different number of qubits.
    pub fn conjugate(&self, p: &PauliString) -> (f64, PauliString) {
        let mut out = PauliString::identity(self.n);
        let sign = self.conjugate_into(p, &mut out);
        (sign, out)
    }

    /// Allocation-free [`CliffordMap::conjugate`]: writes the image into
    /// `out` (any prior contents are overwritten) and returns the sign.
    /// This is the hot call of the per-genome Hamiltonian transform — one
    /// invocation per term per genome — so the image buffer is caller-owned
    /// and reused instead of freshly allocated every time.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `out` act on a different number of qubits than the
    /// map.
    pub fn conjugate_into(&self, p: &PauliString, out: &mut PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n, "qubit count mismatch");
        assert_eq!(out.num_qubits(), self.n, "output qubit count mismatch");
        out.clear();
        // Decompose P = i^{Σ x_j z_j} · Π_j X_j^{x_j} · Π_j Z_j^{z_j} and map
        // each generator to its image row; phases accumulate exactly.
        let mut phase = Phase::ONE;
        let mut y_count: u8 = 0;
        for q in p.support() {
            let (x, z) = p.get(q).xz();
            if x && z {
                y_count = (y_count + 1) & 3;
            }
            if x {
                let row = &self.x_rows[q];
                phase *= out.mul_assign_right(&row.pauli);
                if row.negative {
                    phase *= Phase::MINUS_ONE;
                }
            }
        }
        for q in p.support() {
            let (_, z) = p.get(q).xz();
            if z {
                let row = &self.z_rows[q];
                phase *= out.mul_assign_right(&row.pauli);
                if row.negative {
                    phase *= Phase::MINUS_ONE;
                }
            }
        }
        let total = phase * Phase::from_exponent(y_count);
        // The image of a Hermitian Pauli under Clifford conjugation is a
        // signed Hermitian Pauli; the Y factors of the image contribute the
        // compensating i's inside `mul_assign_right`, so `total` is real.
        total
            .as_sign()
            .expect("Clifford image of Hermitian Pauli must be Hermitian")
    }

    /// Composes two maps: `(self ∘ other)(P) = self(other(P))`.
    ///
    /// # Panics
    ///
    /// Panics if the maps act on different numbers of qubits.
    #[must_use]
    pub fn compose(&self, other: &CliffordMap) -> CliffordMap {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        let map_row = |row: &Row| {
            let (sign, pauli) = self.conjugate(&row.pauli);
            Row {
                negative: row.negative ^ (sign < 0.0),
                pauli,
            }
        };
        CliffordMap {
            n: self.n,
            x_rows: other.x_rows.iter().map(map_row).collect(),
            z_rows: other.z_rows.iter().map(map_row).collect(),
        }
    }

    /// The inverse map.
    ///
    /// Uses the symplectic structure: the inverse tableau's rows are found by
    /// expressing each `X_j`/`Z_j` in terms of the images. Cost `O(N³/64)`.
    #[must_use]
    pub fn inverse(&self) -> CliffordMap {
        // For Clifford maps the inverse row for generator G is the unique
        // signed Pauli Q with map(Q) = G. Solve by Gaussian elimination over
        // GF(2) on the symplectic representation.
        //
        // Build the 2N×2N binary matrix A whose columns are the (x|z) vectors
        // of the images of the 2N generators, then solve A·v = e_k for each
        // target generator; v selects which generators multiply to Q.
        let n = self.n;
        let rows: Vec<&Row> = self.x_rows.iter().chain(self.z_rows.iter()).collect();
        let dim = 2 * n;
        // mat[r] = bit-row r of A (over columns), stored as Vec<u64> words.
        let words = dim.div_ceil(64);
        let mut mat = vec![vec![0u64; words]; dim];
        for (col, row) in rows.iter().enumerate() {
            for q in 0..n {
                let (x, z) = row.pauli.get(q).xz();
                if x {
                    mat[q][col / 64] |= 1 << (col % 64);
                }
                if z {
                    mat[n + q][col / 64] |= 1 << (col % 64);
                }
            }
        }
        // Augment with identity to compute A^{-1}.
        let mut aug = vec![vec![0u64; words]; dim];
        for (r, row) in aug.iter_mut().enumerate() {
            row[r / 64] |= 1 << (r % 64);
        }
        // Gauss-Jordan over GF(2). The system is invertible and square, so
        // every column hosts a pivot and the pivot row equals the column.
        for col in 0..dim {
            let sel = (col..dim)
                .find(|&r| (mat[r][col / 64] >> (col % 64)) & 1 == 1)
                .expect("Clifford tableau must be invertible");
            mat.swap(col, sel);
            aug.swap(col, sel);
            for r in 0..dim {
                if r != col && (mat[r][col / 64] >> (col % 64)) & 1 == 1 {
                    for w in 0..words {
                        let (m, a) = (mat[col][w], aug[col][w]);
                        mat[r][w] ^= m;
                        aug[r][w] ^= a;
                    }
                }
            }
        }
        // Solving A·v = e_k gives v = A^{-1}·e_k, i.e. column k of A^{-1}:
        // v_j = aug[j] bit k. Generators j with v_j = 1 multiply to the
        // inverse image of generator k.
        let build_row = |k: usize| -> Row {
            let mut q = PauliString::identity(n);
            let mut phase = Phase::ONE;
            for (col, _row) in rows.iter().enumerate() {
                if (aug[col][k / 64] >> (k % 64)) & 1 == 1 {
                    let gen = if col < n {
                        PauliString::single(n, col, Pauli::X)
                    } else {
                        PauliString::single(n, col - n, Pauli::Z)
                    };
                    phase *= q.mul_assign_right(&gen);
                }
            }
            // Fix the sign so that map(Q) = +G exactly.
            let (sign, image) = self.conjugate(&q);
            debug_assert!(image.weight() == 1, "inverse row must map to a generator");
            let _ = phase; // phases of commuting products handled via sign fix
            Row {
                negative: sign < 0.0,
                pauli: q,
            }
        };
        CliffordMap {
            n,
            x_rows: (0..n).map(build_row).collect(),
            z_rows: (n..2 * n).map(build_row).collect(),
        }
    }

    /// Checks the symplectic validity of the map: images must satisfy the
    /// canonical commutation relations of the generators they replace.
    pub fn is_valid(&self) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                let xx = self.x_rows[i].pauli.commutes_with(&self.x_rows[j].pauli);
                let zz = self.z_rows[i].pauli.commutes_with(&self.z_rows[j].pauli);
                let xz = self.x_rows[i].pauli.commutes_with(&self.z_rows[j].pauli);
                if !xx || !zz || xz != (i != j) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{anticonjugate_through, conjugate_through};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Vec<CliffordGate> {
        (0..len)
            .map(|_| {
                let q = rng.gen_range(0..n);
                let mut r = rng.gen_range(0..n);
                while r == q {
                    r = rng.gen_range(0..n);
                }
                match rng.gen_range(0..8) {
                    0 => CliffordGate::H(q),
                    1 => CliffordGate::S(q),
                    2 => CliffordGate::Sdg(q),
                    3 => CliffordGate::SqrtX(q),
                    4 => CliffordGate::SqrtY(q),
                    5 => CliffordGate::Cx(q, r),
                    6 => CliffordGate::Cz(q, r),
                    _ => CliffordGate::Swap(q, r),
                }
            })
            .collect()
    }

    #[test]
    fn identity_map_is_identity() {
        let map = CliffordMap::identity(4);
        for s in ["XIZY", "IIII", "ZZZZ"] {
            let (sign, image) = map.conjugate(&ps(s));
            assert_eq!(sign, 1.0);
            assert_eq!(image, ps(s));
        }
        assert!(map.is_valid());
    }

    #[test]
    fn bell_preparation_maps_generators() {
        let gates = [CliffordGate::H(0), CliffordGate::Cx(0, 1)];
        let map = CliffordMap::conjugation(2, &gates);
        assert_eq!(map.conjugate(&ps("ZI")), (1.0, ps("XX")));
        assert_eq!(map.conjugate(&ps("IZ")), (1.0, ps("ZZ")));
        assert_eq!(map.conjugate(&ps("XI")), (1.0, ps("ZI")));
        assert!(map.is_valid());
    }

    #[test]
    fn map_matches_streamed_conjugation() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(2..7);
            let gates = random_circuit(n, 25, &mut rng);
            let map = CliffordMap::conjugation(n, &gates);
            assert!(map.is_valid());
            for _ in 0..10 {
                let p = PauliString::random(n, &mut rng);
                let mut streamed = p.clone();
                let sign = conjugate_through(&gates, &mut streamed);
                assert_eq!(map.conjugate(&p), (sign, streamed));
            }
        }
    }

    #[test]
    fn anticonjugation_inverts_conjugation() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let n = rng.gen_range(2..7);
            let gates = random_circuit(n, 20, &mut rng);
            for _ in 0..5 {
                let p = PauliString::random(n, &mut rng);
                let mut q = p.clone();
                let s1 = conjugate_through(&gates, &mut q);
                let s2 = anticonjugate_through(&gates, &mut q);
                assert_eq!(s1 * s2, 1.0);
                assert_eq!(q, p);
            }
        }
    }

    #[test]
    fn anticonjugation_map_matches_streamed() {
        let mut rng = StdRng::seed_from_u64(37);
        let n = 5;
        let gates = random_circuit(n, 30, &mut rng);
        let map = CliffordMap::anticonjugation(n, &gates);
        for _ in 0..20 {
            let p = PauliString::random(n, &mut rng);
            let mut streamed = p.clone();
            let sign = anticonjugate_through(&gates, &mut streamed);
            assert_eq!(map.conjugate(&p), (sign, streamed));
        }
    }

    #[test]
    fn compose_matches_concatenation() {
        let mut rng = StdRng::seed_from_u64(41);
        let n = 4;
        let g1 = random_circuit(n, 15, &mut rng);
        let g2 = random_circuit(n, 15, &mut rng);
        let m1 = CliffordMap::conjugation(n, &g1);
        let m2 = CliffordMap::conjugation(n, &g2);
        let composed = m2.compose(&m1);
        let concat: Vec<CliffordGate> = g1.iter().chain(g2.iter()).copied().collect();
        let direct = CliffordMap::conjugation(n, &concat);
        for _ in 0..20 {
            let p = PauliString::random(n, &mut rng);
            assert_eq!(composed.conjugate(&p), direct.conjugate(&p));
        }
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..10 {
            let n = rng.gen_range(2..6);
            let gates = random_circuit(n, 20, &mut rng);
            let map = CliffordMap::conjugation(n, &gates);
            let inv = map.inverse();
            assert!(inv.is_valid());
            for _ in 0..10 {
                let p = PauliString::random(n, &mut rng);
                let (s1, q) = map.conjugate(&p);
                let (s2, back) = inv.conjugate(&q);
                assert_eq!(back, p);
                assert_eq!(s1 * s2, 1.0);
            }
        }
    }

    #[test]
    fn conjugate_into_reuses_buffer_and_matches_conjugate() {
        // The allocation-free path must overwrite whatever the scratch
        // buffer held and agree with the allocating path exactly.
        let mut rng = StdRng::seed_from_u64(61);
        let n = 5;
        let gates = random_circuit(n, 25, &mut rng);
        let map = CliffordMap::anticonjugation(n, &gates);
        let mut scratch = PauliString::random(n, &mut rng); // stale contents
        for _ in 0..20 {
            let p = PauliString::random(n, &mut rng);
            let sign = map.conjugate_into(&p, &mut scratch);
            assert_eq!(map.conjugate(&p), (sign, scratch.clone()));
        }
    }

    #[test]
    fn conjugation_preserves_weight_one_y() {
        // S X S† = Y exactly (phase-correct Y handling in the composer).
        let map = CliffordMap::conjugation(1, &[CliffordGate::S(0)]);
        assert_eq!(map.conjugate(&ps("X")), (1.0, ps("Y")));
        assert_eq!(map.conjugate(&ps("Y")), (-1.0, ps("X")));
    }
}
