//! Stabilizer-formalism engine: the stim substitute of the Clapton stack.
//!
//! The paper relies on stim for two things (§4.1):
//!
//! 1. computing the (anti)conjugation of Pauli strings under Clifford
//!    operations — the mechanism behind the Hamiltonian transformation
//!    `Ĥ = Ĉ† H Ĉ` (Eq. 5–6), and
//! 2. simulating Clifford circuits with stochastic Pauli noise to evaluate the
//!    noisy loss `LN`.
//!
//! This crate provides both foundations from scratch:
//!
//! * [`CliffordGate`] — the single- and two-qubit Clifford gates used by the
//!   VQE and transformation ansätze, with exact Heisenberg conjugation rules
//!   (`P → g P g†`, sign included),
//! * [`CliffordMap`] — a tableau holding the images of all `X_j`/`Z_j`
//!   generators under a circuit, supporting `O(N·w)` conjugation of arbitrary
//!   Pauli strings, composition and inversion,
//! * [`StabilizerState`] — an Aaronson–Gottesman tableau simulator with
//!   deterministic/random `Z`-measurements and exact Pauli expectation values.

mod gate;
mod map;
mod state;

pub use gate::CliffordGate;
pub use map::CliffordMap;
pub use state::StabilizerState;

use clapton_pauli::PauliString;

/// Conjugates `p` through a gate sequence **forward**: returns the sign `s`
/// such that `C p C† = s · result` for `C = g_k ⋯ g_1` applied in iteration
/// order (`g_1` first).
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliString;
/// use clapton_stabilizer::{conjugate_through, CliffordGate};
///
/// // CX propagates X on the control to X⊗X (Eq. 3 of the paper).
/// let mut p: PauliString = "XI".parse().unwrap();
/// let sign = conjugate_through(&[CliffordGate::Cx(0, 1)], &mut p);
/// assert_eq!(sign, 1.0);
/// assert_eq!(p, "XX".parse().unwrap());
/// ```
pub fn conjugate_through(gates: &[CliffordGate], p: &mut PauliString) -> f64 {
    let mut sign = 1.0;
    for g in gates {
        if g.conjugate(p) {
            sign = -sign;
        }
    }
    sign
}

/// Anticonjugates `p` through a gate sequence: returns the sign `s` such that
/// `C† p C = s · result` for `C = g_k ⋯ g_1` applied in iteration order.
///
/// This is the transformation direction Clapton uses for Hamiltonians
/// (§3.2): the gates are traversed in reverse with each gate inverted.
pub fn anticonjugate_through(gates: &[CliffordGate], p: &mut PauliString) -> f64 {
    let mut sign = 1.0;
    for g in gates.iter().rev() {
        if g.inverse().conjugate(p) {
            sign = -sign;
        }
    }
    sign
}
