//! Clifford gates and their exact Heisenberg conjugation rules.

use clapton_pauli::{FrameBatch, Pauli, PauliString, TermBatch};
use std::fmt;

/// A single- or two-qubit Clifford gate.
///
/// `SqrtY`/`SqrtYdg` are `Ry(π/2)`/`Ry(3π/2)` and `S`/`Sdg` are
/// `Rz(π/2)`/`Rz(3π/2)` up to global phase, so together with the Pauli gates
/// they cover every Clifford angle of the paper's parameterized rotations
/// (§4: `θ ∈ {0, π/2, π, 3π/2}`).
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliString;
/// use clapton_stabilizer::CliffordGate;
///
/// // H maps X → Z without a sign flip.
/// let mut p: PauliString = "X".parse().unwrap();
/// let flipped = CliffordGate::H(0).conjugate(&mut p);
/// assert!(!flipped);
/// assert_eq!(p, "Z".parse().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CliffordGate {
    /// Hadamard.
    H(usize),
    /// Phase gate `S = Rz(π/2)` (up to global phase).
    S(usize),
    /// Inverse phase gate `S† = Rz(3π/2)`.
    Sdg(usize),
    /// Pauli X (`Rx(π)` / `Ry(π)·Rz(π)` up to phase).
    X(usize),
    /// Pauli Y (`Ry(π)` up to phase).
    Y(usize),
    /// Pauli Z (`Rz(π)` up to phase).
    Z(usize),
    /// `√X = Rx(π/2)` (up to global phase).
    SqrtX(usize),
    /// `√X† = Rx(3π/2)`.
    SqrtXdg(usize),
    /// `√Y = Ry(π/2)` (up to global phase).
    SqrtY(usize),
    /// `√Y† = Ry(3π/2)`.
    SqrtYdg(usize),
    /// Controlled-NOT with control `.0` and target `.1`.
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP of two qubits.
    Swap(usize, usize),
}

impl CliffordGate {
    /// The qubits the gate acts on (one or two entries).
    pub fn qubits(&self) -> Vec<usize> {
        use CliffordGate::*;
        match *self {
            H(q) | S(q) | Sdg(q) | X(q) | Y(q) | Z(q) | SqrtX(q) | SqrtXdg(q) | SqrtY(q)
            | SqrtYdg(q) => vec![q],
            Cx(a, b) | Cz(a, b) | Swap(a, b) => vec![a, b],
        }
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            CliffordGate::Cx(..) | CliffordGate::Cz(..) | CliffordGate::Swap(..)
        )
    }

    /// The inverse gate.
    #[must_use]
    pub fn inverse(&self) -> CliffordGate {
        use CliffordGate::*;
        match *self {
            S(q) => Sdg(q),
            Sdg(q) => S(q),
            SqrtX(q) => SqrtXdg(q),
            SqrtXdg(q) => SqrtX(q),
            SqrtY(q) => SqrtYdg(q),
            SqrtYdg(q) => SqrtY(q),
            g => g,
        }
    }

    /// The Clifford gate implementing `Ry(k·π/2)` for `k ∈ 0..4`
    /// (up to global phase). Returns `None` for `k = 0` (identity).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    pub fn ry_quarter(qubit: usize, k: u8) -> Option<CliffordGate> {
        match k {
            0 => None,
            1 => Some(CliffordGate::SqrtY(qubit)),
            2 => Some(CliffordGate::Y(qubit)),
            3 => Some(CliffordGate::SqrtYdg(qubit)),
            _ => panic!("quarter-turn index {k} out of range"),
        }
    }

    /// The Clifford gate implementing `Rz(k·π/2)` for `k ∈ 0..4`
    /// (up to global phase). Returns `None` for `k = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    pub fn rz_quarter(qubit: usize, k: u8) -> Option<CliffordGate> {
        match k {
            0 => None,
            1 => Some(CliffordGate::S(qubit)),
            2 => Some(CliffordGate::Z(qubit)),
            3 => Some(CliffordGate::Sdg(qubit)),
            _ => panic!("quarter-turn index {k} out of range"),
        }
    }

    /// Conjugates `p ← g p g†` in place; returns `true` if the sign flipped.
    ///
    /// # Panics
    ///
    /// Panics if a gate qubit is out of range for `p`.
    pub fn conjugate(&self, p: &mut PauliString) -> bool {
        use CliffordGate::*;
        match *self {
            H(q) => {
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(z, x));
                x && z // Y → -Y
            }
            S(q) => {
                // X → Y, Y → -X, Z → Z.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(x, z ^ x));
                x && z
            }
            Sdg(q) => {
                // X → -Y, Y → X.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(x, z ^ x));
                x && !z
            }
            X(q) => {
                let (_, z) = p.get(q).xz();
                z
            }
            Y(q) => {
                let (x, z) = p.get(q).xz();
                x ^ z
            }
            Z(q) => {
                let (x, _) = p.get(q).xz();
                x
            }
            SqrtX(q) => {
                // X → X, Z → -Y, Y → Z.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(x ^ z, z));
                !x && z
            }
            SqrtXdg(q) => {
                // X → X, Z → Y, Y → -Z.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(x ^ z, z));
                x && z
            }
            SqrtY(q) => {
                // X → -Z, Z → X, Y → Y.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(z, x));
                x && !z
            }
            SqrtYdg(q) => {
                // X → Z, Z → -X, Y → Y.
                let (x, z) = p.get(q).xz();
                p.set(q, Pauli::from_xz(z, x));
                !x && z
            }
            Cx(c, t) => {
                // X_c → X_c X_t, Z_t → Z_c Z_t (Eq. 3); Aaronson-Gottesman
                // sign rule: flip iff x_c z_t (x_t ⊕ z_c ⊕ 1).
                let (xc, zc) = p.get(c).xz();
                let (xt, zt) = p.get(t).xz();
                let flip = xc && zt && (xt == zc);
                p.set(t, Pauli::from_xz(xt ^ xc, zt));
                p.set(c, Pauli::from_xz(xc, zc ^ zt));
                flip
            }
            Cz(c, t) => {
                // CZ = (I⊗H) CX (I⊗H): compose the verified rules.
                let mut flip = CliffordGate::H(t).conjugate(p);
                flip ^= CliffordGate::Cx(c, t).conjugate(p);
                flip ^= CliffordGate::H(t).conjugate(p);
                flip
            }
            Swap(a, b) => {
                let pa = p.get(a);
                p.set(a, p.get(b));
                p.set(b, pa);
                false
            }
        }
    }

    /// Conjugates all 64 frames of a [`FrameBatch`] at once: the gate's
    /// symplectic action applied to the transposed bit planes, one or two
    /// word operations per gate regardless of shot count.
    ///
    /// Frames carry no phases, so this is the sign-free projection of
    /// [`CliffordGate::conjugate`]: lane `s` of the batch ends up exactly
    /// where per-shot conjugation would put shot `s`'s frame (up to the
    /// discarded sign).
    ///
    /// # Panics
    ///
    /// Panics if a gate qubit is out of range for the batch.
    pub fn conjugate_frames(&self, frames: &mut FrameBatch) {
        use CliffordGate::*;
        match *self {
            // H, √Y and √Y† all exchange the x and z planes.
            H(q) | SqrtY(q) | SqrtYdg(q) => frames.swap_xz(q),
            // S/S†: (x, z) → (x, z ⊕ x).
            S(q) | Sdg(q) => {
                let x = frames.x(q);
                frames.xor_z(q, x);
            }
            // √X/√X†: (x, z) → (x ⊕ z, z).
            SqrtX(q) | SqrtXdg(q) => {
                let z = frames.z(q);
                frames.xor_x(q, z);
            }
            // Pauli gates only touch signs, which frames do not carry.
            X(_) | Y(_) | Z(_) => {}
            // CX: x_t ⊕= x_c, z_c ⊕= z_t (Eq. 3).
            Cx(c, t) => {
                let xc = frames.x(c);
                frames.xor_x(t, xc);
                let zt = frames.z(t);
                frames.xor_z(c, zt);
            }
            // CZ: z_t ⊕= x_c, z_c ⊕= x_t.
            Cz(a, b) => {
                let xa = frames.x(a);
                frames.xor_z(b, xa);
                let xb = frames.x(b);
                frames.xor_z(a, xb);
            }
            Swap(a, b) => frames.swap_qubits(a, b),
        }
    }

    /// Conjugates all 64 signed observables of a [`TermBatch`] at once:
    /// `P_ℓ → g P_ℓ g†` for every lane `ℓ`, with the Aaronson–Gottesman
    /// sign rules evaluated as word-level boolean formulas on the
    /// transposed bit planes and XORed into the batch's sign plane.
    ///
    /// This is the sign-carrying generalization of
    /// [`CliffordGate::conjugate_frames`]: lane `ℓ` ends up exactly where
    /// scalar [`CliffordGate::conjugate`] would put that lane's observable,
    /// *including* the sign flip (differentially tested lane-by-lane for
    /// every gate variant).
    ///
    /// # Panics
    ///
    /// Panics if a gate qubit is out of range for the batch.
    pub fn conjugate_terms(&self, terms: &mut TermBatch) {
        use CliffordGate::*;
        match *self {
            // H: X ↔ Z, Y → -Y — flip iff x ∧ z.
            H(q) => {
                terms.xor_sign(terms.x(q) & terms.z(q));
                terms.swap_xz(q);
            }
            // S: X → Y, Y → -X — flip iff x ∧ z; (x, z) → (x, z ⊕ x).
            S(q) => {
                terms.xor_sign(terms.x(q) & terms.z(q));
                let x = terms.x(q);
                terms.xor_z(q, x);
            }
            // S†: X → -Y, Y → X — flip iff x ∧ ¬z.
            Sdg(q) => {
                terms.xor_sign(terms.x(q) & !terms.z(q));
                let x = terms.x(q);
                terms.xor_z(q, x);
            }
            // Pauli gates: flip anticommuting lanes, planes untouched.
            X(q) => terms.xor_sign(terms.z(q)),
            Y(q) => terms.xor_sign(terms.x(q) ^ terms.z(q)),
            Z(q) => terms.xor_sign(terms.x(q)),
            // √X: Z → -Y, Y → Z — flip iff ¬x ∧ z; (x, z) → (x ⊕ z, z).
            SqrtX(q) => {
                terms.xor_sign(!terms.x(q) & terms.z(q));
                let z = terms.z(q);
                terms.xor_x(q, z);
            }
            // √X†: Z → Y, Y → -Z — flip iff x ∧ z.
            SqrtXdg(q) => {
                terms.xor_sign(terms.x(q) & terms.z(q));
                let z = terms.z(q);
                terms.xor_x(q, z);
            }
            // √Y: X → -Z, Z → X — flip iff x ∧ ¬z; planes swap.
            SqrtY(q) => {
                terms.xor_sign(terms.x(q) & !terms.z(q));
                terms.swap_xz(q);
            }
            // √Y†: X → Z, Z → -X — flip iff ¬x ∧ z.
            SqrtYdg(q) => {
                terms.xor_sign(!terms.x(q) & terms.z(q));
                terms.swap_xz(q);
            }
            // CX: x_t ⊕= x_c, z_c ⊕= z_t (Eq. 3); sign rule: flip iff
            // x_c ∧ z_t ∧ ¬(x_t ⊕ z_c).
            Cx(c, t) => {
                let (xc, zc) = (terms.x(c), terms.z(c));
                let (xt, zt) = (terms.x(t), terms.z(t));
                terms.xor_sign(xc & zt & !(xt ^ zc));
                terms.xor_x(t, xc);
                terms.xor_z(c, zt);
            }
            // CZ: z_a ⊕= x_b, z_b ⊕= x_a; sign rule (the H·CX·H
            // composition's three flips collapse to): flip iff
            // x_a ∧ x_b ∧ (z_a ⊕ z_b) — e.g. X⊗Y → -(Y⊗X).
            Cz(a, b) => {
                let (xa, za) = (terms.x(a), terms.z(a));
                let (xb, zb) = (terms.x(b), terms.z(b));
                terms.xor_sign(xa & xb & (za ^ zb));
                terms.xor_z(a, xb);
                terms.xor_z(b, xa);
            }
            Swap(a, b) => terms.swap_qubits(a, b),
        }
    }
}

impl fmt::Display for CliffordGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CliffordGate::*;
        match *self {
            H(q) => write!(f, "H q{q}"),
            S(q) => write!(f, "S q{q}"),
            Sdg(q) => write!(f, "S† q{q}"),
            X(q) => write!(f, "X q{q}"),
            Y(q) => write!(f, "Y q{q}"),
            Z(q) => write!(f, "Z q{q}"),
            SqrtX(q) => write!(f, "√X q{q}"),
            SqrtXdg(q) => write!(f, "√X† q{q}"),
            SqrtY(q) => write!(f, "√Y q{q}"),
            SqrtYdg(q) => write!(f, "√Y† q{q}"),
            Cx(c, t) => write!(f, "CX q{c}→q{t}"),
            Cz(a, b) => write!(f, "CZ q{a},q{b}"),
            Swap(a, b) => write!(f, "SWAP q{a}↔q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    /// Applies `g` to `p`, returning `(sign, image)`.
    fn conj(g: CliffordGate, p: &str) -> (f64, PauliString) {
        let mut q = ps(p);
        let flip = g.conjugate(&mut q);
        (if flip { -1.0 } else { 1.0 }, q)
    }

    #[test]
    fn hadamard_swaps_x_and_z() {
        assert_eq!(conj(CliffordGate::H(0), "X"), (1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::H(0), "Z"), (1.0, ps("X")));
        assert_eq!(conj(CliffordGate::H(0), "Y"), (-1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::H(0), "I"), (1.0, ps("I")));
    }

    #[test]
    fn phase_gate_rotates_about_z() {
        assert_eq!(conj(CliffordGate::S(0), "X"), (1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::S(0), "Y"), (-1.0, ps("X")));
        assert_eq!(conj(CliffordGate::S(0), "Z"), (1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::Sdg(0), "X"), (-1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::Sdg(0), "Y"), (1.0, ps("X")));
    }

    #[test]
    fn sqrt_y_rotates_x_to_minus_z() {
        assert_eq!(conj(CliffordGate::SqrtY(0), "X"), (-1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::SqrtY(0), "Z"), (1.0, ps("X")));
        assert_eq!(conj(CliffordGate::SqrtY(0), "Y"), (1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::SqrtYdg(0), "X"), (1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::SqrtYdg(0), "Z"), (-1.0, ps("X")));
    }

    #[test]
    fn sqrt_x_rotates_z_to_minus_y() {
        assert_eq!(conj(CliffordGate::SqrtX(0), "Z"), (-1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::SqrtX(0), "Y"), (1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::SqrtX(0), "X"), (1.0, ps("X")));
        assert_eq!(conj(CliffordGate::SqrtXdg(0), "Z"), (1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::SqrtXdg(0), "Y"), (-1.0, ps("Z")));
    }

    #[test]
    fn pauli_gates_flip_anticommuting_operators() {
        assert_eq!(conj(CliffordGate::X(0), "Z"), (-1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::X(0), "Y"), (-1.0, ps("Y")));
        assert_eq!(conj(CliffordGate::X(0), "X"), (1.0, ps("X")));
        assert_eq!(conj(CliffordGate::Z(0), "X"), (-1.0, ps("X")));
        assert_eq!(conj(CliffordGate::Y(0), "X"), (-1.0, ps("X")));
        assert_eq!(conj(CliffordGate::Y(0), "Z"), (-1.0, ps("Z")));
        assert_eq!(conj(CliffordGate::Y(0), "Y"), (1.0, ps("Y")));
    }

    #[test]
    fn cx_propagation_matches_paper_eq_3() {
        // X_c → X_c X_t, X_t → X_t, Z_c → Z_c, Z_t → Z_c Z_t.
        assert_eq!(conj(CliffordGate::Cx(0, 1), "XI"), (1.0, ps("XX")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "IX"), (1.0, ps("IX")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "ZI"), (1.0, ps("ZI")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "IZ"), (1.0, ps("ZZ")));
        // Composite cases with signs.
        assert_eq!(conj(CliffordGate::Cx(0, 1), "YY"), (-1.0, ps("XZ")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "YI"), (1.0, ps("YX")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "IY"), (1.0, ps("ZY")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "XX"), (1.0, ps("XI")));
        assert_eq!(conj(CliffordGate::Cx(0, 1), "ZZ"), (1.0, ps("IZ")));
    }

    #[test]
    fn cx_direction_matters() {
        assert_eq!(conj(CliffordGate::Cx(1, 0), "IX"), (1.0, ps("XX")));
        assert_eq!(conj(CliffordGate::Cx(1, 0), "XI"), (1.0, ps("XI")));
    }

    #[test]
    fn cz_propagation() {
        assert_eq!(conj(CliffordGate::Cz(0, 1), "XI"), (1.0, ps("XZ")));
        assert_eq!(conj(CliffordGate::Cz(0, 1), "IX"), (1.0, ps("ZX")));
        assert_eq!(conj(CliffordGate::Cz(0, 1), "ZI"), (1.0, ps("ZI")));
        assert_eq!(conj(CliffordGate::Cz(0, 1), "IZ"), (1.0, ps("IZ")));
    }

    #[test]
    fn swap_exchanges_qubits() {
        assert_eq!(conj(CliffordGate::Swap(0, 1), "XZ"), (1.0, ps("ZX")));
        assert_eq!(conj(CliffordGate::Swap(0, 1), "YI"), (1.0, ps("IY")));
    }

    #[test]
    fn every_gate_inverse_undoes_conjugation() {
        let gates1 = [
            CliffordGate::H(0),
            CliffordGate::S(0),
            CliffordGate::Sdg(0),
            CliffordGate::X(0),
            CliffordGate::Y(0),
            CliffordGate::Z(0),
            CliffordGate::SqrtX(0),
            CliffordGate::SqrtXdg(0),
            CliffordGate::SqrtY(0),
            CliffordGate::SqrtYdg(0),
        ];
        for g in gates1 {
            for p in ["X", "Y", "Z"] {
                let mut q = ps(p);
                let mut flip = g.conjugate(&mut q);
                flip ^= g.inverse().conjugate(&mut q);
                assert!(!flip, "{g}: sign not restored for {p}");
                assert_eq!(q, ps(p), "{g}: operator not restored for {p}");
            }
        }
        let gates2 = [
            CliffordGate::Cx(0, 1),
            CliffordGate::Cx(1, 0),
            CliffordGate::Cz(0, 1),
            CliffordGate::Swap(0, 1),
        ];
        for g in gates2 {
            for a in ["I", "X", "Y", "Z"] {
                for b in ["I", "X", "Y", "Z"] {
                    let s = format!("{a}{b}");
                    let mut q = ps(&s);
                    let mut flip = g.conjugate(&mut q);
                    flip ^= g.inverse().conjugate(&mut q);
                    assert!(!flip, "{g}: sign not restored for {s}");
                    assert_eq!(q, ps(&s), "{g}: operator not restored for {s}");
                }
            }
        }
    }

    #[test]
    fn conjugation_preserves_commutation() {
        // Clifford conjugation is an automorphism of the Pauli group, so it
        // must preserve all commutation relations.
        let gates = [
            CliffordGate::H(0),
            CliffordGate::S(1),
            CliffordGate::SqrtX(0),
            CliffordGate::SqrtY(1),
            CliffordGate::Cx(0, 1),
            CliffordGate::Cz(0, 1),
            CliffordGate::Swap(0, 1),
        ];
        let strings = ["XI", "IX", "ZI", "IZ", "YY", "XZ", "ZX", "YX"];
        for g in gates {
            for a in strings {
                for b in strings {
                    let (pa, pb) = (ps(a), ps(b));
                    let before = pa.commutes_with(&pb);
                    let (mut qa, mut qb) = (pa.clone(), pb.clone());
                    g.conjugate(&mut qa);
                    g.conjugate(&mut qb);
                    assert_eq!(before, qa.commutes_with(&qb), "{g} on {a},{b}");
                }
            }
        }
    }

    #[test]
    fn quarter_turn_constructors() {
        assert_eq!(CliffordGate::ry_quarter(3, 0), None);
        assert_eq!(CliffordGate::ry_quarter(3, 1), Some(CliffordGate::SqrtY(3)));
        assert_eq!(CliffordGate::ry_quarter(3, 2), Some(CliffordGate::Y(3)));
        assert_eq!(
            CliffordGate::ry_quarter(3, 3),
            Some(CliffordGate::SqrtYdg(3))
        );
        assert_eq!(CliffordGate::rz_quarter(1, 1), Some(CliffordGate::S(1)));
        assert_eq!(CliffordGate::rz_quarter(1, 3), Some(CliffordGate::Sdg(1)));
    }

    #[test]
    fn batched_conjugation_matches_per_shot_conjugation() {
        // Every lane of conjugate_frames must land exactly where the scalar
        // conjugation sends that lane's frame (signs aside — frames carry
        // none).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let gates = [
            CliffordGate::H(0),
            CliffordGate::S(0),
            CliffordGate::Sdg(1),
            CliffordGate::X(0),
            CliffordGate::Y(1),
            CliffordGate::Z(0),
            CliffordGate::SqrtX(1),
            CliffordGate::SqrtXdg(0),
            CliffordGate::SqrtY(1),
            CliffordGate::SqrtYdg(0),
            CliffordGate::Cx(0, 1),
            CliffordGate::Cx(1, 0),
            CliffordGate::Cz(0, 1),
            CliffordGate::Swap(0, 1),
        ];
        let mut rng = StdRng::seed_from_u64(44);
        for g in gates {
            let mut batch = FrameBatch::new(3);
            for q in 0..3 {
                batch.xor_x(q, rng.gen());
                batch.xor_z(q, rng.gen());
            }
            let before: Vec<PauliString> = (0..FrameBatch::LANES).map(|l| batch.frame(l)).collect();
            g.conjugate_frames(&mut batch);
            for (lane, frame) in before.into_iter().enumerate() {
                let mut scalar = frame;
                g.conjugate(&mut scalar);
                assert_eq!(batch.frame(lane), scalar, "{g} lane {lane}");
            }
        }
    }

    #[test]
    fn signed_batched_conjugation_matches_scalar_per_lane() {
        // Every lane of conjugate_terms must land exactly where scalar
        // conjugation sends that lane's observable — image AND sign — for
        // every gate variant, including lanes that start negative.
        use clapton_pauli::TermBatch;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let gates = [
            CliffordGate::H(0),
            CliffordGate::S(0),
            CliffordGate::Sdg(1),
            CliffordGate::X(0),
            CliffordGate::Y(1),
            CliffordGate::Z(0),
            CliffordGate::SqrtX(1),
            CliffordGate::SqrtXdg(0),
            CliffordGate::SqrtY(1),
            CliffordGate::SqrtYdg(0),
            CliffordGate::Cx(0, 1),
            CliffordGate::Cx(1, 0),
            CliffordGate::Cz(0, 1),
            CliffordGate::Cz(1, 0),
            CliffordGate::Swap(0, 1),
        ];
        let mut rng = StdRng::seed_from_u64(47);
        for g in gates {
            let mut batch = TermBatch::new(3);
            for q in 0..3 {
                batch.xor_x(q, rng.gen());
                batch.xor_z(q, rng.gen());
            }
            batch.xor_sign(rng.gen());
            let before: Vec<(bool, PauliString)> =
                (0..TermBatch::LANES).map(|l| batch.lane(l)).collect();
            g.conjugate_terms(&mut batch);
            for (lane, (neg, obs)) in before.into_iter().enumerate() {
                let mut scalar = obs;
                let flipped = g.conjugate(&mut scalar);
                assert_eq!(batch.lane(lane), (neg ^ flipped, scalar), "{g} lane {lane}");
            }
        }
    }

    #[test]
    fn qubits_and_arity() {
        assert_eq!(CliffordGate::Cx(2, 5).qubits(), vec![2, 5]);
        assert_eq!(CliffordGate::H(3).qubits(), vec![3]);
        assert!(CliffordGate::Swap(0, 1).is_two_qubit());
        assert!(!CliffordGate::SqrtY(0).is_two_qubit());
    }
}
