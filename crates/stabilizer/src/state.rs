//! Aaronson–Gottesman stabilizer state simulation.

use crate::CliffordGate;
use clapton_pauli::{Pauli, PauliString, Phase};
use rand::Rng;

/// A stabilizer state tracked by the Aaronson–Gottesman tableau
/// (destabilizers + stabilizers, each a signed Pauli string).
///
/// Supports the full Clifford gate set of [`CliffordGate`], single-qubit
/// `Z`-basis measurement with correct deterministic/random branches, and
/// exact Pauli-string expectation values (`-1`, `0` or `+1` — the quantity
/// CAFQA evaluates for every Hamiltonian term, §2.5).
///
/// # Example
///
/// ```
/// use clapton_stabilizer::{CliffordGate, StabilizerState};
///
/// let mut st = StabilizerState::new(2);
/// st.apply(CliffordGate::H(0));
/// st.apply(CliffordGate::Cx(0, 1));
/// // Bell state: ⟨XX⟩ = ⟨ZZ⟩ = +1, ⟨YY⟩ = -1, ⟨ZI⟩ = 0.
/// assert_eq!(st.expectation(&"XX".parse().unwrap()), 1.0);
/// assert_eq!(st.expectation(&"YY".parse().unwrap()), -1.0);
/// assert_eq!(st.expectation(&"ZI".parse().unwrap()), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct StabilizerState {
    n: usize,
    /// Rows 0..n are destabilizers, rows n..2n are stabilizers.
    rows: Vec<PauliString>,
    signs: Vec<bool>,
}

impl StabilizerState {
    /// Creates the all-zeros state `|0…0⟩` on `n` qubits
    /// (stabilized by `Z_1, …, Z_N`).
    pub fn new(n: usize) -> StabilizerState {
        let mut rows = Vec::with_capacity(2 * n);
        for q in 0..n {
            rows.push(PauliString::single(n, q, Pauli::X));
        }
        for q in 0..n {
            rows.push(PauliString::single(n, q, Pauli::Z));
        }
        StabilizerState {
            n,
            rows,
            signs: vec![false; 2 * n],
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one Clifford gate.
    pub fn apply(&mut self, gate: CliffordGate) {
        for (row, sign) in self.rows.iter_mut().zip(self.signs.iter_mut()) {
            if gate.conjugate(row) {
                *sign = !*sign;
            }
        }
    }

    /// Applies a sequence of Clifford gates in order.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a CliffordGate>>(&mut self, gates: I) {
        for g in gates {
            self.apply(*g);
        }
    }

    /// Applies a Pauli string as a unitary (e.g. a sampled Pauli error).
    ///
    /// Only the stabilizer/destabilizer signs can change.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        for (row, sign) in self.rows.iter_mut().zip(self.signs.iter_mut()) {
            if !row.commutes_with(p) {
                *sign = !*sign;
            }
        }
    }

    /// The exact expectation value of a Hermitian Pauli string: `+1`, `-1`
    /// (string is ± a stabilizer-group element) or `0` (it anticommutes with
    /// some stabilizer).
    ///
    /// # Panics
    ///
    /// Panics if `p` acts on a different number of qubits.
    pub fn expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n, "qubit count mismatch");
        if p.is_identity() {
            return 1.0;
        }
        // If P anticommutes with any stabilizer, ⟨P⟩ = 0.
        for i in self.n..2 * self.n {
            if !self.rows[i].commutes_with(p) {
                return 0.0;
            }
        }
        // Otherwise P = ± Π_{i∈S} s_i where i ∈ S iff P anticommutes with
        // destabilizer d_i. Accumulate the product with exact phases.
        let mut acc = PauliString::identity(self.n);
        let mut phase = Phase::ONE;
        for i in 0..self.n {
            if !self.rows[i].commutes_with(p) {
                phase *= acc.mul_assign_right(&self.rows[self.n + i]);
                if self.signs[self.n + i] {
                    phase *= Phase::MINUS_ONE;
                }
            }
        }
        debug_assert_eq!(&acc, p, "stabilizer decomposition must reproduce P");
        phase
            .as_sign()
            .expect("stabilizer-group element has real sign")
    }

    /// Measures qubit `q` in the `Z` basis. Returns the classical outcome
    /// (`false` = 0, `true` = 1). Random outcomes consume entropy from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= num_qubits()`.
    pub fn measure_z<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        assert!(q < self.n, "qubit {q} out of range");
        // Find a stabilizer anticommuting with Z_q (i.e. with an X component
        // on q).
        let anticommuting = (self.n..2 * self.n).find(|&i| {
            let (x, _) = self.rows[i].get(q).xz();
            x
        });
        match anticommuting {
            Some(p) => {
                // Random outcome.
                let outcome: bool = rng.gen();
                let row_p = self.rows[p].clone();
                let sign_p = self.signs[p];
                for i in 0..2 * self.n {
                    if i != p {
                        let (x, _) = self.rows[i].get(q).xz();
                        if x {
                            self.rowsum_with(i, &row_p, sign_p);
                        }
                    }
                }
                // Destabilizer p-n becomes the old stabilizer; stabilizer p
                // becomes ±Z_q.
                self.rows[p - self.n] = row_p;
                self.signs[p - self.n] = sign_p;
                self.rows[p] = PauliString::single(self.n, q, Pauli::Z);
                self.signs[p] = outcome;
                outcome
            }
            None => {
                // Deterministic outcome: Z_q ∈ ±stabilizer group.
                self.expectation(&PauliString::single(self.n, q, Pauli::Z)) < 0.0
            }
        }
    }

    /// Measures all qubits in order, returning the outcome bits
    /// (index = qubit).
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<bool> {
        (0..self.n).map(|q| self.measure_z(q, rng)).collect()
    }

    /// `rows[i] ← rows[i] · other` with exact sign tracking (the
    /// Aaronson–Gottesman "rowsum").
    ///
    /// Stabilizer rows (`i >= n`) always combine with commuting partners, so
    /// their phases stay real. A destabilizer can anticommute with the pivot
    /// stabilizer, producing an imaginary phase — destabilizer signs never
    /// influence outcomes or expectations, so the sign is dropped there.
    fn rowsum_with(&mut self, i: usize, other: &PauliString, other_sign: bool) {
        let mut ph = self.rows[i].mul_assign_right(other);
        if other_sign {
            ph *= Phase::MINUS_ONE;
        }
        if self.signs[i] {
            ph *= Phase::MINUS_ONE;
        }
        self.signs[i] = match ph.as_sign() {
            Some(s) => s < 0.0,
            None if i < self.n => false,
            None => unreachable!("stabilizer rowsum on anticommuting rows"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn fresh_state_is_all_zeros() {
        let st = StabilizerState::new(3);
        assert_eq!(st.expectation(&ps("ZII")), 1.0);
        assert_eq!(st.expectation(&ps("IZI")), 1.0);
        assert_eq!(st.expectation(&ps("ZZZ")), 1.0);
        assert_eq!(st.expectation(&ps("XII")), 0.0);
        assert_eq!(st.expectation(&ps("YII")), 0.0);
        assert_eq!(st.expectation(&ps("III")), 1.0);
    }

    #[test]
    fn x_gate_flips_z_expectation() {
        let mut st = StabilizerState::new(2);
        st.apply(CliffordGate::X(0));
        assert_eq!(st.expectation(&ps("ZI")), -1.0);
        assert_eq!(st.expectation(&ps("IZ")), 1.0);
        assert_eq!(st.expectation(&ps("ZZ")), -1.0);
    }

    #[test]
    fn hadamard_gives_plus_state() {
        let mut st = StabilizerState::new(1);
        st.apply(CliffordGate::H(0));
        assert_eq!(st.expectation(&ps("X")), 1.0);
        assert_eq!(st.expectation(&ps("Z")), 0.0);
        assert_eq!(st.expectation(&ps("Y")), 0.0);
    }

    #[test]
    fn bell_state_correlations() {
        let mut st = StabilizerState::new(2);
        st.apply_all(&[CliffordGate::H(0), CliffordGate::Cx(0, 1)]);
        assert_eq!(st.expectation(&ps("XX")), 1.0);
        assert_eq!(st.expectation(&ps("ZZ")), 1.0);
        assert_eq!(st.expectation(&ps("YY")), -1.0);
        assert_eq!(st.expectation(&ps("XY")), 0.0);
        assert_eq!(st.expectation(&ps("ZI")), 0.0);
    }

    #[test]
    fn ghz_state_parity() {
        let mut st = StabilizerState::new(3);
        st.apply_all(&[
            CliffordGate::H(0),
            CliffordGate::Cx(0, 1),
            CliffordGate::Cx(1, 2),
        ]);
        assert_eq!(st.expectation(&ps("XXX")), 1.0);
        assert_eq!(st.expectation(&ps("ZZI")), 1.0);
        assert_eq!(st.expectation(&ps("IZZ")), 1.0);
        assert_eq!(st.expectation(&ps("ZII")), 0.0);
        // Y Y X = -(XXX)(ZZI)... check a signed member: Y⊗Y⊗X = (iXZ)(iXZ)X
        // = -XXX·ZZI → expectation -1.
        assert_eq!(st.expectation(&ps("YYX")), -1.0);
    }

    #[test]
    fn pauli_error_flips_signs() {
        let mut st = StabilizerState::new(2);
        st.apply_all(&[CliffordGate::H(0), CliffordGate::Cx(0, 1)]);
        st.apply_pauli(&ps("XI")); // X error on qubit 0 of a Bell pair
        assert_eq!(st.expectation(&ps("XX")), 1.0); // commutes
        assert_eq!(st.expectation(&ps("ZZ")), -1.0); // anticommutes
    }

    #[test]
    fn deterministic_measurement() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut st = StabilizerState::new(2);
        st.apply(CliffordGate::X(1));
        assert!(!st.measure_z(0, &mut rng));
        assert!(st.measure_z(1, &mut rng));
    }

    #[test]
    fn random_measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ones = 0;
        for _ in 0..200 {
            let mut st = StabilizerState::new(1);
            st.apply(CliffordGate::H(0));
            let m1 = st.measure_z(0, &mut rng);
            // Repeated measurement must agree (state collapsed).
            let m2 = st.measure_z(0, &mut rng);
            assert_eq!(m1, m2);
            ones += m1 as usize;
        }
        // Unbiased coin: expect roughly half ones.
        assert!((50..150).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn bell_measurements_are_correlated() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let mut st = StabilizerState::new(2);
            st.apply_all(&[CliffordGate::H(0), CliffordGate::Cx(0, 1)]);
            let m = st.measure_all(&mut rng);
            assert_eq!(m[0], m[1], "Bell pair outcomes must correlate");
        }
    }

    #[test]
    fn expectation_after_measurement_is_definite() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut st = StabilizerState::new(1);
        st.apply(CliffordGate::H(0));
        let m = st.measure_z(0, &mut rng);
        let expect = if m { -1.0 } else { 1.0 };
        assert_eq!(st.expectation(&ps("Z")), expect);
        assert_eq!(st.expectation(&ps("X")), 0.0);
    }

    #[test]
    fn ghz_measurement_statistics() {
        // GHZ measurements are perfectly correlated and unbiased.
        let mut rng = StdRng::seed_from_u64(31);
        let mut all_ones = 0usize;
        let shots = 400;
        for _ in 0..shots {
            let mut st = StabilizerState::new(3);
            st.apply_all(&[
                CliffordGate::H(0),
                CliffordGate::Cx(0, 1),
                CliffordGate::Cx(1, 2),
            ]);
            let m = st.measure_all(&mut rng);
            assert!(m.iter().all(|&b| b == m[0]), "GHZ outcomes correlate");
            all_ones += m[0] as usize;
        }
        assert!((120..280).contains(&all_ones), "all_ones = {all_ones}");
    }

    #[test]
    fn measurement_updates_remaining_correlations() {
        // Measuring one Bell qubit collapses the partner deterministically.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..50 {
            let mut st = StabilizerState::new(2);
            st.apply_all(&[CliffordGate::H(0), CliffordGate::Cx(0, 1)]);
            let first = st.measure_z(0, &mut rng);
            let expect = if first { -1.0 } else { 1.0 };
            assert_eq!(st.expectation(&PauliString::single(2, 1, Pauli::Z)), expect);
        }
    }

    #[test]
    fn expectation_is_invariant_under_measuring_commuting_observables() {
        // Measuring Z0 leaves ⟨Z1⟩ of a product state untouched.
        let mut rng = StdRng::seed_from_u64(53);
        let mut st = StabilizerState::new(2);
        st.apply(CliffordGate::X(1));
        let before = st.expectation(&ps("IZ"));
        let _ = st.measure_z(0, &mut rng);
        assert_eq!(st.expectation(&ps("IZ")), before);
    }

    #[test]
    fn clifford_angles_match_expectations() {
        // √Y |0⟩ = |+⟩ up to phase: Ry(π/2) rotates Z to X.
        let mut st = StabilizerState::new(1);
        st.apply(CliffordGate::SqrtY(0));
        assert_eq!(st.expectation(&ps("X")), 1.0);
        // √X |0⟩: Z → -Y eigenstate.
        let mut st = StabilizerState::new(1);
        st.apply(CliffordGate::SqrtX(0));
        assert_eq!(st.expectation(&ps("Y")), -1.0);
        assert_eq!(st.expectation(&ps("Z")), 0.0);
    }
}
