//! The benchmark suite of the paper's evaluation (Figure 5).

use crate::{ising, molecular, xxz, Molecule};
use clapton_error::SpecError;
use clapton_pauli::PauliSum;

/// One named VQE benchmark problem.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Display name, e.g. `"ising(J=0.25)"` or `"H2O(l=1.0)"`.
    pub name: String,
    /// The problem Hamiltonian.
    pub hamiltonian: PauliSum,
}

impl Benchmark {
    fn new(name: impl Into<String>, hamiltonian: PauliSum) -> Benchmark {
        Benchmark {
            name: name.into(),
            hamiltonian,
        }
    }
}

/// The physics benchmarks on `n` qubits: Ising and XXZ chains for
/// `J ∈ {0.25, 0.50, 1.00}` (§5.1.1). The paper uses `N = 7` on `nairobi`
/// and `N = 10` elsewhere.
pub fn physics_suite(n: usize) -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(6);
    for j in [0.25, 0.5, 1.0] {
        out.push(Benchmark::new(format!("ising(J={j:.2})"), ising(n, j)));
    }
    for j in [0.25, 0.5, 1.0] {
        out.push(Benchmark::new(format!("xxz(J={j:.2})"), xxz(n, j)));
    }
    out
}

/// The chemistry benchmarks (always 10 qubits): H2O, H6, LiH at the paper's
/// two bond lengths each (§5.1.2).
pub fn chemistry_suite() -> Vec<Benchmark> {
    let mut out = Vec::with_capacity(6);
    for mol in [Molecule::H2O, Molecule::H6, Molecule::LiH] {
        for l in mol.bond_lengths() {
            out.push(Benchmark::new(
                format!("{}(l={l:.1})", mol.name()),
                molecular(mol, l),
            ));
        }
    }
    out
}

/// The full 12-benchmark suite on `n` physics qubits; chemistry benchmarks
/// are included only when `n == 10` (they are fixed at ten qubits).
pub fn benchmark_suite(n: usize) -> Vec<Benchmark> {
    let mut out = physics_suite(n);
    if n == 10 {
        out.extend(chemistry_suite());
    }
    out
}

/// Every problem name [`benchmark_by_name`] resolves at register size `n` —
/// the registry table job specs address the suite through.
pub fn benchmark_names(n: usize) -> Vec<String> {
    benchmark_suite(n).into_iter().map(|b| b.name).collect()
}

/// Resolves a suite problem by its display name (e.g. `"ising(J=0.25)"` or
/// `"LiH(l=4.5)"`) at register size `n`.
///
/// # Errors
///
/// [`SpecError::UnknownProblem`] listing every name available at `n` — so a
/// typo in a job spec reports the full registry instead of a bare miss.
pub fn benchmark_by_name(name: &str, n: usize) -> Result<Benchmark, SpecError> {
    benchmark_suite(n)
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| SpecError::UnknownProblem {
            name: name.to_string(),
            available: benchmark_names(n),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physics_suite_has_six_instances() {
        let suite = physics_suite(7);
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().all(|b| b.hamiltonian.num_qubits() == 7));
        let names: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"ising(J=0.25)"));
        assert!(names.contains(&"xxz(J=1.00)"));
    }

    #[test]
    fn chemistry_suite_is_ten_qubits() {
        let suite = chemistry_suite();
        assert_eq!(suite.len(), 6);
        assert!(suite.iter().all(|b| b.hamiltonian.num_qubits() == 10));
        assert!(suite.iter().any(|b| b.name == "LiH(l=4.5)"));
    }

    #[test]
    fn full_suite_composition() {
        assert_eq!(benchmark_suite(10).len(), 12);
        assert_eq!(benchmark_suite(7).len(), 6);
    }

    #[test]
    fn registry_resolves_every_listed_name() {
        for n in [7, 10] {
            for name in benchmark_names(n) {
                let b = benchmark_by_name(&name, n).unwrap();
                assert_eq!(b.name, name);
                let physics = name.starts_with("ising(") || name.starts_with("xxz(");
                assert_eq!(b.hamiltonian.num_qubits(), if physics { n } else { 10 });
            }
        }
        let err = benchmark_by_name("isig(J=0.25)", 10).unwrap_err();
        match err {
            SpecError::UnknownProblem { name, available } => {
                assert_eq!(name, "isig(J=0.25)");
                assert_eq!(available.len(), 12);
            }
            other => panic!("wrong error {other:?}"),
        }
        // Chemistry names only resolve at n == 10.
        assert!(benchmark_by_name("H2O(l=1.0)", 7).is_err());
    }

    #[test]
    fn names_are_unique() {
        let suite = benchmark_suite(10);
        let mut names: Vec<&String> = suite.iter().map(|b| &b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
