//! Benchmark Hamiltonians of the Clapton evaluation (§5.1).
//!
//! * [`ising`] — the 1D transverse-field Ising chain
//!   `H = J Σ X_i X_{i+1} + Σ Z_i` (Eq. 12),
//! * [`xxz`] — the field-free XXZ Heisenberg chain
//!   `H = Σ (J X_i X_{i+1} + J Y_i Y_{i+1} + Z_i Z_{i+1})` (Eq. 13),
//! * [`molecular`] — seeded synthetic surrogates for the paper's PySCF
//!   Hamiltonians (H2O, H6, LiH at two bond lengths each) with the exact
//!   term counts of §5.1.2; see DESIGN.md for the substitution rationale,
//! * [`benchmark_suite`] / [`Benchmark`] — the full 12-instance suite of
//!   Figure 5.

mod molecular;
mod spin;
mod suite;

pub use molecular::{molecular, Molecule};
pub use spin::{ising, xxz};
pub use suite::{
    benchmark_by_name, benchmark_names, benchmark_suite, chemistry_suite, physics_suite, Benchmark,
};
