//! Synthetic molecular Hamiltonian surrogates.
//!
//! The paper builds H2O/H6/LiH Hamiltonians with Qiskit Nature + PySCF
//! (STO-3G, parity mapping, two-qubit reduction, 10 qubits, §5.1.2). Without
//! an electronic-structure stack we generate seeded surrogates that preserve
//! the properties Clapton interacts with (see DESIGN.md):
//!
//! * exact term counts (H2O: 367, H6: 919, LiH: 631) on 10 qubits,
//! * a large identity offset (core + nuclear-repulsion energy),
//! * dominant low-weight `Z`/`ZZ` terms (diagonal Coulomb/exchange part),
//! * exponentially decaying coefficients with Pauli weight,
//! * a bond-length knob: stretched geometries move weight into off-diagonal
//!   (`X`/`Y`) excitation terms — exactly the regime where stabilizer states
//!   approximate the true ground state less well (§5.1.2 cites [38] for the
//!   accuracy drop at long bonds).

use clapton_pauli::{Pauli, PauliString, PauliSum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The molecules of the paper's chemistry benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Molecule {
    /// Water, 367 Hamiltonian terms.
    H2O,
    /// A hydrogen chain H6, 919 terms.
    H6,
    /// Lithium hydride, 631 terms.
    LiH,
}

impl Molecule {
    /// The paper's term count for this molecule (§5.1.2).
    pub fn term_count(self) -> usize {
        match self {
            Molecule::H2O => 367,
            Molecule::H6 => 919,
            Molecule::LiH => 631,
        }
    }

    /// The two bond lengths (Å) evaluated in the paper.
    pub fn bond_lengths(self) -> [f64; 2] {
        match self {
            Molecule::H2O => [1.0, 3.0],
            Molecule::H6 => [1.0, 3.0],
            Molecule::LiH => [1.5, 4.5],
        }
    }

    /// A representative identity offset (core energy scale, hartree-like).
    fn identity_offset(self) -> f64 {
        match self {
            Molecule::H2O => -72.0,
            Molecule::H6 => -2.4,
            Molecule::LiH => -6.8,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Molecule::H2O => "H2O",
            Molecule::H6 => "H6",
            Molecule::LiH => "LiH",
        }
    }

    fn seed(self, bond_length: f64) -> u64 {
        let id = match self {
            Molecule::H2O => 1u64,
            Molecule::H6 => 2,
            Molecule::LiH => 3,
        };
        id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bond_length.to_bits()
    }
}

/// Number of qubits of every chemistry benchmark (§5.1.2 restricts the
/// active space so all molecules map to ten qubits).
pub const MOLECULAR_QUBITS: usize = 10;

/// Builds the synthetic molecular surrogate Hamiltonian for a molecule at a
/// bond length. Deterministic in `(molecule, bond_length)`.
///
/// # Panics
///
/// Panics if `bond_length` is not positive.
///
/// # Example
///
/// ```
/// use clapton_models::{molecular, Molecule};
///
/// let h = molecular(Molecule::H2O, 1.0);
/// assert_eq!(h.num_qubits(), 10);
/// assert_eq!(h.num_terms(), 367);
/// ```
pub fn molecular(molecule: Molecule, bond_length: f64) -> PauliSum {
    assert!(bond_length > 0.0, "bond length must be positive");
    let n = MOLECULAR_QUBITS;
    let target = molecule.term_count();
    let mut rng = StdRng::seed_from_u64(molecule.seed(bond_length));
    // Stretch parameter in [0, 1]: how far into the correlated regime.
    let stretch = ((bond_length - 0.8) / 3.5).clamp(0.05, 0.95);
    let diag_scale = 1.0 - 0.45 * stretch;
    let offdiag_scale = 0.15 + 0.85 * stretch;

    let mut h = PauliSum::new(n);
    let mut used: BTreeSet<PauliString> = BTreeSet::new();
    // 1. Identity offset.
    let id = PauliString::identity(n);
    h.push(molecule.identity_offset(), id.clone());
    used.insert(id);
    // 2. Single-Z terms (orbital energies).
    for q in 0..n {
        let p = PauliString::single(n, q, Pauli::Z);
        let c = diag_scale * rng.gen_range(0.2..1.2) * if rng.gen_bool(0.7) { 1.0 } else { -1.0 };
        h.push(c, p.clone());
        used.insert(p);
    }
    // 3. ZZ terms on all pairs (Coulomb/exchange).
    for a in 0..n {
        for b in a + 1..n {
            let p = PauliString::from_sparse(n, [(a, Pauli::Z), (b, Pauli::Z)]);
            let c = diag_scale * rng.gen_range(0.02..0.35);
            h.push(c, p.clone());
            used.insert(p);
        }
    }
    // 4. Off-diagonal excitation terms with weight-decaying coefficients.
    while used.len() < target {
        let weight = [2usize, 2, 3, 4, 4, 5, 6][rng.gen_range(0..7)];
        let mut qubits: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates to pick `weight` distinct qubits.
        for i in 0..weight {
            let j = rng.gen_range(i..n);
            qubits.swap(i, j);
        }
        let mut p = PauliString::identity(n);
        let mut has_offdiag = false;
        for &q in &qubits[..weight] {
            let pauli = match rng.gen_range(0..3) {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z,
            };
            if pauli != Pauli::Z {
                has_offdiag = true;
            }
            p.set(q, pauli);
        }
        if !has_offdiag || used.contains(&p) {
            continue;
        }
        let magnitude = offdiag_scale * 0.6 * (-0.55 * weight as f64).exp();
        let c = magnitude * rng.gen_range(0.2..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        h.push(c, p.clone());
        used.insert(p);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_counts_match_paper() {
        for (mol, count) in [
            (Molecule::H2O, 367),
            (Molecule::H6, 919),
            (Molecule::LiH, 631),
        ] {
            for l in mol.bond_lengths() {
                let h = molecular(mol, l);
                assert_eq!(h.num_terms(), count, "{} at {l}", mol.name());
                assert_eq!(h.num_qubits(), 10);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = molecular(Molecule::LiH, 1.5);
        let b = molecular(Molecule::LiH, 1.5);
        assert_eq!(a, b);
        let c = molecular(Molecule::LiH, 4.5);
        assert_ne!(a, c);
    }

    #[test]
    fn has_identity_offset_and_no_duplicates() {
        let h = molecular(Molecule::H2O, 1.0);
        assert!(h.identity_coefficient() < -10.0);
        let mut simplified = h.clone();
        simplified.simplify();
        assert_eq!(simplified.num_terms(), h.num_terms(), "terms are distinct");
    }

    #[test]
    fn stretching_increases_offdiagonal_weight() {
        // The fraction of 1-norm carried by non-Z-type terms must grow with
        // bond length — the structural driver of CAFQA's accuracy drop.
        for mol in [Molecule::H2O, Molecule::H6, Molecule::LiH] {
            let [short, long] = mol.bond_lengths();
            let frac = |h: &PauliSum| {
                let off: f64 = h
                    .iter()
                    .filter(|(_, p)| !p.is_z_type())
                    .map(|(c, _)| c.abs())
                    .sum();
                let total: f64 = h
                    .iter()
                    .filter(|(_, p)| !p.is_identity())
                    .map(|(c, _)| c.abs())
                    .sum();
                off / total
            };
            let f_short = frac(&molecular(mol, short));
            let f_long = frac(&molecular(mol, long));
            assert!(
                f_long > f_short,
                "{}: off-diag fraction {f_short} -> {f_long}",
                mol.name()
            );
        }
    }

    #[test]
    fn every_offdiagonal_term_is_mixed() {
        let h = molecular(Molecule::H6, 3.0);
        // Weight > 2 terms beyond the structured ZZ block all contain X/Y.
        let mixed = h.iter().filter(|(_, p)| !p.is_z_type()).count();
        // 919 total = 1 identity + 10 Z + 45 ZZ + 863 mixed.
        assert_eq!(mixed, 919 - 56);
    }

    #[test]
    #[should_panic(expected = "bond length must be positive")]
    fn rejects_nonpositive_bond() {
        molecular(Molecule::H2O, 0.0);
    }
}
