//! 1D spin-chain Hamiltonians (§5.1.1).

use clapton_pauli::{Pauli, PauliString, PauliSum};

/// The 1D transverse-field Ising model with open boundary (Eq. 12):
/// `H = J Σ_{i=1}^{N-1} X_i X_{i+1} + Σ_{i=1}^{N} Z_i`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use clapton_models::ising;
///
/// let h = ising(4, 0.5);
/// assert_eq!(h.num_terms(), 3 + 4); // couplings + fields
/// // |0…0⟩ has energy N (all fields aligned).
/// assert_eq!(h.expectation_all_zeros(), 4.0);
/// ```
pub fn ising(n: usize, j: f64) -> PauliSum {
    assert!(n > 0, "need at least one qubit");
    let mut h = PauliSum::new(n);
    for i in 0..n.saturating_sub(1) {
        h.push(
            j,
            PauliString::from_sparse(n, [(i, Pauli::X), (i + 1, Pauli::X)]),
        );
    }
    for i in 0..n {
        h.push(1.0, PauliString::single(n, i, Pauli::Z));
    }
    h
}

/// The 1D field-free XXZ Heisenberg model with open boundary (Eq. 13):
/// `H = Σ_{i=1}^{N-1} (J X_i X_{i+1} + J Y_i Y_{i+1} + Z_i Z_{i+1})`.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// use clapton_models::xxz;
///
/// let h = xxz(4, 1.0);
/// assert_eq!(h.num_terms(), 3 * 3);
/// ```
pub fn xxz(n: usize, j: f64) -> PauliSum {
    assert!(n >= 2, "XXZ chain needs at least two qubits");
    let mut h = PauliSum::new(n);
    for i in 0..n - 1 {
        for (coeff, p) in [(j, Pauli::X), (j, Pauli::Y), (1.0, Pauli::Z)] {
            h.push(coeff, PauliString::from_sparse(n, [(i, p), (i + 1, p)]));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ising_structure() {
        let h = ising(5, 0.25);
        assert_eq!(h.num_terms(), 4 + 5);
        assert_eq!(h.max_weight(), 2);
        // Couplings carry J, fields carry 1.
        let xx: PauliString = "XXIII".parse().unwrap();
        assert_eq!(h.coefficient_of(&xx), Some(0.25));
        let z: PauliString = "IIZII".parse().unwrap();
        assert_eq!(h.coefficient_of(&z), Some(1.0));
    }

    #[test]
    fn ising_single_qubit_degenerates_to_field() {
        let h = ising(1, 1.0);
        assert_eq!(h.num_terms(), 1);
        assert_eq!(h.expectation_all_zeros(), 1.0);
    }

    #[test]
    fn xxz_structure() {
        let h = xxz(4, 0.5);
        assert_eq!(h.num_terms(), 9);
        let yy: PauliString = "IYYI".parse().unwrap();
        assert_eq!(h.coefficient_of(&yy), Some(0.5));
        let zz: PauliString = "IIZZ".parse().unwrap();
        assert_eq!(h.coefficient_of(&zz), Some(1.0));
    }

    #[test]
    fn xxz_all_zeros_energy_is_coupling_count() {
        // On |0…0⟩ only ZZ terms survive: energy = N-1.
        let h = xxz(6, 0.77);
        assert_eq!(h.expectation_all_zeros(), 5.0);
    }

    #[test]
    fn identity_free() {
        assert_eq!(ising(4, 1.0).identity_coefficient(), 0.0);
        assert_eq!(xxz(4, 1.0).identity_coefficient(), 0.0);
    }
}
