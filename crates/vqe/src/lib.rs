//! VQE execution: classical optimizers driving the noisy quantum objective.
//!
//! The paper runs full VQE from each initialization with the SPSA optimizer
//! (§5.2, [45]) on Qiskit's noisy simulators. Here:
//!
//! * [`Spsa`] — simultaneous perturbation stochastic approximation with the
//!   standard Spall gain schedules,
//! * [`NelderMead`] — a gradient-free simplex alternative (§2.3 mentions it
//!   as the other common choice),
//! * [`run_vqe`] / [`VqeTrace`] — the end-to-end loop: the objective is the
//!   device-model energy of `A'(θ)` (density-matrix simulation with the full
//!   noise model) w.r.t. the (possibly Clapton-transformed) Hamiltonian,
//!   recording the convergence traces of Figure 6.

mod measurement;
mod nelder_mead;
mod runner;
mod spsa;
mod zne;

pub use measurement::{group_qubitwise_commuting, qubitwise_commute, SampledEnergy};
pub use nelder_mead::{NelderMead, NelderMeadConfig};
pub use runner::{run_vqe, run_vqe_with_backend, VqeConfig, VqeTrace};
pub use spsa::{Spsa, SpsaConfig, SpsaResult};
pub use zne::{richardson_extrapolate, zero_noise_extrapolate, ZneConfig, ZneEstimate};
