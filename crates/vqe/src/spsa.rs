//! Simultaneous Perturbation Stochastic Approximation (Spall [45]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SPSA hyper-parameters with the standard Spall gain schedules
/// `a_k = a / (k + 1 + A)^α`, `c_k = c / (k + 1)^γ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpsaConfig {
    /// Numerator of the step-size schedule.
    pub a: f64,
    /// Numerator of the perturbation schedule.
    pub c: f64,
    /// Step-size decay exponent (Spall recommends 0.602).
    pub alpha: f64,
    /// Perturbation decay exponent (Spall recommends 0.101).
    pub gamma: f64,
    /// Stability constant `A` (typically ~10% of the iteration budget).
    pub stability: f64,
    /// Number of iterations (2 objective evaluations each).
    pub iterations: usize,
    /// RNG seed for the perturbation directions.
    pub seed: u64,
}

impl SpsaConfig {
    /// A reasonable default for VQE energy landscapes over angles.
    pub fn for_iterations(iterations: usize) -> SpsaConfig {
        SpsaConfig {
            a: 0.25,
            c: 0.15,
            alpha: 0.602,
            gamma: 0.101,
            stability: 0.1 * iterations as f64,
            iterations,
            seed: 0,
        }
    }
}

/// The outcome of an SPSA minimization.
#[derive(Debug, Clone)]
pub struct SpsaResult {
    /// The final iterate.
    pub theta: Vec<f64>,
    /// The best iterate seen (by recorded estimate).
    pub best_theta: Vec<f64>,
    /// Loss estimate `(f₊ + f₋)/2` per iteration.
    pub history: Vec<f64>,
    /// Total objective evaluations consumed.
    pub evaluations: usize,
}

/// The SPSA optimizer.
///
/// # Example
///
/// ```
/// use clapton_vqe::{Spsa, SpsaConfig};
///
/// // Minimize a quadratic bowl.
/// let f = |x: &[f64]| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>();
/// let config = SpsaConfig { seed: 3, ..SpsaConfig::for_iterations(400) };
/// let result = Spsa::new(config).minimize(&f, vec![3.0, -2.0]);
/// assert!(f(&result.best_theta) < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Spsa {
    config: SpsaConfig,
}

impl Spsa {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SpsaConfig) -> Spsa {
        Spsa { config }
    }

    /// Minimizes `f` starting from `theta0`.
    ///
    /// # Panics
    ///
    /// Panics if `theta0` is empty.
    pub fn minimize<F>(&self, f: &F, theta0: Vec<f64>) -> SpsaResult
    where
        F: Fn(&[f64]) -> f64 + ?Sized,
    {
        assert!(!theta0.is_empty(), "need at least one parameter");
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = theta0.len();
        let mut theta = theta0;
        let mut history = Vec::with_capacity(cfg.iterations);
        let mut best_theta = theta.clone();
        let mut best_estimate = f64::INFINITY;
        let mut evaluations = 0;
        let mut plus = vec![0.0; d];
        let mut minus = vec![0.0; d];
        for k in 0..cfg.iterations {
            let ak = cfg.a / (k as f64 + 1.0 + cfg.stability).powf(cfg.alpha);
            let ck = cfg.c / (k as f64 + 1.0).powf(cfg.gamma);
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..d)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            for i in 0..d {
                plus[i] = theta[i] + ck * delta[i];
                minus[i] = theta[i] - ck * delta[i];
            }
            let f_plus = f(&plus);
            let f_minus = f(&minus);
            evaluations += 2;
            let estimate = 0.5 * (f_plus + f_minus);
            history.push(estimate);
            if estimate < best_estimate {
                best_estimate = estimate;
                best_theta.clone_from(&theta);
            }
            let g_scale = (f_plus - f_minus) / (2.0 * ck);
            for i in 0..d {
                theta[i] -= ak * g_scale * delta[i];
            }
        }
        SpsaResult {
            theta,
            best_theta,
            history,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bowl(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn minimizes_quadratic() {
        let config = SpsaConfig {
            seed: 1,
            ..SpsaConfig::for_iterations(500)
        };
        let result = Spsa::new(config).minimize(&bowl, vec![2.0, -3.0, 1.0]);
        assert!(bowl(&result.best_theta) < 0.05, "{:?}", result.best_theta);
        assert_eq!(result.evaluations, 1000);
        assert_eq!(result.history.len(), 500);
    }

    #[test]
    fn minimizes_trig_landscape() {
        // A 1D VQE-like objective: f(θ) = cos θ has minimum -1 at π.
        let f = |x: &[f64]| x[0].cos();
        let config = SpsaConfig {
            seed: 2,
            ..SpsaConfig::for_iterations(400)
        };
        let result = Spsa::new(config).minimize(&f, vec![0.5]);
        assert!(f(&result.best_theta) < -0.98, "{:?}", result.best_theta);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = SpsaConfig {
            seed: 7,
            ..SpsaConfig::for_iterations(50)
        };
        let a = Spsa::new(config).minimize(&bowl, vec![1.0, 1.0]);
        let b = Spsa::new(config).minimize(&bowl, vec![1.0, 1.0]);
        assert_eq!(a.theta, b.theta);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn history_trends_downward() {
        let config = SpsaConfig {
            seed: 5,
            ..SpsaConfig::for_iterations(300)
        };
        let result = Spsa::new(config).minimize(&bowl, vec![4.0, 4.0]);
        let early: f64 = result.history[..50].iter().sum::<f64>() / 50.0;
        let late: f64 = result.history[250..].iter().sum::<f64>() / 50.0;
        assert!(late < early * 0.2, "early {early} late {late}");
    }
}
