//! Shot-based energy estimation with qubit-wise-commuting measurement
//! grouping — the measurement layer a real VQE execution uses (§2.3: the
//! energy "can be obtained by measurement on quantum hardware").
//!
//! The analytic evaluators elsewhere in the stack compute exact expectation
//! values; this module adds the finite-shot pipeline: Hamiltonian terms are
//! partitioned into groups that share a single-qubit measurement basis
//! (qubit-wise commutation), each group is sampled from the device-model
//! output distribution with readout flips, and every term is estimated from
//! the sampled bitstrings.

use clapton_circuits::Gate;
use clapton_core::ExecutableAnsatz;
use clapton_pauli::{Pauli, PauliString, PauliSum};
use clapton_sim::{DensityMatrix, DeviceEvaluator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether two Pauli strings commute *qubit-wise*: on every qubit their
/// factors are equal or at least one is the identity. Qubit-wise commuting
/// terms can be measured simultaneously in one basis.
pub fn qubitwise_commute(a: &PauliString, b: &PauliString) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "register mismatch");
    (0..a.num_qubits()).all(|q| {
        let (pa, pb) = (a.get(q), b.get(q));
        pa == Pauli::I || pb == Pauli::I || pa == pb
    })
}

/// Greedy first-fit partition of a Hamiltonian's terms into qubit-wise
/// commuting groups. Returns term indices per group; every term appears in
/// exactly one group.
///
/// # Example
///
/// ```
/// use clapton_pauli::PauliSum;
/// use clapton_vqe::group_qubitwise_commuting;
///
/// let h = PauliSum::from_terms(2, vec![
///     (1.0, "ZI".parse().unwrap()),
///     (1.0, "IZ".parse().unwrap()),  // shares the Z basis with ZI
///     (1.0, "XX".parse().unwrap()),  // needs its own group
/// ]);
/// let groups = group_qubitwise_commuting(&h);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0], vec![0, 1]);
/// ```
pub fn group_qubitwise_commuting(h: &PauliSum) -> Vec<Vec<usize>> {
    let mut groups: Vec<(PauliString, Vec<usize>)> = Vec::new();
    for (i, (_, p)) in h.iter().enumerate() {
        let mut placed = false;
        for (basis, members) in groups.iter_mut() {
            if qubitwise_commute(basis, p) {
                // Extend the group basis with this term's non-identity
                // factors.
                for q in p.support() {
                    basis.set(q, p.get(q));
                }
                members.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((p.clone(), vec![i]));
        }
    }
    groups.into_iter().map(|(_, members)| members).collect()
}

/// Shot-based energy estimator over a device-model output state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledEnergy {
    /// Shots per measurement group.
    pub shots_per_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SampledEnergy {
    /// Creates an estimator.
    pub fn new(shots_per_group: usize, seed: u64) -> SampledEnergy {
        SampledEnergy {
            shots_per_group,
            seed,
        }
    }

    /// Estimates the energy of `h_logical` for the circuit `A'(θ)` under the
    /// executable's noise model, by sampling measurement outcomes per
    /// qubit-wise commuting group (with readout flips applied to the sampled
    /// bits).
    ///
    /// The estimator is unbiased for
    /// [`DeviceEvaluator::energy`](clapton_sim::DeviceEvaluator::energy)
    /// when basis-prep gate noise is accounted analytically, which this
    /// method does.
    ///
    /// # Panics
    ///
    /// Panics if `shots_per_group == 0` or θ has the wrong dimension.
    pub fn estimate(&self, h_logical: &PauliSum, exec: &ExecutableAnsatz, theta: &[f64]) -> f64 {
        assert!(self.shots_per_group > 0, "need at least one shot");
        let mapped = exec.map_hamiltonian(h_logical);
        let device = DeviceEvaluator::run(&exec.circuit(theta), exec.noise_model());
        self.estimate_from_state(&mapped, device.state(), exec)
    }

    /// Estimates the energy of an already-mapped Hamiltonian on a prepared
    /// mixed state.
    pub fn estimate_from_state(
        &self,
        mapped: &PauliSum,
        rho: &DensityMatrix,
        exec: &ExecutableAnsatz,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let model = exec.noise_model();
        let n = rho.num_qubits();
        let groups = group_qubitwise_commuting(mapped);
        let terms = mapped.terms();
        let mut energy = 0.0;
        for group in &groups {
            // The shared measurement basis of the group.
            let mut basis = PauliString::identity(n);
            for &ti in group {
                for q in terms[ti].pauli.support() {
                    basis.set(q, terms[ti].pauli.get(q));
                }
            }
            // Rotate a copy of the state into the group's basis.
            let mut rotated = rho.clone();
            for q in basis.support() {
                match basis.get(q) {
                    Pauli::X => rotated.apply_gate(Gate::H(q)),
                    Pauli::Y => {
                        rotated.apply_gate(Gate::Sdg(q));
                        rotated.apply_gate(Gate::H(q));
                    }
                    _ => {}
                }
            }
            let probs = rotated.diagonal_probabilities();
            // Sample bitstrings with readout flips; accumulate per-term ±1.
            let mut sums = vec![0i64; group.len()];
            for _ in 0..self.shots_per_group {
                let mut bits = sample_index(&probs, &mut rng) as u64;
                for q in 0..n {
                    if rng.gen::<f64>() < model.readout(q) {
                        bits ^= 1 << q;
                    }
                }
                for (slot, &ti) in group.iter().enumerate() {
                    let mut value = 1i64;
                    for q in terms[ti].pauli.support() {
                        if (bits >> q) & 1 == 1 {
                            value = -value;
                        }
                    }
                    sums[slot] += value;
                }
            }
            for (slot, &ti) in group.iter().enumerate() {
                // Basis-prep gate noise accounted analytically, matching the
                // DeviceEvaluator semantics.
                let mut prep = 1.0;
                for q in terms[ti].pauli.support() {
                    let gates = match terms[ti].pauli.get(q) {
                        Pauli::X => 1,
                        Pauli::Y => 2,
                        _ => 0,
                    };
                    for _ in 0..gates {
                        prep *= 1.0 - 4.0 * model.p1(q) / 3.0;
                    }
                }
                let mean = sums[slot] as f64 / self.shots_per_group as f64;
                energy += terms[ti].coefficient * prep * mean;
            }
        }
        energy
    }
}

/// Samples an index from an (unnormalized, non-negative) weight vector.
fn sample_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_models::{ising, xxz};
    use clapton_noise::NoiseModel;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn qubitwise_commutation_examples() {
        assert!(qubitwise_commute(&ps("ZI"), &ps("IZ")));
        assert!(qubitwise_commute(&ps("ZZ"), &ps("ZI")));
        assert!(!qubitwise_commute(&ps("XX"), &ps("ZZ")));
        // XX and YY commute globally but NOT qubit-wise.
        assert!(ps("XX").commutes_with(&ps("YY")));
        assert!(!qubitwise_commute(&ps("XX"), &ps("YY")));
    }

    #[test]
    fn grouping_covers_all_terms_exactly_once() {
        let h = xxz(5, 1.0);
        let groups = group_qubitwise_commuting(&h);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..h.num_terms()).collect::<Vec<_>>());
        // Every group is internally qubit-wise commuting.
        for g in &groups {
            for (i, &a) in g.iter().enumerate() {
                for &b in &g[i + 1..] {
                    assert!(qubitwise_commute(&h.terms()[a].pauli, &h.terms()[b].pauli));
                }
            }
        }
        // XXZ has three mutually exclusive bases: XX / YY / ZZ layers.
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn ising_needs_two_groups() {
        // XX couplings and Z fields are qubit-wise incompatible.
        let h = ising(4, 1.0);
        let groups = group_qubitwise_commuting(&h);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn sampled_energy_converges_to_analytic() {
        let n = 3;
        let h = ising(n, 0.5);
        let model = NoiseModel::uniform(n, 1e-3, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let theta: Vec<f64> = (0..4 * n).map(|i| 0.3 * i as f64).collect();
        let analytic = {
            let device = DeviceEvaluator::run(&exec.circuit(&theta), exec.noise_model());
            device.energy(&exec.map_hamiltonian(&h))
        };
        let sampled = SampledEnergy::new(60_000, 11).estimate(&h, &exec, &theta);
        assert!(
            (sampled - analytic).abs() < 0.05,
            "sampled {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let n = 2;
        let h = ising(n, 1.0);
        let exec = ExecutableAnsatz::untranspiled(n, &NoiseModel::noiseless(n));
        let theta = vec![0.4; 8];
        let a = SampledEnergy::new(500, 3).estimate(&h, &exec, &theta);
        let b = SampledEnergy::new(500, 3).estimate(&h, &exec, &theta);
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_z_terms_are_sampled_exactly() {
        // With no noise and a computational state, Z-type terms have zero
        // sampling variance.
        let n = 3;
        let h = PauliSum::from_terms(n, vec![(1.0, ps("ZZI")), (2.0, ps("IIZ"))]);
        let exec = ExecutableAnsatz::untranspiled(n, &NoiseModel::noiseless(n));
        let e = SampledEnergy::new(10, 1).estimate(&h, &exec, &[0.0; 12]);
        assert_eq!(e, 3.0);
    }
}
