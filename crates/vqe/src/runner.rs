//! The end-to-end VQE loop against the noisy device model.

use crate::{Spsa, SpsaConfig};
use clapton_core::{DenseBackend, EnergyBackend, ExecutableAnsatz};
use clapton_pauli::PauliSum;
use serde::{Deserialize, Serialize};

/// Configuration of a VQE run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VqeConfig {
    /// The SPSA settings (iterations included).
    pub spsa: SpsaConfig,
    /// Record the true device energy every `record_every` iterations
    /// (in addition to SPSA's internal loss estimates).
    pub record_every: usize,
}

impl VqeConfig {
    /// A VQE run of `iterations` SPSA steps recording ~30 trace points.
    pub fn new(iterations: usize) -> VqeConfig {
        VqeConfig {
            spsa: SpsaConfig::for_iterations(iterations),
            record_every: (iterations / 30).max(1),
        }
    }
}

/// The convergence record of one VQE run (one line of Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VqeTrace {
    /// Device energy of the starting point.
    pub initial_energy: f64,
    /// `(iteration, device energy)` samples along the run.
    pub trace: Vec<(usize, f64)>,
    /// Device energy of the final point.
    pub final_energy: f64,
    /// The final parameters.
    pub final_theta: Vec<f64>,
    /// SPSA's internal loss estimates per iteration.
    pub spsa_history: Vec<f64>,
}

/// Runs VQE: minimizes the device-model energy of `A'(θ)` with respect to
/// `h_logical` starting from `theta0`.
///
/// For Clapton, `h_logical` is the transformed Hamiltonian `Ĥ` and
/// `theta0 = 0`; for CAFQA/nCAFQA it is the original `H` with
/// `theta0 = θ_CAFQA` (§5.2). The objective is evaluated with the full
/// density-matrix noise model ([`DenseBackend`]), i.e. the same
/// environment the paper's Qiskit simulations use.
///
/// # Panics
///
/// Panics if `theta0` has the wrong length for the ansatz.
///
/// # Example
///
/// ```
/// use clapton_core::ExecutableAnsatz;
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
/// use clapton_vqe::{run_vqe, VqeConfig};
///
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZI".parse().unwrap())]);
/// let exec = ExecutableAnsatz::untranspiled(2, &NoiseModel::noiseless(2));
/// // θ = 0 is a symmetric stationary point of ⟨Z⟩; start slightly off it.
/// let trace = run_vqe(&h, &exec, &vec![0.3; 8], &VqeConfig::new(250));
/// // The optimizer flips qubit 0 towards |1⟩: energy approaches -1.
/// assert!(trace.final_energy < -0.9);
/// ```
pub fn run_vqe(
    h_logical: &PauliSum,
    exec: &ExecutableAnsatz,
    theta0: &[f64],
    config: &VqeConfig,
) -> VqeTrace {
    run_vqe_with_backend(h_logical, exec, theta0, config, &DenseBackend)
}

/// [`run_vqe`] with an explicit [`EnergyBackend`]: the same trait objects
/// that drive the Clapton loss plug in here, so the VQE objective can run on
/// the exact Clifford model, the frame sampler, or (the default) the dense
/// device simulation.
///
/// Note that away from Clifford angles only [`DenseBackend`] is exact; the
/// stabilizer-based backends are meaningful for Clifford θ only.
///
/// # Panics
///
/// Panics if `theta0` has the wrong length for the ansatz.
pub fn run_vqe_with_backend(
    h_logical: &PauliSum,
    exec: &ExecutableAnsatz,
    theta0: &[f64],
    config: &VqeConfig,
    backend: &dyn EnergyBackend,
) -> VqeTrace {
    assert_eq!(
        theta0.len(),
        exec.ansatz().num_parameters(),
        "θ dimension mismatch"
    );
    let mapped = exec.map_hamiltonian(h_logical);
    let objective = |theta: &[f64]| {
        let circuit = exec.circuit(theta);
        backend.energy(&circuit, exec.noise_model(), &mapped)
    };
    let initial_energy = objective(theta0);
    let result = Spsa::new(config.spsa).minimize(&objective, theta0.to_vec());
    // Re-trace the device energy at recorded SPSA estimates: use the
    // internal history as the curve and anchor the endpoints exactly.
    let mut trace: Vec<(usize, f64)> = Vec::new();
    for (k, &estimate) in result.history.iter().enumerate() {
        if k % config.record_every == 0 {
            trace.push((k, estimate));
        }
    }
    let final_energy = objective(&result.theta);
    VqeTrace {
        initial_energy,
        trace,
        final_energy,
        final_theta: result.theta,
        spsa_history: result.history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_core::{run_clapton, ClaptonConfig};
    use clapton_models::ising;
    use clapton_noise::NoiseModel;
    use clapton_sim::ground_energy;

    #[test]
    fn vqe_converges_on_noiseless_two_qubit_ising() {
        let h = ising(2, 0.5);
        let exec = ExecutableAnsatz::untranspiled(2, &NoiseModel::noiseless(2));
        let trace = run_vqe(&h, &exec, &[0.1; 8], &VqeConfig::new(250));
        let e0 = ground_energy(&h);
        assert!(
            trace.final_energy < e0 + 0.15,
            "final {} vs E0 {e0}",
            trace.final_energy
        );
        assert!(trace.final_energy >= e0 - 1e-9, "variational bound");
        assert!(trace.final_energy < trace.initial_energy);
    }

    #[test]
    fn clapton_initialization_starts_lower_than_raw_zero() {
        // The post-Clapton problem at θ=0 must start at a better device
        // energy than the untransformed problem at θ=0.
        let h = ising(3, 0.5);
        let mut model = NoiseModel::uniform(3, 1e-3, 8e-3, 2e-2);
        model.set_t1_uniform(80e-6);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let zeros = vec![0.0; 12];
        let raw = run_vqe(&h, &exec, &zeros, &VqeConfig::new(1));
        let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(5));
        let transformed = run_vqe(
            &clapton.transformation.transformed,
            &exec,
            &zeros,
            &VqeConfig::new(1),
        );
        assert!(
            transformed.initial_energy < raw.initial_energy,
            "clapton start {} vs raw start {}",
            transformed.initial_energy,
            raw.initial_energy
        );
    }

    #[test]
    fn trace_is_recorded() {
        let h = ising(2, 1.0);
        let exec = ExecutableAnsatz::untranspiled(2, &NoiseModel::noiseless(2));
        let trace = run_vqe(&h, &exec, &[0.0; 8], &VqeConfig::new(60));
        assert!(!trace.trace.is_empty());
        assert_eq!(trace.spsa_history.len(), 60);
        assert_eq!(trace.final_theta.len(), 8);
    }
}
