//! Nelder–Mead simplex minimization (the gradient-free alternative of §2.3).

/// Nelder–Mead hyper-parameters (standard reflection/expansion/contraction/
/// shrink coefficients).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
    /// Convergence tolerance on the simplex loss spread.
    pub tolerance: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> NelderMeadConfig {
        NelderMeadConfig {
            max_evaluations: 2000,
            initial_step: 0.5,
            tolerance: 1e-8,
        }
    }
}

/// The Nelder–Mead optimizer.
///
/// # Example
///
/// ```
/// use clapton_vqe::{NelderMead, NelderMeadConfig};
///
/// let f = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
/// let (best, loss) = NelderMead::new(NelderMeadConfig::default())
///     .minimize(&f, vec![0.0, 0.0]);
/// assert!(loss < 1e-6);
/// assert!((best[0] - 2.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct NelderMead {
    config: NelderMeadConfig,
}

impl NelderMead {
    /// Creates an optimizer.
    pub fn new(config: NelderMeadConfig) -> NelderMead {
        NelderMead { config }
    }

    /// Minimizes `f` from `x0`, returning `(best_point, best_loss)`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize<F>(&self, f: &F, x0: Vec<f64>) -> (Vec<f64>, f64)
    where
        F: Fn(&[f64]) -> f64 + ?Sized,
    {
        assert!(!x0.is_empty(), "need at least one parameter");
        let d = x0.len();
        let cfg = &self.config;
        let mut evals = 0usize;
        let eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            f(x)
        };
        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(f64, Vec<f64>)> = Vec::with_capacity(d + 1);
        simplex.push((eval(&x0, &mut evals), x0.clone()));
        for i in 0..d {
            let mut x = x0.clone();
            x[i] += cfg.initial_step;
            simplex.push((eval(&x, &mut evals), x));
        }
        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        while evals < cfg.max_evaluations {
            simplex.sort_by(|a, b| a.0.total_cmp(&b.0));
            if simplex[d].0 - simplex[0].0 < cfg.tolerance {
                break;
            }
            // Centroid of all but the worst.
            let mut centroid = vec![0.0; d];
            for (_, x) in &simplex[..d] {
                for i in 0..d {
                    centroid[i] += x[i] / d as f64;
                }
            }
            let worst = simplex[d].clone();
            let reflect: Vec<f64> = (0..d)
                .map(|i| centroid[i] + alpha * (centroid[i] - worst.1[i]))
                .collect();
            let f_reflect = eval(&reflect, &mut evals);
            if f_reflect < simplex[0].0 {
                // Try expansion.
                let expand: Vec<f64> = (0..d)
                    .map(|i| centroid[i] + gamma * (reflect[i] - centroid[i]))
                    .collect();
                let f_expand = eval(&expand, &mut evals);
                simplex[d] = if f_expand < f_reflect {
                    (f_expand, expand)
                } else {
                    (f_reflect, reflect)
                };
            } else if f_reflect < simplex[d - 1].0 {
                simplex[d] = (f_reflect, reflect);
            } else {
                // Contraction.
                let contract: Vec<f64> = (0..d)
                    .map(|i| centroid[i] + rho * (worst.1[i] - centroid[i]))
                    .collect();
                let f_contract = eval(&contract, &mut evals);
                if f_contract < worst.0 {
                    simplex[d] = (f_contract, contract);
                } else {
                    // Shrink toward the best.
                    let best = simplex[0].1.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        for (x, &b) in entry.1.iter_mut().zip(&best) {
                            *x = b + sigma * (*x - b);
                        }
                        entry.0 = eval(&entry.1.clone(), &mut evals);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (loss, x) = simplex.into_iter().next().expect("non-empty simplex");
        (x, loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let (best, loss) =
            NelderMead::new(NelderMeadConfig::default()).minimize(&f, vec![3.0, -2.0]);
        assert!(loss < 1e-6);
        assert!(best.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn minimizes_banana_valley() {
        // A mild Rosenbrock: curved valley, classic NM stress test.
        let f = |x: &[f64]| {
            let (a, b) = (x[0], x[1]);
            (1.0 - a).powi(2) + 10.0 * (b - a * a).powi(2)
        };
        let cfg = NelderMeadConfig {
            max_evaluations: 5000,
            ..NelderMeadConfig::default()
        };
        let (best, loss) = NelderMead::new(cfg).minimize(&f, vec![-1.0, 1.0]);
        assert!(loss < 1e-4, "loss {loss} at {best:?}");
    }

    #[test]
    fn respects_evaluation_budget() {
        let count = std::cell::Cell::new(0usize);
        let f = |x: &[f64]| {
            count.set(count.get() + 1);
            x[0] * x[0]
        };
        let cfg = NelderMeadConfig {
            max_evaluations: 100,
            tolerance: 0.0,
            ..NelderMeadConfig::default()
        };
        let _ = NelderMead::new(cfg).minimize(&f, vec![5.0]);
        // Budget may overshoot by at most one simplex operation (≤ d+2).
        assert!(count.get() <= 103, "used {}", count.get());
    }

    #[test]
    fn one_dimensional_cosine() {
        let f = |x: &[f64]| x[0].cos();
        let (best, loss) = NelderMead::new(NelderMeadConfig::default()).minimize(&f, vec![1.0]);
        assert!(loss < -0.999);
        assert!((best[0] - std::f64::consts::PI).abs() < 1e-2);
    }
}
