//! Zero-noise extrapolation on top of the Clapton pipeline.
//!
//! The paper positions Clapton as a *pre-processing* error-mitigation
//! technique that "may be combined with other popular error mitigation
//! methods" (§8, citing ZNE [18, 50] in §7). This module implements digital
//! ZNE by global unitary folding: the executable circuit `C` is replaced by
//! `C (C†C)^k`, amplifying the physical noise by the odd factor `2k+1`
//! without changing the ideal unitary, and the measured energies are
//! extrapolated back to the zero-noise limit with a Richardson (polynomial)
//! fit.

use clapton_core::ExecutableAnsatz;
use clapton_pauli::PauliSum;
use clapton_sim::DeviceEvaluator;

/// Configuration of a ZNE estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneConfig {
    /// Odd noise-scaling factors (must start at 1 and be strictly
    /// increasing), e.g. `[1, 3, 5]`.
    pub scales: Vec<usize>,
}

impl Default for ZneConfig {
    fn default() -> ZneConfig {
        ZneConfig {
            scales: vec![1, 3, 5],
        }
    }
}

/// The result of a zero-noise extrapolation.
#[derive(Debug, Clone, PartialEq)]
pub struct ZneEstimate {
    /// `(scale, measured energy)` pairs.
    pub measurements: Vec<(usize, f64)>,
    /// The Richardson-extrapolated zero-noise energy.
    pub extrapolated: f64,
}

/// Measures the energy of `A'(θ)` at every noise scale and Richardson-
/// extrapolates to zero noise.
///
/// # Panics
///
/// Panics if the scale list is empty, non-monotone, or contains even values.
///
/// # Example
///
/// ```
/// use clapton_core::ExecutableAnsatz;
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
/// use clapton_vqe::{zero_noise_extrapolate, ZneConfig};
///
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZZ".parse().unwrap())]);
/// let model = NoiseModel::uniform(2, 2e-3, 1e-2, 0.0);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let theta = vec![0.0; 8];
/// let zne = zero_noise_extrapolate(&h, &exec, &theta, &ZneConfig::default());
/// // The extrapolation recovers the noiseless value (⟨ZZ⟩ = 1) better than
/// // the raw scale-1 measurement.
/// let raw = zne.measurements[0].1;
/// assert!((zne.extrapolated - 1.0).abs() < (raw - 1.0).abs());
/// ```
pub fn zero_noise_extrapolate(
    h_logical: &PauliSum,
    exec: &ExecutableAnsatz,
    theta: &[f64],
    config: &ZneConfig,
) -> ZneEstimate {
    assert!(!config.scales.is_empty(), "need at least one scale");
    for w in config.scales.windows(2) {
        assert!(w[0] < w[1], "scales must be strictly increasing");
    }
    for &s in &config.scales {
        assert!(s % 2 == 1, "scales must be odd, got {s}");
    }
    let mapped = exec.map_hamiltonian(h_logical);
    let base = exec.circuit(theta);
    let measurements: Vec<(usize, f64)> = config
        .scales
        .iter()
        .map(|&scale| {
            let folded = base.folded(scale);
            let energy = DeviceEvaluator::run(&folded, exec.noise_model()).energy(&mapped);
            (scale, energy)
        })
        .collect();
    let extrapolated = richardson_extrapolate(&measurements);
    ZneEstimate {
        measurements,
        extrapolated,
    }
}

/// Richardson extrapolation to `x = 0`: the Lagrange interpolating
/// polynomial through `(scale, energy)` evaluated at zero.
///
/// # Panics
///
/// Panics on an empty input or duplicated scales.
pub fn richardson_extrapolate(points: &[(usize, f64)]) -> f64 {
    assert!(!points.is_empty(), "no measurements to extrapolate");
    let mut total = 0.0;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i != j {
                assert!(xi != xj, "duplicate scale {xi}");
                weight *= xj as f64 / (xj as f64 - xi as f64);
            }
        }
        total += weight * yi;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_models::ising;
    use clapton_noise::NoiseModel;

    #[test]
    fn richardson_is_exact_on_polynomials() {
        // y = 3 - 2x: extrapolating from x = 1, 3 gives exactly 3.
        let points = vec![(1usize, 1.0), (3usize, -3.0)];
        assert!((richardson_extrapolate(&points) - 3.0).abs() < 1e-12);
        // Quadratic through 3 points.
        let quad = |x: f64| 1.0 + 0.5 * x + 0.25 * x * x;
        let points: Vec<(usize, f64)> = [1usize, 3, 5]
            .iter()
            .map(|&x| (x, quad(x as f64)))
            .collect();
        assert!((richardson_extrapolate(&points) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn folding_amplifies_noise_monotonically() {
        let n = 3;
        let h = ising(n, 0.5);
        let model = NoiseModel::uniform(n, 2e-3, 1e-2, 0.0);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let theta = vec![0.0; 12];
        let zne = zero_noise_extrapolate(
            &h,
            &exec,
            &theta,
            &ZneConfig {
                scales: vec![1, 3, 5],
            },
        );
        // |0…0⟩ has energy +3 for this H; noise damps toward 0, more so at
        // larger scales.
        let energies: Vec<f64> = zne.measurements.iter().map(|&(_, e)| e).collect();
        assert!(energies[0] > energies[1]);
        assert!(energies[1] > energies[2]);
    }

    #[test]
    fn zne_beats_raw_measurement() {
        let n = 4;
        let h = ising(n, 0.25);
        let model = NoiseModel::uniform(n, 1e-3, 8e-3, 0.0);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        // Noiseless reference at θ = 0 is ⟨0|H|0⟩ = N.
        let reference = h.expectation_all_zeros();
        let theta = vec![0.0; 16];
        let zne = zero_noise_extrapolate(&h, &exec, &theta, &ZneConfig::default());
        let raw_error = (zne.measurements[0].1 - reference).abs();
        let zne_error = (zne.extrapolated - reference).abs();
        assert!(zne_error < raw_error, "zne {zne_error} vs raw {raw_error}");
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn rejects_even_scales() {
        let h = ising(2, 1.0);
        let exec = ExecutableAnsatz::untranspiled(2, &NoiseModel::noiseless(2));
        zero_noise_extrapolate(&h, &exec, &[0.0; 8], &ZneConfig { scales: vec![1, 2] });
    }
}
