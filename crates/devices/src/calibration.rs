//! Calibration snapshots: the per-qubit data Clapton extracts from devices.

use clapton_noise::NoiseModel;
use serde::{Deserialize, Serialize};

/// A device calibration snapshot (what `backend.properties()` exposes on the
/// IBM stack): per-qubit T1 and readout error, per-qubit single-qubit gate
/// error and per-edge two-qubit gate error.
///
/// Serializable so snapshots can be persisted and replayed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// T1 relaxation times in seconds, one per qubit.
    pub t1: Vec<f64>,
    /// Single-qubit depolarizing error rates, one per qubit.
    pub p1: Vec<f64>,
    /// Two-qubit depolarizing error rates per coupling-map edge.
    pub p2: Vec<((usize, usize), f64)>,
    /// Readout misassignment probabilities, one per qubit.
    pub readout: Vec<f64>,
}

impl Calibration {
    /// The number of qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.t1.len()
    }

    /// Converts the snapshot into a [`NoiseModel`] (the representation the
    /// Clifford and density-matrix evaluators consume).
    ///
    /// # Panics
    ///
    /// Panics if the per-qubit vectors disagree in length.
    pub fn to_noise_model(&self) -> NoiseModel {
        let n = self.num_qubits();
        assert_eq!(self.p1.len(), n, "p1 length");
        assert_eq!(self.readout.len(), n, "readout length");
        let mut model = NoiseModel::noiseless(n);
        let mean_p2 = if self.p2.is_empty() {
            0.0
        } else {
            self.p2.iter().map(|(_, p)| p).sum::<f64>() / self.p2.len() as f64
        };
        model.set_p2_default(mean_p2);
        for q in 0..n {
            model.set_p1(q, self.p1[q]);
            model.set_readout(q, self.readout[q]);
            model.set_t1(q, self.t1[q]);
        }
        for &((a, b), p) in &self.p2 {
            model.set_p2(a, b, p);
        }
        model
    }

    /// Mean two-qubit error across calibrated edges.
    pub fn mean_p2(&self) -> f64 {
        if self.p2.is_empty() {
            return 0.0;
        }
        self.p2.iter().map(|(_, p)| p).sum::<f64>() / self.p2.len() as f64
    }

    /// Mean readout error across qubits.
    pub fn mean_readout(&self) -> f64 {
        self.readout.iter().sum::<f64>() / self.readout.len() as f64
    }

    /// Mean T1 across qubits (seconds).
    pub fn mean_t1(&self) -> f64 {
        self.t1.iter().sum::<f64>() / self.t1.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Calibration {
        Calibration {
            t1: vec![80e-6, 120e-6],
            p1: vec![3e-4, 5e-4],
            p2: vec![((0, 1), 1.2e-2)],
            readout: vec![2e-2, 4e-2],
        }
    }

    #[test]
    fn converts_to_noise_model() {
        let model = sample().to_noise_model();
        assert_eq!(model.num_qubits(), 2);
        assert_eq!(model.p1(1), 5e-4);
        assert_eq!(model.p2(0, 1), 1.2e-2);
        assert_eq!(model.readout(0), 2e-2);
        assert_eq!(model.t1(1), 120e-6);
        assert!(model.has_relaxation());
    }

    #[test]
    fn means() {
        let c = sample();
        assert!((c.mean_p2() - 1.2e-2).abs() < 1e-15);
        assert!((c.mean_readout() - 3e-2).abs() < 1e-15);
        assert!((c.mean_t1() - 100e-6).abs() < 1e-15);
    }

    #[test]
    fn serde_round_trip() {
        let c = sample();
        let json = serde_json::to_string(&c).unwrap();
        let back: Calibration = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
