//! Fake quantum backends — the IBM-device substitute of the Clapton stack.
//!
//! The paper evaluates on noise-model snapshots of IBM machines (`nairobi`,
//! `toronto`, `mumbai`) and on the cloud device `hanoi` (§5.2.2). Here each
//! backend is a real heavy-hex coupling topology plus a **seeded synthetic
//! calibration snapshot** drawn from distributions representative of
//! published IBM Falcon data (2q error ≈ 1e-2, readout ≈ 1–5e-2,
//! T1 ≈ 60–180 µs) — see DESIGN.md, substitution 2.
//!
//! Real-hardware runs are modeled by [`FakeBackend::hardware_variant`]: the
//! same device with every rate perturbed by a seeded lognormal factor,
//! reproducing the calibration/device discrepancy the paper observes on
//! `hanoi` (§6.1.1), per substitution 3.

mod backend;
mod calibration;

pub use backend::FakeBackend;
pub use calibration::Calibration;
