//! The four backends of the paper's evaluation.

use crate::Calibration;
use clapton_circuits::CouplingMap;
use clapton_error::{ClaptonError, SpecError};
use clapton_noise::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fake quantum backend: name, coupling topology and a calibration
/// snapshot.
///
/// # Example
///
/// ```
/// use clapton_devices::FakeBackend;
///
/// let toronto = FakeBackend::toronto();
/// assert_eq!(toronto.num_qubits(), 27);
/// // A ten-qubit chain embeds without SWAPs on the heavy-hex lattice.
/// assert!(toronto.coupling_map().find_line(10).is_some());
/// let model = toronto.noise_model();
/// assert!(model.has_relaxation());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FakeBackend {
    name: String,
    coupling: CouplingMap,
    calibration: Calibration,
}

/// Per-device calibration "personality": the ranges the seeded snapshot is
/// drawn from.
struct Personality {
    t1_range: (f64, f64),
    p1_range: (f64, f64),
    p2_base: (f64, f64),
    readout_range: (f64, f64),
    /// Probability of an outlier edge with 3× the two-qubit error.
    outlier_edge: f64,
}

impl FakeBackend {
    /// The 7-qubit `nairobi` device (IBM Falcon r5.11H layout).
    pub fn nairobi() -> FakeBackend {
        FakeBackend::synthesize(
            "nairobi",
            CouplingMap::new(7, vec![(0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)]),
            Personality {
                t1_range: (80e-6, 160e-6),
                p1_range: (2e-4, 5e-4),
                p2_base: (8e-3, 1.6e-2),
                readout_range: (1.5e-2, 4.5e-2),
                outlier_edge: 0.15,
            },
        )
    }

    /// The 27-qubit `toronto` device. The paper observes the largest Clapton
    /// gains here; its snapshot carries the worst readout errors of the trio.
    pub fn toronto() -> FakeBackend {
        FakeBackend::synthesize(
            "toronto",
            heavy_hex_27(),
            Personality {
                t1_range: (60e-6, 130e-6),
                p1_range: (3e-4, 7e-4),
                p2_base: (9e-3, 2.2e-2),
                readout_range: (3e-2, 9e-2),
                outlier_edge: 0.2,
            },
        )
    }

    /// The 27-qubit `mumbai` device (mid-range snapshot).
    pub fn mumbai() -> FakeBackend {
        FakeBackend::synthesize(
            "mumbai",
            heavy_hex_27(),
            Personality {
                t1_range: (80e-6, 160e-6),
                p1_range: (2.5e-4, 6e-4),
                p2_base: (7e-3, 1.6e-2),
                readout_range: (1.5e-2, 5e-2),
                outlier_edge: 0.12,
            },
        )
    }

    /// The 27-qubit `hanoi` device (the paper's real-hardware target; the
    /// best gates of the trio).
    pub fn hanoi() -> FakeBackend {
        FakeBackend::synthesize(
            "hanoi",
            heavy_hex_27(),
            Personality {
                t1_range: (100e-6, 190e-6),
                p1_range: (1.5e-4, 4e-4),
                p2_base: (5e-3, 1.2e-2),
                readout_range: (8e-3, 3e-2),
                outlier_edge: 0.1,
            },
        )
    }

    /// All four backends of the evaluation.
    pub fn all() -> Vec<FakeBackend> {
        vec![
            FakeBackend::nairobi(),
            FakeBackend::toronto(),
            FakeBackend::mumbai(),
            FakeBackend::hanoi(),
        ]
    }

    /// Every name [`FakeBackend::by_name`] resolves — the backend registry
    /// job specs address devices through.
    pub fn registry_names() -> &'static [&'static str] {
        &["nairobi", "toronto", "mumbai", "hanoi"]
    }

    /// Resolves a registry name to its backend. Accepts a `-hw:<seed>`
    /// suffix selecting the perturbed [`FakeBackend::hardware_variant`]
    /// (e.g. `"hanoi-hw:42"` — the §6.1.1 calibration/device discrepancy).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownProblem`]-style: an [`SpecError::UnknownBackend`]
    /// listing the available names.
    pub fn by_name(name: &str) -> Result<FakeBackend, SpecError> {
        let unknown = || SpecError::UnknownBackend {
            name: name.to_string(),
            available: FakeBackend::registry_names()
                .iter()
                .map(|n| n.to_string())
                .collect(),
        };
        let (base, hw_seed) = match name.split_once("-hw:") {
            Some((base, seed)) => (base, Some(seed.parse::<u64>().map_err(|_| unknown())?)),
            None => (name, None),
        };
        let backend = match base {
            "nairobi" => FakeBackend::nairobi(),
            "toronto" => FakeBackend::toronto(),
            "mumbai" => FakeBackend::mumbai(),
            "hanoi" => FakeBackend::hanoi(),
            _ => return Err(unknown()),
        };
        Ok(match hw_seed {
            Some(seed) => backend.hardware_variant(seed),
            None => backend,
        })
    }

    /// Builds a backend from explicit parts (e.g. a deserialized snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the calibration size disagrees with the coupling map.
    pub fn from_parts(
        name: impl Into<String>,
        coupling: CouplingMap,
        calibration: Calibration,
    ) -> FakeBackend {
        assert_eq!(
            coupling.num_qubits(),
            calibration.num_qubits(),
            "coupling/calibration size mismatch"
        );
        FakeBackend {
            name: name.into(),
            coupling,
            calibration,
        }
    }

    fn synthesize(name: &str, coupling: CouplingMap, p: Personality) -> FakeBackend {
        let n = coupling.num_qubits();
        let seed: u64 = name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD511_CE00);
        let calibration = Calibration {
            t1: (0..n)
                .map(|_| rng.gen_range(p.t1_range.0..p.t1_range.1))
                .collect(),
            p1: (0..n)
                .map(|_| rng.gen_range(p.p1_range.0..p.p1_range.1))
                .collect(),
            p2: coupling
                .edges()
                .iter()
                .map(|&e| {
                    let base = rng.gen_range(p.p2_base.0..p.p2_base.1);
                    let factor = if rng.gen_bool(p.outlier_edge) {
                        3.0
                    } else {
                        1.0
                    };
                    (e, (base * factor).min(0.2))
                })
                .collect(),
            readout: (0..n)
                .map(|_| rng.gen_range(p.readout_range.0..p.readout_range.1))
                .collect(),
        };
        FakeBackend {
            name: name.to_string(),
            coupling,
            calibration,
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coupling.num_qubits()
    }

    /// The coupling topology.
    pub fn coupling_map(&self) -> &CouplingMap {
        &self.coupling
    }

    /// The calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The noise model extracted from the calibration (what Clapton
    /// optimizes against).
    pub fn noise_model(&self) -> NoiseModel {
        self.calibration.to_noise_model()
    }

    /// Serializes the full backend (name, topology, calibration) to JSON,
    /// so snapshots can be archived and replayed.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (cannot happen for valid backends).
    pub fn to_json(&self) -> String {
        let record = BackendRecord {
            name: self.name.clone(),
            coupling: self.coupling.clone(),
            calibration: self.calibration.clone(),
        };
        serde_json::to_string_pretty(&record).expect("backend serializes")
    }

    /// Restores a backend from [`FakeBackend::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Parse`] on malformed JSON and
    /// [`SpecError::QubitMismatch`] (wrapped) when the snapshot's coupling
    /// map and calibration disagree on the register size.
    pub fn from_json(json: &str) -> Result<FakeBackend, ClaptonError> {
        let record: BackendRecord =
            serde_json::from_str(json).map_err(|e| ClaptonError::Parse {
                what: "backend snapshot".to_string(),
                detail: e.to_string(),
            })?;
        if record.coupling.num_qubits() != record.calibration.num_qubits() {
            return Err(SpecError::QubitMismatch {
                context: format!("backend snapshot {:?}", record.name),
                needed: record.coupling.num_qubits(),
                provided: record.calibration.num_qubits(),
            }
            .into());
        }
        Ok(FakeBackend {
            name: record.name,
            coupling: record.coupling,
            calibration: record.calibration,
        })
    }

    /// A "real hardware" variant: the same device with every calibration
    /// value perturbed by a seeded lognormal-like factor, modeling the
    /// model/device discrepancy of §6.1.1. Clapton optimizes against the
    /// nominal snapshot and is *evaluated* against this one.
    pub fn hardware_variant(&self, seed: u64) -> FakeBackend {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x4A2D);
        let mut perturb = |x: f64, spread: f64| {
            // exp(N(0, spread)) via a coarse normal from averaged uniforms.
            let u: f64 = (0..6).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 6.0;
            x * (u * spread * 2.2).exp()
        };
        let c = &self.calibration;
        let calibration = Calibration {
            t1: c.t1.iter().map(|&t| perturb(t, 0.2)).collect(),
            p1: c.p1.iter().map(|&p| perturb(p, 0.3).min(0.5)).collect(),
            p2: c
                .p2
                .iter()
                .map(|&(e, p)| (e, perturb(p, 0.3).min(0.5)))
                .collect(),
            readout: c
                .readout
                .iter()
                .map(|&p| perturb(p, 0.3).min(0.5))
                .collect(),
        };
        FakeBackend {
            name: format!("{}-hw", self.name),
            coupling: self.coupling.clone(),
            calibration,
        }
    }
}

/// On-disk form of a [`FakeBackend`].
#[derive(serde::Serialize, serde::Deserialize)]
struct BackendRecord {
    name: String,
    coupling: CouplingMap,
    calibration: Calibration,
}

// Serde for the backend itself (the `BackendRecord` wire shape, so
// `to_json`/`from_json` archives and inline spec snapshots are the same
// format). Hand-written because deserialization must re-check the
// coupling/calibration size invariant the private fields guarantee.
impl serde::Serialize for FakeBackend {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        BackendRecord {
            name: self.name.clone(),
            coupling: self.coupling.clone(),
            calibration: self.calibration.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for FakeBackend {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let record = BackendRecord::deserialize(deserializer)?;
        if record.coupling.num_qubits() != record.calibration.num_qubits() {
            return Err(D::Error::custom(format!(
                "backend snapshot {:?}: coupling has {} qubits but calibration has {}",
                record.name,
                record.coupling.num_qubits(),
                record.calibration.num_qubits()
            )));
        }
        Ok(FakeBackend {
            name: record.name,
            coupling: record.coupling,
            calibration: record.calibration,
        })
    }
}

/// The 27-qubit heavy-hex coupling map used by IBM Falcon devices
/// (`toronto`, `mumbai`, `hanoi`).
fn heavy_hex_27() -> CouplingMap {
    CouplingMap::new(
        27,
        vec![
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_have_expected_sizes() {
        assert_eq!(FakeBackend::nairobi().num_qubits(), 7);
        for b in [
            FakeBackend::toronto(),
            FakeBackend::mumbai(),
            FakeBackend::hanoi(),
        ] {
            assert_eq!(b.num_qubits(), 27);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        assert_eq!(FakeBackend::toronto(), FakeBackend::toronto());
        assert_ne!(
            FakeBackend::toronto().calibration(),
            FakeBackend::mumbai().calibration()
        );
    }

    #[test]
    fn heavy_hex_admits_long_lines() {
        let b = FakeBackend::hanoi();
        for len in [7, 10, 15] {
            let line = b.coupling_map().find_line(len).expect("line embedding");
            assert_eq!(line.len(), len);
        }
    }

    #[test]
    fn nairobi_hosts_seven_qubit_chains_via_best_effort_layout() {
        // nairobi's graph has four leaves, so no Hamiltonian path exists —
        // the chain layout must still place all 7 logical qubits.
        let b = FakeBackend::nairobi();
        assert!(b.coupling_map().find_line(7).is_none());
        let layout = clapton_circuits::chain_layout(b.coupling_map(), 7).unwrap();
        assert_eq!(layout.len(), 7);
        let mut sorted = layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7, "layout must be a permutation");
    }

    #[test]
    fn calibration_values_in_personality_ranges() {
        let b = FakeBackend::toronto();
        let c = b.calibration();
        assert!(c.t1.iter().all(|&t| (60e-6..130e-6).contains(&t)));
        assert!(c.readout.iter().all(|&r| (3e-2..9e-2).contains(&r)));
        assert!(c.p2.iter().all(|&(_, p)| p <= 0.2));
        // Toronto's readout is worse than hanoi's (device personality).
        assert!(c.mean_readout() > FakeBackend::hanoi().calibration().mean_readout());
    }

    #[test]
    fn noise_model_has_all_channels() {
        let m = FakeBackend::mumbai().noise_model();
        assert!(m.has_pauli_noise());
        assert!(m.has_relaxation());
        assert!(m.p2(0, 1) > 0.0);
    }

    #[test]
    fn hardware_variant_perturbs_but_preserves_topology() {
        let b = FakeBackend::hanoi();
        let hw = b.hardware_variant(42);
        assert_eq!(hw.coupling_map(), b.coupling_map());
        assert_eq!(hw.name(), "hanoi-hw");
        assert_ne!(hw.calibration(), b.calibration());
        // Same seed → same variant.
        assert_eq!(b.hardware_variant(42), b.hardware_variant(42));
        assert_ne!(b.hardware_variant(1), b.hardware_variant(2));
        // Perturbation is moderate: rates stay within ~3x.
        for (&orig, &pert) in b
            .calibration()
            .readout
            .iter()
            .zip(&hw.calibration().readout)
        {
            let ratio = pert / orig;
            assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn full_backend_json_round_trip() {
        let b = FakeBackend::toronto();
        let json = b.to_json();
        let back = FakeBackend::from_json(&json).unwrap();
        assert_eq!(back, b);
        assert!(matches!(
            FakeBackend::from_json("{not json"),
            Err(ClaptonError::Parse { .. })
        ));
    }

    #[test]
    fn registry_resolves_names_and_hardware_variants() {
        for &name in FakeBackend::registry_names() {
            let b = FakeBackend::by_name(name).unwrap();
            assert_eq!(b.name(), name);
        }
        let hw = FakeBackend::by_name("hanoi-hw:42").unwrap();
        assert_eq!(hw, FakeBackend::hanoi().hardware_variant(42));
        let err = FakeBackend::by_name("almaden").unwrap_err();
        match err {
            SpecError::UnknownBackend { name, available } => {
                assert_eq!(name, "almaden");
                assert_eq!(available.len(), 4);
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(FakeBackend::by_name("hanoi-hw:notanumber").is_err());
    }

    #[test]
    fn snapshot_serde_round_trip_through_parts() {
        let b = FakeBackend::nairobi();
        let json = serde_json::to_string(b.calibration()).unwrap();
        let cal: Calibration = serde_json::from_str(&json).unwrap();
        let rebuilt = FakeBackend::from_parts("nairobi", b.coupling_map().clone(), cal);
        assert_eq!(rebuilt.calibration(), b.calibration());
    }
}
