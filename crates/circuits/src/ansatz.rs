//! The paper's two ansätze: the VQE circuit `A(θ)` and Clapton's Clifford
//! transformation circuit `C(γ)`.

use crate::{Circuit, Gate};
use clapton_stabilizer::CliffordGate;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// The four Clifford-compatible rotation angles `{0, π/2, π, 3π/2}` (§4).
pub const CLIFFORD_ANGLES: [f64; 4] = [0.0, FRAC_PI_2, 2.0 * FRAC_PI_2, 3.0 * FRAC_PI_2];

/// The circular hardware-efficient VQE ansatz `A(θ)` of §4.
///
/// Layer structure: `Ry` on every qubit, `Rz` on every qubit, a circular CX
/// entangler `(0→1, 1→2, …, N-1→0)`, then another `Ry` and `Rz` layer —
/// `d = 4N` rotation parameters total. At `θ = 0` only the CX skeleton
/// remains and `A(0)|0⟩ = |0⟩` (§4.2.1).
///
/// # Example
///
/// ```
/// use clapton_circuits::HardwareEfficientAnsatz;
///
/// let ansatz = HardwareEfficientAnsatz::new(4);
/// assert_eq!(ansatz.num_parameters(), 16);
/// let at_zero = ansatz.circuit(&vec![0.0; 16]);
/// // Only the 4 ring CX gates act non-trivially.
/// assert_eq!(at_zero.count_two_qubit(), 4);
/// assert!(at_zero.is_clifford());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareEfficientAnsatz {
    n: usize,
}

impl HardwareEfficientAnsatz {
    /// Creates the ansatz on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> HardwareEfficientAnsatz {
        assert!(n > 0, "ansatz needs at least one qubit");
        HardwareEfficientAnsatz { n }
    }

    /// The register size `N`.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The number of rotation parameters `d = 4N`.
    pub fn num_parameters(&self) -> usize {
        4 * self.n
    }

    /// The entangling ring: pairs `(i, i+1 mod N)`. For `N = 2` the wrapped
    /// pair would duplicate `(0, 1)` and is dropped; `N = 1` has no pairs.
    pub fn entangling_pairs(&self) -> Vec<(usize, usize)> {
        match self.n {
            1 => vec![],
            2 => vec![(0, 1)],
            n => (0..n).map(|i| (i, (i + 1) % n)).collect(),
        }
    }

    /// Builds the circuit for parameter vector `θ`.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != num_parameters()`.
    pub fn circuit(&self, theta: &[f64]) -> Circuit {
        assert_eq!(theta.len(), self.num_parameters(), "parameter count");
        let n = self.n;
        let mut c = Circuit::new(n);
        for (q, &t) in theta[..n].iter().enumerate() {
            c.push(Gate::Ry(q, t));
        }
        for (q, &t) in theta[n..2 * n].iter().enumerate() {
            c.push(Gate::Rz(q, t));
        }
        for (a, b) in self.entangling_pairs() {
            c.push(Gate::Cx(a, b));
        }
        for (q, &t) in theta[2 * n..3 * n].iter().enumerate() {
            c.push(Gate::Ry(q, t));
        }
        for (q, &t) in theta[3 * n..4 * n].iter().enumerate() {
            c.push(Gate::Rz(q, t));
        }
        c
    }

    /// The circuit at the Clapton initial point `θ = 0` (the CX skeleton with
    /// identity rotations still present as physical gate slots — they carry
    /// gate noise in the noisy model).
    pub fn circuit_at_zero(&self) -> Circuit {
        self.circuit(&vec![0.0; self.num_parameters()])
    }

    /// Converts CAFQA-style quarter-turn indices (each in `0..4`) to angles.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= 4` or the length is wrong.
    pub fn angles_from_indices(&self, indices: &[u8]) -> Vec<f64> {
        assert_eq!(indices.len(), self.num_parameters(), "index count");
        indices
            .iter()
            .map(|&k| {
                assert!(k < 4, "quarter-turn index {k} out of range");
                CLIFFORD_ANGLES[k as usize]
            })
            .collect()
    }
}

/// Clapton's Clifford transformation ansatz `C(γ)` (§4, Eq. 8).
///
/// It mirrors the VQE ansatz but replaces each ring CX with a four-valued
/// two-qubit slot, and restricts rotations to quarter turns. The genome is
///
/// ```text
/// [ Ry layer (N) | Rz layer (N) | two-qubit slots (#pairs) | Ry layer (N) | Rz layer (N) ]
/// ```
///
/// with every gene in `0..4`; for `N ≥ 3` that is the paper's `5N`-dimensional
/// search space Γ. Two-qubit slot values: `0 ↦ I`, `1 ↦ CX(k→l)`,
/// `2 ↦ CX(l→k)`, `3 ↦ SWAP`.
///
/// # Example
///
/// ```
/// use clapton_circuits::TransformationAnsatz;
///
/// let ansatz = TransformationAnsatz::new(4);
/// assert_eq!(ansatz.num_genes(), 20); // 5N
/// let gates = ansatz.gates(&vec![0u8; 20]);
/// assert!(gates.is_empty()); // all-zero genome is the identity
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformationAnsatz {
    n: usize,
    pairs: Vec<(usize, usize)>,
}

impl TransformationAnsatz {
    /// Creates the transformation ansatz on `n` qubits with the circular
    /// pair layout of [`HardwareEfficientAnsatz`].
    pub fn new(n: usize) -> TransformationAnsatz {
        let pairs = HardwareEfficientAnsatz::new(n).entangling_pairs();
        TransformationAnsatz { n, pairs }
    }

    /// Creates the ansatz with explicit two-qubit slot pairs (used when the
    /// transformation should match a transpiled/physical connectivity).
    ///
    /// # Panics
    ///
    /// Panics if a pair index is out of range or a pair is degenerate.
    pub fn with_pairs(n: usize, pairs: Vec<(usize, usize)>) -> TransformationAnsatz {
        for &(a, b) in &pairs {
            assert!(a < n && b < n && a != b, "invalid pair ({a},{b})");
        }
        TransformationAnsatz { n, pairs }
    }

    /// The register size `N`.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The two-qubit slot pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Genome length: `4N` rotation genes + one gene per pair
    /// (= `5N` for `N ≥ 3`).
    pub fn num_genes(&self) -> usize {
        4 * self.n + self.pairs.len()
    }

    /// Number of values each gene can take (always 4, §4).
    pub fn gene_cardinality(&self) -> usize {
        4
    }

    /// Builds the Clifford gate sequence for a genome.
    ///
    /// # Panics
    ///
    /// Panics if the genome length is wrong or any gene is `>= 4`.
    pub fn gates(&self, genes: &[u8]) -> Vec<CliffordGate> {
        assert_eq!(genes.len(), self.num_genes(), "genome length");
        let n = self.n;
        let mut out = Vec::new();
        let rot = |out: &mut Vec<CliffordGate>, q: usize, k: u8, is_ry: bool| {
            assert!(k < 4, "gene {k} out of range");
            let g = if is_ry {
                CliffordGate::ry_quarter(q, k)
            } else {
                CliffordGate::rz_quarter(q, k)
            };
            out.extend(g);
        };
        for (q, &k) in genes[..n].iter().enumerate() {
            rot(&mut out, q, k, true);
        }
        for (q, &k) in genes[n..2 * n].iter().enumerate() {
            rot(&mut out, q, k, false);
        }
        for (j, &(a, b)) in self.pairs.iter().enumerate() {
            match genes[2 * n + j] {
                0 => {}
                1 => out.push(CliffordGate::Cx(a, b)),
                2 => out.push(CliffordGate::Cx(b, a)),
                3 => out.push(CliffordGate::Swap(a, b)),
                g => panic!("two-qubit gene {g} out of range"),
            }
        }
        let base = 2 * n + self.pairs.len();
        for q in 0..n {
            rot(&mut out, q, genes[base + q], true);
        }
        for q in 0..n {
            rot(&mut out, q, genes[base + n + q], false);
        }
        out
    }

    /// Builds the same ansatz as a [`Circuit`] (for simulators that consume
    /// the parametric IR).
    pub fn circuit(&self, genes: &[u8]) -> Circuit {
        let mut c = Circuit::new(self.n);
        for g in self.gates(genes) {
            let gate = match g {
                CliffordGate::SqrtY(q) => Gate::Ry(q, CLIFFORD_ANGLES[1]),
                CliffordGate::Y(q) => Gate::Ry(q, CLIFFORD_ANGLES[2]),
                CliffordGate::SqrtYdg(q) => Gate::Ry(q, CLIFFORD_ANGLES[3]),
                CliffordGate::S(q) => Gate::Rz(q, CLIFFORD_ANGLES[1]),
                CliffordGate::Z(q) => Gate::Rz(q, CLIFFORD_ANGLES[2]),
                CliffordGate::Sdg(q) => Gate::Rz(q, CLIFFORD_ANGLES[3]),
                CliffordGate::Cx(c_, t) => Gate::Cx(c_, t),
                CliffordGate::Swap(a, b) => Gate::Swap(a, b),
                other => unreachable!("ansatz produced unexpected gate {other}"),
            };
            c.push(gate);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_stabilizer::StabilizerState;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parameter_count_is_4n() {
        for n in 1..8 {
            assert_eq!(HardwareEfficientAnsatz::new(n).num_parameters(), 4 * n);
        }
    }

    #[test]
    fn entangling_ring_shapes() {
        assert_eq!(HardwareEfficientAnsatz::new(1).entangling_pairs(), vec![]);
        assert_eq!(
            HardwareEfficientAnsatz::new(2).entangling_pairs(),
            vec![(0, 1)]
        );
        assert_eq!(
            HardwareEfficientAnsatz::new(4).entangling_pairs(),
            vec![(0, 1), (1, 2), (2, 3), (3, 0)]
        );
    }

    #[test]
    fn zero_point_keeps_all_zeros_state() {
        // A(0)|0⟩ = |0⟩ (§4.2.1): every Z expectation stays +1.
        for n in [2, 3, 5] {
            let ansatz = HardwareEfficientAnsatz::new(n);
            let gates = ansatz.circuit_at_zero().to_clifford().unwrap();
            let mut st = StabilizerState::new(n);
            st.apply_all(&gates);
            for q in 0..n {
                let z = clapton_pauli::PauliString::single(n, q, clapton_pauli::Pauli::Z);
                assert_eq!(st.expectation(&z), 1.0, "qubit {q} left |0⟩");
            }
        }
    }

    #[test]
    fn clifford_indices_give_clifford_circuit() {
        let mut rng = StdRng::seed_from_u64(3);
        let ansatz = HardwareEfficientAnsatz::new(4);
        for _ in 0..10 {
            let idx: Vec<u8> = (0..ansatz.num_parameters())
                .map(|_| rng.gen_range(0..4))
                .collect();
            let c = ansatz.circuit(&ansatz.angles_from_indices(&idx));
            assert!(c.is_clifford());
        }
        // Generic angles are not Clifford.
        let mut theta = vec![0.0; 16];
        theta[3] = 0.123;
        assert!(!ansatz.circuit(&theta).is_clifford());
    }

    #[test]
    fn transformation_genome_length_is_5n_for_rings() {
        for n in 3..8 {
            assert_eq!(TransformationAnsatz::new(n).num_genes(), 5 * n);
        }
        // N = 2 has a single pair.
        assert_eq!(TransformationAnsatz::new(2).num_genes(), 9);
    }

    #[test]
    fn two_qubit_slots_decode_eq_8() {
        let ansatz = TransformationAnsatz::new(3);
        let mut genes = vec![0u8; ansatz.num_genes()];
        // slots are genes[6..9] for pairs (0,1),(1,2),(2,0)
        genes[6] = 1;
        genes[7] = 2;
        genes[8] = 3;
        let gates = ansatz.gates(&genes);
        assert_eq!(
            gates,
            vec![
                CliffordGate::Cx(0, 1),
                CliffordGate::Cx(2, 1),
                CliffordGate::Swap(2, 0),
            ]
        );
    }

    #[test]
    fn rotation_genes_decode_quarter_turns() {
        let ansatz = TransformationAnsatz::new(2);
        let mut genes = vec![0u8; ansatz.num_genes()];
        genes[0] = 1; // Ry(π/2) on qubit 0 → SqrtY
        genes[3] = 2; // Rz(π) on qubit 1 → Z
        let gates = ansatz.gates(&genes);
        assert_eq!(gates, vec![CliffordGate::SqrtY(0), CliffordGate::Z(1)]);
    }

    #[test]
    fn circuit_and_gates_agree() {
        let mut rng = StdRng::seed_from_u64(17);
        let ansatz = TransformationAnsatz::new(4);
        for _ in 0..10 {
            let genes: Vec<u8> = (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4))
                .collect();
            let via_circuit = ansatz.circuit(&genes).to_clifford().unwrap();
            assert_eq!(via_circuit, ansatz.gates(&genes));
        }
    }

    #[test]
    fn with_pairs_respects_custom_layout() {
        let ansatz = TransformationAnsatz::with_pairs(4, vec![(0, 2), (1, 3)]);
        assert_eq!(ansatz.num_genes(), 18);
        assert_eq!(ansatz.pairs(), &[(0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "invalid pair")]
    fn with_pairs_rejects_degenerate() {
        TransformationAnsatz::with_pairs(3, vec![(1, 1)]);
    }
}
