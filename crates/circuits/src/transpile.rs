//! Mapping and SWAP routing onto restricted device topologies (§5.2.2).

use crate::{Circuit, CouplingMap, Gate};

/// The result of transpiling a logical circuit onto a device.
///
/// The transpiled circuit acts on *physical* qubit indices and respects the
/// coupling map. `initial_layout[l]` / `final_layout[l]` give the physical
/// qubit holding logical qubit `l` before / after execution (routing SWAPs
/// permute the assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct TranspiledCircuit {
    /// The routed circuit over physical qubits.
    pub circuit: Circuit,
    /// Physical location of each logical qubit at circuit start.
    pub initial_layout: Vec<usize>,
    /// Physical location of each logical qubit at circuit end.
    pub final_layout: Vec<usize>,
}

impl TranspiledCircuit {
    /// Number of SWAPs inserted by routing (total SWAP count minus any SWAPs
    /// present in the logical circuit is the routing overhead).
    pub fn swap_count(&self) -> usize {
        self.circuit
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Swap(..)))
            .count()
    }
}

/// Transpiles `logical` onto `coupling`: chooses a line layout for the
/// logical register and greedily inserts SWAPs so every two-qubit gate acts
/// on adjacent physical qubits.
///
/// The layout strategy matches how the paper's circular ansatz is deployed:
/// the logical chain `0-1-…-(N-1)` is embedded on a simple path of the device
/// (so the linear part of the ring is SWAP-free) and only the wrap-around
/// interaction pays routing cost.
///
/// # Errors
///
/// Returns an error string if the device has fewer qubits than the circuit
/// or no line embedding is found.
pub fn transpile(logical: &Circuit, coupling: &CouplingMap) -> Result<TranspiledCircuit, String> {
    let n = logical.num_qubits();
    if coupling.num_qubits() < n {
        return Err(format!(
            "device has {} qubits, circuit needs {n}",
            coupling.num_qubits()
        ));
    }
    let layout = chain_layout(coupling, n)?;
    Ok(route_with_layout(logical, coupling, &layout))
}

/// Chooses physical locations for a logical chain `0-1-…-(n-1)`: the longest
/// simple path available, extended qubit by qubit onto the nearest free
/// neighbors when the device (like `nairobi`, whose graph has four leaves)
/// admits no full-length line.
///
/// # Errors
///
/// Returns an error if the device is too small or disconnected around the
/// chosen region.
pub fn chain_layout(coupling: &CouplingMap, n: usize) -> Result<Vec<usize>, String> {
    if coupling.num_qubits() < n {
        return Err(format!(
            "device has {} qubits, need {n}",
            coupling.num_qubits()
        ));
    }
    if let Some(line) = coupling.find_line(n) {
        return Ok(line);
    }
    // Best effort: longest line below n, then attach remaining logical
    // qubits to the free physical qubit closest (BFS) to the chain tail.
    let mut line = Vec::new();
    for len in (1..n).rev() {
        if let Some(l) = coupling.find_line(len) {
            line = l;
            break;
        }
    }
    if line.is_empty() {
        return Err("coupling map has no edges to host a chain".to_string());
    }
    let mut used: Vec<bool> = vec![false; coupling.num_qubits()];
    for &p in &line {
        used[p] = true;
    }
    while line.len() < n {
        let tail = *line.last().expect("line non-empty");
        // BFS from the tail to the nearest free qubit.
        let mut prev = vec![usize::MAX; coupling.num_qubits()];
        let mut queue = std::collections::VecDeque::from([tail]);
        prev[tail] = tail;
        let mut found = None;
        while let Some(u) = queue.pop_front() {
            for v in coupling.neighbors(u) {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if !used[v] {
                        found = Some(v);
                        queue.clear();
                        break;
                    }
                    queue.push_back(v);
                }
            }
        }
        let next = found
            .ok_or_else(|| format!("coupling map disconnected: cannot extend chain past {tail}"))?;
        used[next] = true;
        line.push(next);
    }
    Ok(line)
}

/// Routes `logical` with the given initial layout (`layout[l]` = physical
/// qubit of logical `l`).
///
/// # Panics
///
/// Panics if the layout length differs from the register size, or a routing
/// path does not exist (disconnected coupling map).
pub fn route_with_layout(
    logical: &Circuit,
    coupling: &CouplingMap,
    layout: &[usize],
) -> TranspiledCircuit {
    assert_eq!(layout.len(), logical.num_qubits(), "layout size");
    let phys_n = coupling.num_qubits();
    // log2phys[l] = physical qubit; phys2log[p] = logical qubit or MAX.
    let mut log2phys = layout.to_vec();
    let mut phys2log = vec![usize::MAX; phys_n];
    for (l, &p) in log2phys.iter().enumerate() {
        assert!(p < phys_n, "layout target {p} out of range");
        assert!(phys2log[p] == usize::MAX, "duplicate layout target {p}");
        phys2log[p] = l;
    }
    let mut out = Circuit::new(phys_n);
    let swap_phys = |out: &mut Circuit,
                     log2phys: &mut Vec<usize>,
                     phys2log: &mut Vec<usize>,
                     a: usize,
                     b: usize| {
        out.push(Gate::Swap(a, b));
        let (la, lb) = (phys2log[a], phys2log[b]);
        if la != usize::MAX {
            log2phys[la] = b;
        }
        if lb != usize::MAX {
            log2phys[lb] = a;
        }
        phys2log.swap(a, b);
    };
    for gate in logical.gates() {
        match *gate {
            g if !g.is_two_qubit() => {
                let q = g.qubits()[0];
                out.push(g.map_qubits(|_| log2phys[q]));
            }
            g => {
                let qs = g.qubits();
                let (la, lb) = (qs[0], qs[1]);
                let (mut pa, pb) = (log2phys[la], log2phys[lb]);
                if !coupling.are_adjacent(pa, pb) {
                    let path = coupling
                        .shortest_path(pa, pb)
                        .expect("coupling map must be connected for routing");
                    // Walk logical qubit `la` along the path until adjacent.
                    for hop in path.windows(2).take(path.len().saturating_sub(2)) {
                        swap_phys(&mut out, &mut log2phys, &mut phys2log, hop[0], hop[1]);
                    }
                    pa = log2phys[la];
                }
                debug_assert!(coupling.are_adjacent(pa, log2phys[lb]));
                let (fa, fb) = (log2phys[la], log2phys[lb]);
                out.push(g.map_qubits(|q| if q == la { fa } else { fb }));
            }
        }
    }
    TranspiledCircuit {
        circuit: out,
        initial_layout: layout.to_vec(),
        final_layout: log2phys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HardwareEfficientAnsatz;

    fn respects_coupling(c: &Circuit, m: &CouplingMap) -> bool {
        c.gates().iter().all(|g| {
            if g.is_two_qubit() {
                let q = g.qubits();
                m.are_adjacent(q[0], q[1])
            } else {
                true
            }
        })
    }

    #[test]
    fn adjacent_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        let m = CouplingMap::line(3);
        let t = transpile(&c, &m).unwrap();
        assert_eq!(t.swap_count(), 0);
        assert!(respects_coupling(&t.circuit, &m));
        assert_eq!(t.initial_layout, t.final_layout);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 3));
        let m = CouplingMap::line(4);
        let line: Vec<usize> = vec![0, 1, 2, 3];
        let t = route_with_layout(&c, &m, &line);
        assert!(t.swap_count() >= 2, "needs ≥2 SWAPs on a 4-line");
        assert!(respects_coupling(&t.circuit, &m));
        // Logical qubits moved: final layout differs.
        assert_ne!(t.initial_layout, t.final_layout);
    }

    #[test]
    fn circular_ansatz_on_line_routes_only_the_wrap() {
        let ansatz = HardwareEfficientAnsatz::new(5);
        let c = ansatz.circuit_at_zero();
        let m = CouplingMap::line(5);
        let t = transpile(&c, &m).unwrap();
        assert!(respects_coupling(&t.circuit, &m));
        // 4 chain CXs are free; the 5th (wrap-around 4→0) needs 3 SWAPs.
        assert_eq!(t.swap_count(), 3);
        assert_eq!(
            t.circuit
                .gates()
                .iter()
                .filter(|g| matches!(g, Gate::Cx(..)))
                .count(),
            5
        );
    }

    #[test]
    fn single_qubit_gates_follow_layout() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        let m = CouplingMap::line(4);
        let t = route_with_layout(&c, &m, &[2, 3]);
        assert_eq!(t.circuit.gates(), &[Gate::H(2), Gate::H(3)]);
    }

    #[test]
    fn chain_layout_handles_graphs_without_hamiltonian_paths() {
        // A star graph: center 0, leaves 1..4. No line of length 5 exists,
        // but the chain layout must still place all five logical qubits.
        let m = CouplingMap::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(m.find_line(5), None);
        let layout = chain_layout(&m, 5).unwrap();
        assert_eq!(layout.len(), 5);
        let mut sorted = layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        // Routing a ring ansatz over it must still respect the topology.
        let c = HardwareEfficientAnsatz::new(5).circuit_at_zero();
        let t = route_with_layout(&c, &m, &layout);
        assert!(respects_coupling(&t.circuit, &m));
    }

    #[test]
    fn too_small_device_is_an_error() {
        let c = Circuit::new(5);
        let m = CouplingMap::line(3);
        assert!(transpile(&c, &m).is_err());
    }

    #[test]
    fn routing_tracks_layout_consistently() {
        // After routing, re-running each two-qubit gate through the final
        // layouts should be consistent: check via a fresh route of an empty
        // suffix (sanity of the permutation bookkeeping).
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 3));
        c.push(Gate::Cx(0, 3)); // second time: qubits now closer
        let m = CouplingMap::line(4);
        let t = route_with_layout(&c, &m, &[0, 1, 2, 3]);
        assert!(respects_coupling(&t.circuit, &m));
        // Layout is a permutation.
        let mut sorted = t.final_layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        // Second CX should be cheaper than the first: total swaps < 2×3.
        assert!(t.swap_count() < 6);
    }
}
