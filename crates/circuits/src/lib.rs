//! Circuit infrastructure for the Clapton reproduction: the Qiskit substitute.
//!
//! Provides
//!
//! * [`Gate`] / [`Circuit`] — a small parametric circuit IR whose gates lower
//!   to [`clapton_stabilizer::CliffordGate`]s whenever every rotation angle is
//!   a multiple of `π/2`,
//! * [`HardwareEfficientAnsatz`] — the paper's circular hardware-efficient
//!   VQE ansatz `A(θ)` with `d = 4N` parameters (§4),
//! * [`TransformationAnsatz`] — Clapton's Clifford transformation ansatz
//!   `C(γ)` with the four-valued two-qubit slots of Eq. 8,
//! * [`CouplingMap`] / [`transpile`] — device topologies and a greedy
//!   SWAP-insertion router (the transpilation step of §5.2.2),
//! * [`Circuit::moments`] — ASAP scheduling used by the density-matrix
//!   simulator to model thermal relaxation on idle qubits.

mod ansatz;
mod circuit;
mod coupling;
mod transpile;

pub use ansatz::{HardwareEfficientAnsatz, TransformationAnsatz, CLIFFORD_ANGLES};
pub use circuit::{Circuit, Gate};
pub use coupling::CouplingMap;
pub use transpile::{chain_layout, route_with_layout, transpile, TranspiledCircuit};
