//! Parametric gate and circuit IR.

use clapton_stabilizer::CliffordGate;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// A quantum gate in the parametric IR.
///
/// Rotations carry arbitrary angles; [`Gate::to_clifford`] succeeds when the
/// angle is a multiple of `π/2` (the Clifford points `{0, π/2, π, 3π/2}` the
/// paper searches over).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Y-rotation by an angle in radians.
    Ry(usize, f64),
    /// Z-rotation by an angle in radians.
    Rz(usize, f64),
    /// Hadamard.
    H(usize),
    /// Phase gate `S`.
    S(usize),
    /// Inverse phase gate `S†`.
    Sdg(usize),
    /// Pauli X.
    X(usize),
    /// Controlled-NOT (control, target).
    Cx(usize, usize),
    /// SWAP.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::X(q) => vec![q],
            Gate::Cx(a, b) | Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Whether this is a two-qubit gate.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx(..) | Gate::Swap(..))
    }

    /// Whether the gate is (numerically) the identity, e.g. `Ry(0)`.
    pub fn is_identity(&self) -> bool {
        match *self {
            Gate::Ry(_, a) | Gate::Rz(_, a) => quarter_index(a) == Some(0),
            _ => false,
        }
    }

    /// Lowers the gate to Clifford gates if possible (`None` if the rotation
    /// angle is not a multiple of `π/2`). Identity rotations lower to an
    /// empty list.
    pub fn to_clifford(&self) -> Option<Vec<CliffordGate>> {
        match *self {
            Gate::Ry(q, a) => {
                let k = quarter_index(a)?;
                Some(CliffordGate::ry_quarter(q, k).into_iter().collect())
            }
            Gate::Rz(q, a) => {
                let k = quarter_index(a)?;
                Some(CliffordGate::rz_quarter(q, k).into_iter().collect())
            }
            Gate::H(q) => Some(vec![CliffordGate::H(q)]),
            Gate::S(q) => Some(vec![CliffordGate::S(q)]),
            Gate::Sdg(q) => Some(vec![CliffordGate::Sdg(q)]),
            Gate::X(q) => Some(vec![CliffordGate::X(q)]),
            Gate::Cx(c, t) => Some(vec![CliffordGate::Cx(c, t)]),
            Gate::Swap(a, b) => Some(vec![CliffordGate::Swap(a, b)]),
        }
    }

    /// The inverse gate (`Ry(-θ)`, `S ↔ S†`, self-inverse otherwise).
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Ry(q, a) => Gate::Ry(q, -a),
            Gate::Rz(q, a) => Gate::Rz(q, -a),
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            g => g,
        }
    }

    /// Remaps qubit indices through `f`.
    #[must_use]
    pub fn map_qubits<F: Fn(usize) -> usize>(&self, f: F) -> Gate {
        match *self {
            Gate::Ry(q, a) => Gate::Ry(f(q), a),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Cx(c, t) => Gate::Cx(f(c), f(t)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }
}

/// Maps an angle to its quarter-turn index `k` with `a ≡ k·π/2 (mod 2π)`,
/// or `None` if the angle is not a multiple of `π/2` (tolerance `1e-9`).
pub(crate) fn quarter_index(a: f64) -> Option<u8> {
    let turns = a / FRAC_PI_2;
    let rounded = turns.round();
    if (turns - rounded).abs() < 1e-9 {
        Some((rounded.rem_euclid(4.0)) as u8 % 4)
    } else {
        None
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Ry(q, a) => write!(f, "Ry({a:.4}) q{q}"),
            Gate::Rz(q, a) => write!(f, "Rz({a:.4}) q{q}"),
            Gate::H(q) => write!(f, "H q{q}"),
            Gate::S(q) => write!(f, "S q{q}"),
            Gate::Sdg(q) => write!(f, "S† q{q}"),
            Gate::X(q) => write!(f, "X q{q}"),
            Gate::Cx(c, t) => write!(f, "CX q{c}→q{t}"),
            Gate::Swap(a, b) => write!(f, "SWAP q{a}↔q{b}"),
        }
    }
}

/// An ordered list of gates on a fixed qubit register.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// assert_eq!(c.depth(), 2);
/// assert!(c.is_clifford());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit on `n` qubits.
    pub fn new(n: usize) -> Circuit {
        Circuit {
            num_qubits: n,
            gates: Vec::new(),
        }
    }

    /// The register size.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register.
    pub fn push(&mut self, gate: Gate) {
        for q in gate.qubits() {
            assert!(
                q < self.num_qubits,
                "gate {gate} touches qubit {q}, register has {}",
                self.num_qubits
            );
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other` (registers must match).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn append(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "register size mismatch");
        self.gates.extend_from_slice(&other.gates);
    }

    /// Number of two-qubit gates.
    pub fn count_two_qubit(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    pub fn count_single_qubit(&self) -> usize {
        self.len() - self.count_two_qubit()
    }

    /// Whether every gate lowers to Cliffords.
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(|g| g.to_clifford().is_some())
    }

    /// Lowers the whole circuit to a Clifford gate sequence, or `None` if any
    /// rotation is off the Clifford grid. Identity rotations are dropped.
    pub fn to_clifford(&self) -> Option<Vec<CliffordGate>> {
        let mut out = Vec::with_capacity(self.len());
        for g in &self.gates {
            out.extend(g.to_clifford()?);
        }
        Some(out)
    }

    /// ASAP-schedules the circuit into moments: each moment is a set of gate
    /// indices acting on disjoint qubits, placed at the earliest layer where
    /// all their qubits are free.
    ///
    /// Used for thermal-relaxation modeling: all qubits (busy or idle) decay
    /// for each moment's duration.
    pub fn moments(&self) -> Vec<Vec<usize>> {
        let mut qubit_free_at = vec![0usize; self.num_qubits];
        let mut moments: Vec<Vec<usize>> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            let layer = g
                .qubits()
                .iter()
                .map(|&q| qubit_free_at[q])
                .max()
                .unwrap_or(0);
            if layer >= moments.len() {
                moments.resize_with(layer + 1, Vec::new);
            }
            moments[layer].push(i);
            for q in g.qubits() {
                qubit_free_at[q] = layer + 1;
            }
        }
        moments
    }

    /// Circuit depth (number of moments).
    pub fn depth(&self) -> usize {
        self.moments().len()
    }

    /// The inverse circuit: gates reversed and individually inverted, so
    /// `c.inverse()` undoes `c` exactly.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Unitary folding for zero-noise extrapolation: `C (C† C)^k` has the
    /// same unitary as `C` but `2k+1` times the gate count, scaling the
    /// physical noise by an odd factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is even or zero.
    #[must_use]
    pub fn folded(&self, scale: usize) -> Circuit {
        assert!(scale % 2 == 1, "folding scale must be odd, got {scale}");
        let k = (scale - 1) / 2;
        let mut out = self.clone();
        let inv = self.inverse();
        for _ in 0..k {
            out.append(&inv);
            out.append(self);
        }
        out
    }

    /// Remaps all qubit indices through `f` into a register of `new_n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if any remapped index is out of range.
    #[must_use]
    pub fn map_qubits<F: Fn(usize) -> usize>(&self, new_n: usize, f: F) -> Circuit {
        let mut out = Circuit::new(new_n);
        for g in &self.gates {
            out.push(g.map_qubits(&f));
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn quarter_index_detects_clifford_angles() {
        assert_eq!(quarter_index(0.0), Some(0));
        assert_eq!(quarter_index(FRAC_PI_2), Some(1));
        assert_eq!(quarter_index(PI), Some(2));
        assert_eq!(quarter_index(3.0 * FRAC_PI_2), Some(3));
        assert_eq!(quarter_index(2.0 * PI), Some(0));
        assert_eq!(quarter_index(-FRAC_PI_2), Some(3));
        assert_eq!(quarter_index(0.3), None);
    }

    #[test]
    fn gate_lowering() {
        assert_eq!(Gate::Ry(0, 0.0).to_clifford(), Some(vec![]));
        assert_eq!(
            Gate::Ry(1, FRAC_PI_2).to_clifford(),
            Some(vec![CliffordGate::SqrtY(1)])
        );
        assert_eq!(
            Gate::Rz(2, PI).to_clifford(),
            Some(vec![CliffordGate::Z(2)])
        );
        assert_eq!(Gate::Ry(0, 0.7).to_clifford(), None);
        assert_eq!(
            Gate::Cx(0, 1).to_clifford(),
            Some(vec![CliffordGate::Cx(0, 1)])
        );
    }

    #[test]
    fn circuit_push_and_counts() {
        let mut c = Circuit::new(3);
        c.push(Gate::Ry(0, 0.1));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Swap(1, 2));
        assert_eq!(c.len(), 3);
        assert_eq!(c.count_two_qubit(), 2);
        assert_eq!(c.count_single_qubit(), 1);
        assert!(!c.is_clifford());
    }

    #[test]
    #[should_panic(expected = "touches qubit 5")]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(5));
    }

    #[test]
    fn moments_pack_disjoint_gates() {
        let mut c = Circuit::new(4);
        c.push(Gate::H(0)); // moment 0
        c.push(Gate::H(1)); // moment 0
        c.push(Gate::Cx(0, 1)); // moment 1
        c.push(Gate::H(2)); // moment 0
        c.push(Gate::Cx(2, 3)); // moment 1
        c.push(Gate::Cx(1, 2)); // moment 2
        let m = c.moments();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![0, 1, 3]);
        assert_eq!(m[1], vec![2, 4]);
        assert_eq!(m[2], vec![5]);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn empty_circuit_has_zero_depth() {
        assert_eq!(Circuit::new(3).depth(), 0);
        assert!(Circuit::new(3).is_empty());
    }

    #[test]
    fn map_qubits_relabels() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let mapped = c.map_qubits(5, |q| q + 3);
        assert_eq!(mapped.gates()[0], Gate::Cx(3, 4));
        assert_eq!(mapped.num_qubits(), 5);
    }

    #[test]
    fn identity_rotation_detection() {
        assert!(Gate::Ry(0, 0.0).is_identity());
        assert!(Gate::Rz(0, 2.0 * PI).is_identity());
        assert!(!Gate::Ry(0, PI).is_identity());
        assert!(!Gate::H(0).is_identity());
    }

    #[test]
    fn gate_inverse_round_trips() {
        let gates = [
            Gate::Ry(0, 0.7),
            Gate::Rz(1, -1.2),
            Gate::S(0),
            Gate::Sdg(1),
            Gate::H(0),
            Gate::X(1),
            Gate::Cx(0, 1),
            Gate::Swap(0, 1),
        ];
        for g in gates {
            assert_eq!(g.inverse().inverse(), g);
        }
        assert_eq!(Gate::S(0).inverse(), Gate::Sdg(0));
        assert_eq!(Gate::Ry(2, 0.5).inverse(), Gate::Ry(2, -0.5));
    }

    #[test]
    fn circuit_inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::S(1));
        c.push(Gate::Cx(0, 1));
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Sdg(1), Gate::H(0)]);
    }

    #[test]
    fn folding_scales_gate_count() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        assert_eq!(c.folded(1).len(), 2);
        assert_eq!(c.folded(3).len(), 6);
        assert_eq!(c.folded(5).len(), 10);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn folding_rejects_even_scale() {
        let _ = Circuit::new(1).folded(2);
    }

    #[test]
    fn clifford_lowering_drops_identities() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.0));
        c.push(Gate::Rz(1, 0.0));
        c.push(Gate::Cx(0, 1));
        let cl = c.to_clifford().unwrap();
        assert_eq!(cl, vec![CliffordGate::Cx(0, 1)]);
    }
}
