//! Device coupling maps (qubit connectivity graphs).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An undirected qubit connectivity graph.
///
/// # Example
///
/// ```
/// use clapton_circuits::CouplingMap;
///
/// let line = CouplingMap::line(4);
/// assert!(line.are_adjacent(1, 2));
/// assert!(!line.are_adjacent(0, 3));
/// assert_eq!(line.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
}

impl CouplingMap {
    /// Creates a coupling map from an edge list. Edges are stored normalized
    /// (`a < b`) and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if an edge touches a qubit `>= num_qubits` or is a self-loop.
    pub fn new(num_qubits: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> CouplingMap {
        let mut normalized: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b, "self-loop on qubit {a}");
                assert!(
                    a < num_qubits && b < num_qubits,
                    "edge ({a},{b}) out of range"
                );
                (a.min(b), a.max(b))
            })
            .collect();
        normalized.sort_unstable();
        normalized.dedup();
        CouplingMap {
            num_qubits,
            edges: normalized,
        }
    }

    /// A 1D chain `0-1-…-(n-1)`.
    pub fn line(n: usize) -> CouplingMap {
        CouplingMap::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A ring `0-1-…-(n-1)-0`.
    pub fn ring(n: usize) -> CouplingMap {
        assert!(n >= 3, "ring needs at least 3 qubits");
        CouplingMap::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// All-to-all connectivity.
    pub fn full(n: usize) -> CouplingMap {
        CouplingMap::new(n, (0..n).flat_map(move |a| (a + 1..n).map(move |b| (a, b))))
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The normalized edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether two qubits share an edge.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.edges.binary_search(&key).is_ok()
    }

    /// The neighbors of a qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// BFS shortest path between two qubits (inclusive of endpoints), or
    /// `None` if disconnected.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut queue = VecDeque::from([from]);
        prev[from] = from;
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Searches for a simple path of `len` qubits (a line embedding) via
    /// depth-first search with a low-degree-first heuristic. Returns the
    /// physical qubits in path order, or `None` if the search fails.
    ///
    /// Heavy-hex devices admit long simple paths, so this is how logical
    /// chains are laid out before routing (§5.2.2).
    pub fn find_line(&self, len: usize) -> Option<Vec<usize>> {
        if len == 0 {
            return Some(vec![]);
        }
        if len > self.num_qubits {
            return None;
        }
        // Try starts in increasing-degree order: path endpoints are cheapest
        // at low-degree corners of the graph.
        let mut starts: Vec<usize> = (0..self.num_qubits).collect();
        starts.sort_by_key(|&q| self.neighbors(q).len());
        for start in starts {
            let mut visited = vec![false; self.num_qubits];
            let mut path = vec![start];
            visited[start] = true;
            if self.dfs_line(len, &mut path, &mut visited) {
                return Some(path);
            }
        }
        None
    }

    fn dfs_line(&self, len: usize, path: &mut Vec<usize>, visited: &mut Vec<bool>) -> bool {
        if path.len() == len {
            return true;
        }
        let last = *path.last().expect("path non-empty");
        let mut next: Vec<usize> = self
            .neighbors(last)
            .into_iter()
            .filter(|&v| !visited[v])
            .collect();
        // Prefer low-degree continuations to avoid stranding corners.
        next.sort_by_key(|&v| self.neighbors(v).iter().filter(|&&w| !visited[w]).count());
        for v in next {
            visited[v] = true;
            path.push(v);
            if self.dfs_line(len, path, visited) {
                return true;
            }
            path.pop();
            visited[v] = false;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_adjacency() {
        let m = CouplingMap::line(5);
        assert!(m.are_adjacent(0, 1));
        assert!(m.are_adjacent(4, 3));
        assert!(!m.are_adjacent(0, 2));
        assert_eq!(m.neighbors(2), vec![1, 3]);
        assert_eq!(m.neighbors(0), vec![1]);
    }

    #[test]
    fn ring_wraps() {
        let m = CouplingMap::ring(5);
        assert!(m.are_adjacent(4, 0));
        assert_eq!(m.edges().len(), 5);
    }

    #[test]
    fn full_graph() {
        let m = CouplingMap::full(4);
        assert_eq!(m.edges().len(), 6);
        assert!(m.are_adjacent(0, 3));
    }

    #[test]
    fn shortest_path_on_line() {
        let m = CouplingMap::line(6);
        assert_eq!(m.shortest_path(1, 4), Some(vec![1, 2, 3, 4]));
        assert_eq!(m.shortest_path(3, 3), Some(vec![3]));
    }

    #[test]
    fn shortest_path_disconnected() {
        let m = CouplingMap::new(4, vec![(0, 1), (2, 3)]);
        assert_eq!(m.shortest_path(0, 3), None);
    }

    #[test]
    fn find_line_on_grid() {
        // 2x3 grid: 0-1-2 / 3-4-5 with verticals.
        let m = CouplingMap::new(
            6,
            vec![(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)],
        );
        let line = m.find_line(6).expect("grid has a Hamiltonian path");
        assert_eq!(line.len(), 6);
        for w in line.windows(2) {
            assert!(m.are_adjacent(w[0], w[1]), "{w:?} not adjacent");
        }
        // All distinct.
        let mut sorted = line.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn find_line_too_long_fails() {
        assert_eq!(CouplingMap::line(3).find_line(4), None);
    }

    #[test]
    fn normalization_dedups_edges() {
        let m = CouplingMap::new(3, vec![(1, 0), (0, 1), (2, 1)]);
        assert_eq!(m.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        CouplingMap::new(3, vec![(1, 1)]);
    }
}
