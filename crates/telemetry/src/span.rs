//! Tracing spans: RAII guards with monotonic start/stop timestamps, parent
//! linkage through a thread-local context, and explicit context propagation
//! across thread boundaries (the worker pool captures the spawning thread's
//! context and installs it inside the task).
//!
//! Finished spans are routed by trace id: spans under a registered
//! [`Trace`] collect into that trace's bounded buffer (drained by
//! [`Trace::finish`]); everything else drains through a small per-thread
//! buffer into a bounded process-wide flight-recorder ring, so ambient
//! instrumentation can never grow without bound.

use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Spans a single trace will retain before dropping further records.
const TRACE_CAP: usize = 16 * 1024;
/// Finished spans the flight-recorder ring retains.
const RING_CAP: usize = 4096;
/// Per-thread buffered spans before a flush into the ring.
const LOCAL_FLUSH: usize = 64;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// One finished span.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (0: no registered trace; flight recorder).
    pub trace: u64,
    /// Process-unique span id (never 0).
    pub span: u64,
    /// Parent span id (0: root of its trace).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Process-local id of the thread the span ran on.
    pub thread: u64,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_unix_ns: u64,
    /// Monotonic start, nanoseconds since process telemetry epoch.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since process telemetry epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process telemetry epoch. Unaffected by
/// the enabled flag so protocol timestamps stay meaningful.
pub fn mono_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Wall-clock nanoseconds since the Unix epoch (0 when the clock is before
/// the epoch).
pub fn wall_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// The ambient (trace, parent-span) pair new spans attach to.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanContext {
    /// Trace id (0: none).
    pub trace: u64,
    /// Parent span id for the next child (0: root).
    pub parent: u64,
}

thread_local! {
    static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext { trace: 0, parent: 0 }) };
}

/// This thread's ambient span context (capture it before handing work to
/// another thread, then [`push_context`] it there).
pub fn current_context() -> SpanContext {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as this thread's ambient context until the guard drops.
pub fn push_context(ctx: SpanContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// Restores the previous ambient context on drop. Not `Send`: must drop on
/// the thread that created it.
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct ContextGuard {
    prev: SpanContext,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An in-flight span; records itself on drop. Inert (no allocation, no
/// clock reads) while telemetry is disabled.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    name: &'static str,
    restore: SpanContext,
    trace: u64,
    span: u64,
    parent: u64,
    start_unix_ns: u64,
    start_ns: u64,
}

/// Opens a span as a child of the ambient context and makes it the new
/// ambient parent until the guard drops.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            active: None,
            _not_send: PhantomData,
        };
    }
    let before = CURRENT.with(Cell::get);
    let id = next_span_id();
    CURRENT.with(|c| {
        c.set(SpanContext {
            trace: before.trace,
            parent: id,
        })
    });
    Span {
        active: Some(ActiveSpan {
            name,
            restore: before,
            trace: before.trace,
            span: id,
            parent: before.parent,
            start_unix_ns: wall_ns(),
            start_ns: mono_ns(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end_ns = mono_ns();
        CURRENT.with(|c| c.set(active.restore));
        record(SpanRecord {
            trace: active.trace,
            span: active.span,
            parent: active.parent,
            name: active.name.to_string(),
            thread: thread_id(),
            start_unix_ns: active.start_unix_ns,
            start_ns: active.start_ns,
            end_ns,
        });
    }
}

/// Records an already-finished interval (e.g. a scheduler round stitched
/// from callback timestamps) as a child of the ambient context. `start_ns`
/// and `end_ns` are [`mono_ns`] readings.
pub fn record_complete(name: &str, start_ns: u64, end_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let ctx = CURRENT.with(Cell::get);
    let now_mono = mono_ns();
    let start_unix_ns = wall_ns().saturating_sub(now_mono.saturating_sub(start_ns));
    record(SpanRecord {
        trace: ctx.trace,
        span: next_span_id(),
        parent: ctx.parent,
        name: name.to_string(),
        thread: thread_id(),
        start_unix_ns,
        start_ns,
        end_ns,
    });
}

struct TraceBuf {
    records: Mutex<Vec<SpanRecord>>,
}

impl TraceBuf {
    fn push(&self, rec: SpanRecord) {
        let mut records = lock(&self.records);
        if records.len() < TRACE_CAP {
            records.push(rec);
        }
    }
}

fn traces() -> &'static Mutex<HashMap<u64, Arc<TraceBuf>>> {
    static TRACES: OnceLock<Mutex<HashMap<u64, Arc<TraceBuf>>>> = OnceLock::new();
    TRACES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn flush_into_ring(buf: &mut Vec<SpanRecord>) {
    if buf.is_empty() {
        return;
    }
    let mut ring = lock(ring());
    for rec in buf.drain(..) {
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(rec);
    }
}

struct LocalBuf(RefCell<Vec<SpanRecord>>);

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_into_ring(&mut self.0.borrow_mut());
    }
}

thread_local! {
    static LOCAL: LocalBuf = const { LocalBuf(RefCell::new(Vec::new())) };
}

fn record(rec: SpanRecord) {
    if rec.trace != 0 {
        let buf = lock(traces()).get(&rec.trace).cloned();
        if let Some(buf) = buf {
            buf.push(rec);
            return;
        }
    }
    let _ = LOCAL.try_with(|local| {
        let mut buf = local.0.borrow_mut();
        buf.push(rec);
        if buf.len() >= LOCAL_FLUSH {
            flush_into_ring(&mut buf);
        }
    });
}

/// The most recent untraced spans retained by the flight-recorder ring
/// (records still sitting in per-thread buffers are not included).
pub fn flight_recorder_snapshot() -> Vec<SpanRecord> {
    lock(ring()).iter().cloned().collect()
}

/// A registered span collection. Spans created under this trace's context
/// (on any thread) collect into a bounded buffer until [`Trace::finish`].
#[derive(Debug)]
pub struct Trace {
    id: u64,
}

impl Trace {
    /// Registers a new trace with a fresh process-unique id.
    pub fn begin() -> Trace {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        lock(traces()).insert(
            id,
            Arc::new(TraceBuf {
                records: Mutex::new(Vec::new()),
            }),
        );
        Trace { id }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The context to install (via [`push_context`]) on threads that should
    /// collect into this trace.
    pub fn context(&self) -> SpanContext {
        SpanContext {
            trace: self.id,
            parent: 0,
        }
    }

    /// Deregisters the trace and returns its records sorted by start time.
    /// Spans still open when this is called are not included.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let buf = lock(traces()).remove(&self.id);
        let mut records = match buf {
            Some(buf) => std::mem::take(&mut *lock(&buf.records)),
            None => Vec::new(),
        };
        records.sort_by_key(|r| (r.start_ns, r.span));
        records
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        lock(traces()).remove(&self.id);
    }
}

/// One node of a reassembled span tree; children sorted by start time.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Span id.
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Thread the span ran on.
    pub thread: u64,
    /// Wall-clock start (ns since Unix epoch).
    pub start_unix_ns: u64,
    /// Monotonic start (ns).
    pub start_ns: u64,
    /// Monotonic end (ns).
    pub end_ns: u64,
    /// Child spans, sorted by `start_ns`.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Node duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Reassembles flat records into a forest. A record whose parent id is
/// absent from `records` becomes a root, so partial traces still render.
pub fn span_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    let known: HashMap<u64, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.span, i))
        .collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.parent != 0 && known.contains_key(&rec.parent) {
            children.entry(rec.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    fn build(idx: usize, records: &[SpanRecord], children: &HashMap<u64, Vec<usize>>) -> SpanNode {
        let rec = &records[idx];
        let mut kids: Vec<SpanNode> = children
            .get(&rec.span)
            .map(|ids| {
                ids.iter()
                    .map(|&child| build(child, records, children))
                    .collect()
            })
            .unwrap_or_default();
        kids.sort_by_key(|n| (n.start_ns, n.span));
        SpanNode {
            name: rec.name.clone(),
            span: rec.span,
            parent: rec.parent,
            thread: rec.thread,
            start_unix_ns: rec.start_unix_ns,
            start_ns: rec.start_ns,
            end_ns: rec.end_ns,
            children: kids,
        }
    }
    let mut forest: Vec<SpanNode> = roots
        .into_iter()
        .map(|idx| build(idx, records, &children))
        .collect();
    forest.sort_by_key(|n| (n.start_ns, n.span));
    forest
}

/// Serializes records as one JSON object per line (the `telemetry.jsonl`
/// artifact format).
pub fn to_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&serde_json::to_string(rec).expect("span record serializes"));
        out.push('\n');
    }
    out
}

/// Parses a `telemetry.jsonl` document back into records.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn from_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .enumerate()
        .map(|(i, line)| serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}
