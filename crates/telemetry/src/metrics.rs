//! Named counters, gauges, and fixed-bucket histograms behind a global
//! registry, rendered in the Prometheus text exposition format.
//!
//! Hot paths touch only atomics: a handle obtained once (typically cached in
//! a `OnceLock` by the instrumented crate) is an `Arc` around the atomic
//! cells, so updating a metric never takes the registry lock. The registry
//! mutex is held only while interning a new `(name, labels)` series or while
//! rendering `/metrics`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge. A no-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (compare-and-swap loop). A no-op while disabled.
    #[inline]
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut old = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => old = actual,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed upper bounds with Prometheus `le` semantics: an
/// observation `v` lands in the first bucket whose bound satisfies
/// `v <= bound`, so values exactly on a bucket edge count toward that edge's
/// bucket, and anything above the last bound lands in the implicit `+Inf`
/// overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One cell per bound plus the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation. A no-op while telemetry is disabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&bound| v <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut old = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => old = actual,
            }
        }
    }

    /// The configured upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), the `+Inf` overflow last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the canonical rendered label set so lookups and the
    /// exposition share one ordering.
    series: BTreeMap<String, (Vec<(String, String)>, Series)>,
}

/// A collection of metric families. Most callers use the process-wide
/// [`registry()`]; tests may build private instances.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

/// The process-wide registry rendered by `GET /metrics`.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// An empty registry (for tests; production code uses [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Interns an unlabelled counter.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Interns a counter with the given label pairs.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let series = self.intern(name, help, labels, MetricKind::Counter, || {
            Series::Counter(Arc::new(Counter::default()))
        });
        match series {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked by intern"),
        }
    }

    /// Interns an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Interns a gauge with the given label pairs.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let series = self.intern(name, help, labels, MetricKind::Gauge, || {
            Series::Gauge(Arc::new(Gauge::default()))
        });
        match series {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked by intern"),
        }
    }

    /// Interns an unlabelled histogram over `bounds` (ignored when the
    /// series already exists).
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Interns a histogram with the given label pairs.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let series = self.intern(name, help, labels, MetricKind::Histogram, || {
            Series::Histogram(Arc::new(Histogram::new(bounds)))
        });
        match series {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked by intern"),
        }
    }

    fn intern(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let key = label_key(&sorted);
        let mut families = lock(&self.families);
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| (sorted, make()))
            .1
            .clone()
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let families = lock(&self.families);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, series) in family.series.values() {
                match series {
                    Series::Counter(c) => {
                        render_sample(&mut out, name, labels, c.get() as f64);
                    }
                    Series::Gauge(g) => {
                        render_sample(&mut out, name, labels, g.get());
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        let bucket_name = format!("{name}_bucket");
                        for (i, bound) in h.bounds().iter().enumerate() {
                            cumulative += counts[i];
                            let mut with_le = labels.clone();
                            with_le.push(("le".to_string(), format_value(*bound)));
                            render_sample(&mut out, &bucket_name, &with_le, cumulative as f64);
                        }
                        cumulative += counts.last().copied().unwrap_or(0);
                        let mut with_le = labels.clone();
                        with_le.push(("le".to_string(), "+Inf".to_string()));
                        render_sample(&mut out, &bucket_name, &with_le, cumulative as f64);
                        render_sample(&mut out, &format!("{name}_sum"), labels, h.sum());
                        render_sample(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            cumulative as f64,
                        );
                    }
                }
            }
        }
        out
    }
}

fn label_key(labels: &[(String, String)]) -> String {
    let mut key = String::new();
    for (k, v) in labels {
        key.push_str(k);
        key.push('\u{1}');
        key.push_str(v);
        key.push('\u{2}');
    }
    key
}

fn render_sample(out: &mut String, name: &str, labels: &[(String, String)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(value));
    out.push('\n');
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (for histograms: `<family>_bucket`, `<family>_sum`, ...).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition format into flat samples. Comment and
/// blank lines are skipped; malformed lines are an error.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(
            parse_sample(line).map_err(|why| format!("line {}: {why}: {line:?}", lineno + 1))?,
        );
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            let name = &line[..open];
            let labels = parse_labels(&line[open + 1..close])?;
            ((name, labels), line[close + 1..].trim())
        }
        None => {
            let (name, value) = line
                .split_once(char::is_whitespace)
                .ok_or("missing value")?;
            ((name, Vec::new()), value.trim())
        }
    };
    let (name, labels) = name_and_labels;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("invalid value {other:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("label value is not quoted".to_string()),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}
