//! Zero-dependency observability core for the Clapton stack: tracing spans
//! with cross-thread parent linkage, and a metrics registry of counters,
//! gauges, and fixed-bucket histograms rendered in the Prometheus text
//! exposition format.
//!
//! Two off switches exist. At runtime, [`set_enabled`]`(false)` turns every
//! span constructor and metric update into a single relaxed atomic load; the
//! `noop` cargo feature additionally compiles the flag check down to a
//! constant `false` so the whole layer folds away. Clock helpers
//! ([`mono_ns`], [`wall_ns`]) ignore both switches because protocol
//! timestamps (e.g. SSE event frames) must stay meaningful regardless.

pub mod metrics;
pub mod span;

pub use metrics::{parse_text, registry, Counter, Gauge, Histogram, Registry, Sample};
pub use span::{
    current_context, flight_recorder_snapshot, from_jsonl, mono_ns, push_context, record_complete,
    span, span_tree, to_jsonl, wall_ns, ContextGuard, Span, SpanContext, SpanNode, SpanRecord,
    Trace,
};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently active. Always `false` under
/// the `noop` feature.
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "noop") && ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that rely on the process-wide enabled flag.
    fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nested_spans_link_to_their_parents() {
        let _gate = exclusive();
        let trace = Trace::begin();
        {
            let _ctx = push_context(trace.context());
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let records = trace.finish();
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(outer.trace, trace.id());
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn context_guard_restores_previous_context() {
        let _gate = exclusive();
        let before = current_context();
        let trace = Trace::begin();
        {
            let _ctx = push_context(trace.context());
            assert_eq!(current_context().trace, trace.id());
        }
        assert_eq!(current_context(), before);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = exclusive();
        let trace = Trace::begin();
        set_enabled(false);
        {
            let _ctx = push_context(trace.context());
            let _span = span("invisible");
        }
        set_enabled(true);
        assert!(trace.finish().is_empty());
    }

    #[test]
    fn record_complete_attaches_to_ambient_parent() {
        let _gate = exclusive();
        let trace = Trace::begin();
        {
            let _ctx = push_context(trace.context());
            let _outer = span("outer");
            let start = mono_ns();
            record_complete("round", start, mono_ns());
        }
        let records = trace.finish();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let round = records.iter().find(|r| r.name == "round").unwrap();
        assert_eq!(round.parent, outer.span);
    }

    #[test]
    fn span_records_round_trip_through_jsonl() {
        let _gate = exclusive();
        let trace = Trace::begin();
        {
            let _ctx = push_context(trace.context());
            let _a = span("a");
            let _b = span("b");
        }
        let records = trace.finish();
        let parsed = from_jsonl(&to_jsonl(&records)).expect("jsonl parses");
        assert_eq!(parsed, records);
        assert_eq!(span_tree(&parsed), span_tree(&records));
    }
}
