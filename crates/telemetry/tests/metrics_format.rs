//! Metrics-registry contract tests: exact bucket-edge semantics and a
//! strict Prometheus text-format parser (written here, independent of the
//! crate's own lenient parser) that the rendered exposition must round-trip.

use clapton_telemetry::Registry;
use std::collections::HashMap;

#[test]
fn histogram_bucket_edges_are_exact() {
    let registry = Registry::new();
    let h = registry.histogram("edges", "edge semantics", &[1.0, 2.0, 5.0]);
    // `le` semantics: a value exactly on a bound belongs to that bound's
    // bucket; the first value above the last bound is `+Inf`-only.
    h.observe(1.0);
    h.observe(f64::from_bits(1.0f64.to_bits() + 1)); // next float above 1.0
    h.observe(2.0);
    h.observe(5.0);
    h.observe(f64::from_bits(5.0f64.to_bits() + 1));
    h.observe(0.0);
    assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
    assert_eq!(h.count(), 6);
    let expected_sum = 1.0
        + f64::from_bits(1.0f64.to_bits() + 1)
        + 2.0
        + 5.0
        + f64::from_bits(5.0f64.to_bits() + 1);
    assert!((h.sum() - expected_sum).abs() < 1e-12);
}

#[test]
fn histogram_overflow_only_when_above_last_bound() {
    let registry = Registry::new();
    let h = registry.histogram("overflow", "overflow bucket", &[10.0]);
    h.observe(10.0);
    assert_eq!(h.bucket_counts(), vec![1, 0], "10.0 <= 10.0 is in-bounds");
    h.observe(10.000001);
    assert_eq!(h.bucket_counts(), vec![1, 1]);
}

/// A strict Prometheus text-format parser: every non-comment line must be
/// `name[{label="value",...}] value`, every sample must be preceded by
/// matching `# HELP` and `# TYPE` lines for its family, metric names must be
/// valid identifiers, and histogram families must satisfy the cumulative
/// bucket / `_sum` / `_count` invariants.
mod strict {
    use std::collections::BTreeMap;

    /// One parsed sample: `(full name, labels, value)`.
    pub type Sample = (String, Vec<(String, String)>, f64);

    #[derive(Debug, Default)]
    pub struct Familie {
        pub kind: String,
        pub samples: Vec<Sample>,
    }

    pub fn parse(text: &str) -> Result<BTreeMap<String, Familie>, String> {
        let mut families: BTreeMap<String, Familie> = BTreeMap::new();
        let mut helped: Vec<String> = Vec::new();
        let mut typed: Vec<String> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let err = |why: &str| Err(format!("line {}: {why}: {line:?}", lineno + 1));
            if line.is_empty() {
                return err("blank line in exposition");
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, _help) = rest
                    .split_once(' ')
                    .ok_or(format!("line {}: HELP without text", lineno + 1))?;
                if !valid_name(name) {
                    return err("invalid family name in HELP");
                }
                helped.push(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or(format!("line {}: TYPE without kind", lineno + 1))?;
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return err("unknown metric kind");
                }
                if !helped.contains(&name.to_string()) {
                    return err("TYPE before HELP");
                }
                typed.push(name.to_string());
                families.entry(name.to_string()).or_default().kind = kind.to_string();
                continue;
            }
            if line.starts_with('#') {
                return err("unknown comment form");
            }
            let (name, labels, value) = parse_sample(line)
                .map_err(|why| format!("line {}: {why}: {line:?}", lineno + 1))?;
            let family = typed
                .iter()
                .find(|t| {
                    name == **t
                        || (name
                            .strip_prefix(t.as_str())
                            .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count")))
                })
                .ok_or(format!("line {}: sample before TYPE: {line:?}", lineno + 1))?
                .clone();
            families
                .get_mut(&family)
                .unwrap()
                .samples
                .push((name, labels, value));
        }
        for (name, family) in &families {
            if family.kind == "histogram" {
                check_histogram(name, family)?;
            }
        }
        Ok(families)
    }

    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    fn parse_sample(line: &str) -> Result<Sample, String> {
        let (head, labels, tail) = match line.find('{') {
            Some(open) => {
                let close = line.rfind('}').ok_or("unclosed label block")?;
                (
                    &line[..open],
                    parse_labels(&line[open + 1..close])?,
                    &line[close + 1..],
                )
            }
            None => {
                let space = line.find(' ').ok_or("no value separator")?;
                (&line[..space], Vec::new(), &line[space..])
            }
        };
        if !valid_name(head) {
            return Err(format!("invalid metric name {head:?}"));
        }
        let value = tail.trim_start();
        if value.contains(' ') {
            return Err("trailing content after value".to_string());
        }
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().map_err(|_| format!("bad value {v:?}"))?,
        };
        Ok((head.to_string(), labels, value))
    }

    fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
        let mut out = Vec::new();
        let mut rest = body;
        while !rest.is_empty() {
            let eq = rest.find("=\"").ok_or("label without =\"")?;
            let key = &rest[..eq];
            if !valid_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            rest = &rest[eq + 2..];
            let mut value = String::new();
            let mut escaped = false;
            let mut closed = None;
            for (i, c) in rest.char_indices() {
                if escaped {
                    match c {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad escape \\{other}")),
                    }
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    closed = Some(i);
                    break;
                } else {
                    value.push(c);
                }
            }
            let closed = closed.ok_or("unterminated label value")?;
            out.push((key.to_string(), value));
            rest = &rest[closed + 1..];
            rest = rest.strip_prefix(',').unwrap_or(rest);
        }
        Ok(out)
    }

    fn check_histogram(name: &str, family: &Familie) -> Result<(), String> {
        // Group buckets/sum/count by their non-`le` label set.
        // Per labelset: `(bucket (le, value) pairs, _sum, _count)`.
        type HistogramSeries = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
        let mut by_series: BTreeMap<String, HistogramSeries> = BTreeMap::new();
        for (sample_name, labels, value) in &family.samples {
            let key: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let entry = by_series.entry(key.join(",")).or_default();
            if *sample_name == format!("{name}_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or(format!("{name}: bucket without le"))?;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().map_err(|_| format!("{name}: bad le {le:?}"))?
                };
                entry.0.push((le, *value));
            } else if *sample_name == format!("{name}_sum") {
                entry.1 = Some(*value);
            } else if *sample_name == format!("{name}_count") {
                entry.2 = Some(*value);
            } else {
                return Err(format!("{name}: stray sample {sample_name:?}"));
            }
        }
        for (series, (buckets, sum, count)) in by_series {
            let count = count.ok_or(format!("{name}{{{series}}}: missing _count"))?;
            sum.ok_or(format!("{name}{{{series}}}: missing _sum"))?;
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_count = 0.0;
            for (le, cumulative) in &buckets {
                if *le <= prev_le {
                    return Err(format!("{name}{{{series}}}: le not increasing"));
                }
                if *cumulative < prev_count {
                    return Err(format!("{name}{{{series}}}: buckets not cumulative"));
                }
                prev_le = *le;
                prev_count = *cumulative;
            }
            match buckets.last() {
                Some((le, total)) if le.is_infinite() => {
                    if *total != count {
                        return Err(format!("{name}{{{series}}}: +Inf != _count"));
                    }
                }
                _ => return Err(format!("{name}{{{series}}}: missing +Inf bucket")),
            }
        }
        Ok(())
    }
}

#[test]
fn rendered_exposition_round_trips_a_strict_parser() {
    let registry = Registry::new();
    registry.counter("jobs_total", "jobs seen").add(7);
    registry
        .counter_with(
            "admitted_total",
            "per-tenant admits",
            &[("tenant", "alice")],
        )
        .add(3);
    registry
        .counter_with(
            "admitted_total",
            "per-tenant admits",
            &[("tenant", "bo\"b\\x")],
        )
        .add(1);
    registry.gauge("queue_depth", "queued jobs").set(4.5);
    let h = registry.histogram("round_seconds", "round latency", &[0.01, 0.1, 1.0]);
    h.observe(0.01);
    h.observe(0.05);
    h.observe(2.0);

    let text = registry.render();
    let families = strict::parse(&text).expect("strict parser accepts our exposition");

    assert_eq!(families.len(), 4);
    assert_eq!(families["jobs_total"].kind, "counter");
    assert_eq!(families["jobs_total"].samples[0].2, 7.0);
    assert_eq!(families["queue_depth"].samples[0].2, 4.5);

    let admitted: HashMap<String, f64> = families["admitted_total"]
        .samples
        .iter()
        .map(|(_, labels, v)| (labels[0].1.clone(), *v))
        .collect();
    assert_eq!(admitted["alice"], 3.0);
    assert_eq!(admitted["bo\"b\\x"], 1.0, "escaped label values round-trip");

    let hist = &families["round_seconds"];
    assert_eq!(hist.kind, "histogram");
    let bucket_of = |le: &str| {
        hist.samples
            .iter()
            .find(|(n, labels, _)| {
                n == "round_seconds_bucket" && labels.iter().any(|(k, v)| k == "le" && v == le)
            })
            .map(|(_, _, v)| *v)
            .unwrap()
    };
    assert_eq!(bucket_of("0.01"), 1.0, "edge value counts toward its bound");
    assert_eq!(bucket_of("0.1"), 2.0);
    assert_eq!(bucket_of("1"), 2.0);
    assert_eq!(bucket_of("+Inf"), 3.0);

    // The crate's own lenient parser agrees on every sample value.
    let lenient = clapton_telemetry::parse_text(&text).expect("lenient parse");
    assert_eq!(
        lenient.len(),
        families.values().map(|f| f.samples.len()).sum::<usize>()
    );
}

#[test]
fn kind_collisions_panic() {
    let registry = Registry::new();
    registry.counter("clash", "first");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        registry.gauge("clash", "second");
    }));
    assert!(
        result.is_err(),
        "re-registering a counter as a gauge panics"
    );
}
