//! The Clapton engine — the paper's primary contribution.
//!
//! Pipeline (§3–§4):
//!
//! 1. [`ExecutableAnsatz`] transpiles the circular VQE ansatz `A(θ)` onto a
//!    device (layout + SWAP routing, §5.2.2) and restricts the device noise
//!    model to the qubits actually used, so the loss consumes the *physical*
//!    circuit `A'`.
//! 2. [`transform_hamiltonian`] applies `Ĥ = C†(γ) H C(γ)` by anticonjugating
//!    every Pauli term through the transformation ansatz (Eq. 6).
//! 3. [`LossFunction`] evaluates `L(γ) = LN(γ) + L0(γ)` (Eq. 9–10) through a
//!    pluggable [`EnergyBackend`]: exact Clifford back-propagation
//!    ([`ExactBackend`]), the stim-style frame sampler ([`SampledBackend`]),
//!    or dense density-matrix simulation ([`DenseBackend`]).
//! 4. [`TransformLoss`] packages the objective as a batched
//!    [`LossEvaluator`](clapton_eval::LossEvaluator) which [`run_clapton`]
//!    hands to the multi-GA engine of Figure 4 — population-parallel and
//!    memoized by default — returning the [`Transformation`] plus
//!    diagnostics.
//!
//! Baselines: [`run_cafqa`] (noiseless Clifford search over `θ`, prior art
//! [38]) and [`run_ncafqa`] (the paper's noise-aware CAFQA, §5.2), both
//! through [`CafqaLoss`].
//! Metrics: [`relative_improvement`] (η, Eq. 14), [`geometric_mean`],
//! [`normalized_energy`].

mod baselines;
mod clapton;
mod evaluator;
mod exec;
mod loss;
mod metrics;
mod transform;

pub use baselines::{run_cafqa, run_ncafqa, CafqaResult};
pub use clapton::{
    loss_namespace, run_clapton, run_clapton_resumable, run_clapton_resumable_with_store,
    ClaptonConfig, ClaptonResult,
};
pub use clapton_eval::{
    CacheStats, CachedEvaluator, FnEvaluator, LossEvaluator, LossStore, ParallelEvaluator,
};
pub use clapton_ga::EngineState;
pub use clapton_runtime::{PooledEvaluator, WorkerPool};
pub use evaluator::{CafqaLoss, TransformLoss};
pub use exec::ExecutableAnsatz;
pub use loss::{
    DenseBackend, EnergyBackend, EvaluatorKind, ExactBackend, LossFunction, PreparedEnergy,
    SampledBackend,
};
pub use metrics::{geometric_mean, normalized_energy, relative_improvement};
pub use transform::{transform_hamiltonian, transform_hamiltonian_into, Transformation};
