//! Evaluation metrics of the paper (§5.2.1).

/// The relative improvement `η` of Clapton over a baseline (Eq. 14):
///
/// `η = (E0 - E_noisy(baseline)) / (E0 - E_noisy(clapton))`.
///
/// `η = 2` means Clapton halved the gap to the true ground energy; values
/// below 1 mean the baseline was better.
///
/// # Panics
///
/// Panics if Clapton's gap is zero (degenerate division).
///
/// # Example
///
/// ```
/// use clapton_core::relative_improvement;
///
/// // Ground energy -10; baseline reached -6, Clapton reached -8.
/// let eta = relative_improvement(-10.0, -6.0, -8.0);
/// assert!((eta - 2.0).abs() < 1e-12);
/// ```
pub fn relative_improvement(e0: f64, e_baseline: f64, e_clapton: f64) -> f64 {
    let gap_clapton = e0 - e_clapton;
    assert!(
        gap_clapton.abs() > f64::EPSILON,
        "Clapton gap is zero; η undefined"
    );
    (e0 - e_baseline) / gap_clapton
}

/// The geometric mean of a set of positive ratios (the `η̄` insets of
/// Figure 5). Non-positive entries are clamped to a small floor so a single
/// pathological benchmark cannot poison the mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-6).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Normalizes an energy onto the paper's Figure-5 scale: `0` at the ground
/// state energy `E0` and `1` at the fully mixed state energy
/// `E_ρ = tr(H)/2^N`.
///
/// # Panics
///
/// Panics if `e0 == e_mixed`.
pub fn normalized_energy(e: f64, e0: f64, e_mixed: f64) -> f64 {
    assert!(
        (e_mixed - e0).abs() > f64::EPSILON,
        "degenerate normalization span"
    );
    (e - e0) / (e_mixed - e0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_interprets_gap_reduction() {
        assert!((relative_improvement(-10.0, -5.0, -7.5) - 2.0).abs() < 1e-12);
        // Baseline better than Clapton → η < 1.
        assert!(relative_improvement(-10.0, -9.0, -8.0) < 1.0);
        // Equal → 1.
        assert!((relative_improvement(-10.0, -7.0, -7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
        // Floors non-positive values instead of producing NaN.
        assert!(geometric_mean(&[1.0, 0.0]).is_finite());
    }

    #[test]
    fn normalized_energy_anchors() {
        assert_eq!(normalized_energy(-10.0, -10.0, 0.0), 0.0);
        assert_eq!(normalized_energy(0.0, -10.0, 0.0), 1.0);
        assert_eq!(normalized_energy(-5.0, -10.0, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "geometric mean of nothing")]
    fn empty_mean_panics() {
        geometric_mean(&[]);
    }
}
