//! The Clapton loss `L(γ) = LN(γ) + L0(γ)` (§4.1) and its pluggable
//! noisy-energy backends.

use crate::ExecutableAnsatz;
use clapton_circuits::Circuit;
use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit, TermCache};
use clapton_pauli::PauliSum;
use clapton_sim::DeviceEvaluator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A noisy-energy backend specialized to one fixed circuit.
///
/// Produced by [`EnergyBackend::prepare`]: the circuit-dependent setup
/// (noise attachment, Clifford conversion, dense simulation of the state)
/// is paid once, after which [`PreparedEnergy::energy`] scores arbitrary
/// Hamiltonians against the same circuit. Results are bit-identical to the
/// unprepared [`EnergyBackend::energy`] — preparation hoists construction,
/// never changes arithmetic.
///
/// This is the batch fast path of the Clapton hot loop: the GA evaluates
/// thousands of transformed Hamiltonians against the *same* `θ = 0` circuit,
/// so rebuilding the noisy circuit per genome is pure overhead.
pub trait PreparedEnergy: fmt::Debug + Send + Sync {
    /// The noisy energy of `h` (already on the circuit's register) for the
    /// prepared circuit.
    fn energy(&self, h: &PauliSum) -> f64;
}

/// A noisy-energy backend: computes `⟨H⟩` of a Clifford circuit under a
/// noise model.
///
/// Backends are trait objects so exact stabilizer back-propagation,
/// stim-style frame sampling, and dense density-matrix simulation plug into
/// [`LossFunction`] (and everything above it — `TransformLoss`, the GA
/// engine, the pipeline) uniformly. Implementations must be pure: the energy
/// may be computed on any thread and memoized.
pub trait EnergyBackend: fmt::Debug + Send + Sync {
    /// The noisy energy `Σ_i c_i ⟨P_i⟩_noisy` of `h` for `circuit` under
    /// `model`.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not Clifford (all backends here exploit
    /// stabilizer structure; the dense backend accepts any circuit but is
    /// only ever handed Clifford ones by the losses).
    fn energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64;

    /// Specializes the backend to a fixed circuit for repeated energy
    /// evaluations of different Hamiltonians.
    ///
    /// `None` (the default) means the backend has no circuit-invariant work
    /// worth hoisting; callers fall back to [`EnergyBackend::energy`]. When
    /// `Some`, the prepared evaluator must return bit-identical energies.
    fn prepare(&self, circuit: &Circuit, model: &NoiseModel) -> Option<Box<dyn PreparedEnergy>> {
        let _ = (circuit, model);
        None
    }

    /// The noiseless energy of the same circuit (all damping dropped).
    fn noiseless_energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64 {
        let noisy = NoisyCircuit::from_circuit(circuit, model)
            .expect("energy backends require Clifford circuits");
        ExactEvaluator::new(&noisy).noiseless_energy(h)
    }

    /// A short human-readable backend name (diagnostics).
    fn name(&self) -> &'static str;
}

/// Closed-form Clifford-noise expectation via Heisenberg back-propagation —
/// deterministic, zero sampling error (DESIGN.md substitution 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

impl EnergyBackend for ExactBackend {
    fn energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64 {
        let noisy = NoisyCircuit::from_circuit(circuit, model)
            .expect("exact backend requires a Clifford circuit");
        ExactEvaluator::new(&noisy).energy(h)
    }

    fn prepare(&self, circuit: &Circuit, model: &NoiseModel) -> Option<Box<dyn PreparedEnergy>> {
        let noisy = NoisyCircuit::from_circuit(circuit, model)
            .expect("exact backend requires a Clifford circuit");
        Some(Box::new(PreparedExact { noisy }))
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

/// [`ExactBackend`] with the noisy circuit attached once.
///
/// Energies route through the bit-parallel batched back-propagation
/// (`ExactEvaluator::energy`: 64 Hamiltonian terms per circuit walk for
/// `M ≥ ExactEvaluator::BATCH_MIN_TERMS`, scalar below); the prepared
/// circuit also memoizes the reversed-and-inverted op list the walks share,
/// so every genome of every batch reuses one back-propagation program.
#[derive(Debug)]
struct PreparedExact {
    noisy: NoisyCircuit,
}

impl PreparedEnergy for PreparedExact {
    fn energy(&self, h: &PauliSum) -> f64 {
        ExactEvaluator::new(&self.noisy).energy(h)
    }
}

/// stim-style Pauli-frame Monte Carlo with a fixed shot budget — the paper's
/// original estimator. The RNG is re-seeded per evaluation from `seed` and
/// the candidate's content hash, so the loss stays deterministic (and
/// thread-safe) inside the GA.
#[derive(Debug, Clone, Copy)]
pub struct SampledBackend {
    /// Shots per Pauli term.
    pub shots: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl EnergyBackend for SampledBackend {
    fn energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64 {
        let noisy = NoisyCircuit::from_circuit(circuit, model)
            .expect("frame sampler requires a Clifford circuit");
        let mut rng = StdRng::seed_from_u64(self.seed ^ content_hash(circuit, h));
        FrameSampler::new(&noisy).energy(h, self.shots, &mut rng)
    }

    fn prepare(&self, circuit: &Circuit, model: &NoiseModel) -> Option<Box<dyn PreparedEnergy>> {
        let noisy = NoisyCircuit::from_circuit(circuit, model)
            .expect("frame sampler requires a Clifford circuit");
        Some(Box::new(PreparedSampled {
            noisy,
            terms: TermCache::new(),
            circuit_hash: circuit_hash(circuit),
            shots: self.shots,
            seed: self.seed,
        }))
    }

    fn name(&self) -> &'static str {
        "sampled"
    }
}

/// [`SampledBackend`] with the noisy circuit and the circuit half of the
/// per-candidate seed hash computed once, plus a [`TermCache`] so each
/// distinct Pauli term's preparation (noiseless back-propagation +
/// basis-prep ops) is derived once across the whole population batch.
/// Cache hits consume no randomness and the final per-Hamiltonian seed is
/// identical to the unprepared path, so sampled losses replay exactly.
#[derive(Debug)]
struct PreparedSampled {
    noisy: NoisyCircuit,
    terms: TermCache,
    circuit_hash: u64,
    shots: usize,
    seed: u64,
}

impl PreparedEnergy for PreparedSampled {
    fn energy(&self, h: &PauliSum) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed ^ hamiltonian_hash(self.circuit_hash, h));
        FrameSampler::new(&self.noisy).energy_cached(h, self.shots, &mut rng, &self.terms)
    }
}

/// Full density-matrix simulation ([`DeviceEvaluator`]) — the Qiskit-style
/// device environment. Exponential in register width; intended for small
/// problems and cross-validation of the scalable backends.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseBackend;

impl EnergyBackend for DenseBackend {
    fn energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64 {
        DeviceEvaluator::run(circuit, model).energy(h)
    }

    fn prepare(&self, circuit: &Circuit, model: &NoiseModel) -> Option<Box<dyn PreparedEnergy>> {
        // The density-matrix evolution depends only on the circuit; measuring
        // a Hamiltonian against the evolved state is the cheap part.
        Some(Box::new(DeviceEvaluator::run(circuit, model)))
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

impl PreparedEnergy for DeviceEvaluator {
    fn energy(&self, h: &PauliSum) -> f64 {
        DeviceEvaluator::energy(self, h)
    }
}

/// How the noisy loss term `LN` is evaluated — a serializable configuration
/// tag resolving to an [`EnergyBackend`] trait object via
/// [`EvaluatorKind::backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvaluatorKind {
    /// Closed-form Clifford-noise expectation ([`ExactBackend`]).
    Exact,
    /// stim-style Pauli-frame Monte Carlo ([`SampledBackend`]).
    Sampled {
        /// Shots per Pauli term.
        shots: usize,
        /// Base RNG seed.
        seed: u64,
    },
    /// Dense density-matrix simulation ([`DenseBackend`]).
    Dense,
}

impl EvaluatorKind {
    /// Resolves the configuration tag to a backend object.
    pub fn backend(&self) -> Arc<dyn EnergyBackend> {
        match *self {
            EvaluatorKind::Exact => Arc::new(ExactBackend),
            EvaluatorKind::Sampled { shots, seed } => Arc::new(SampledBackend { shots, seed }),
            EvaluatorKind::Dense => Arc::new(DenseBackend),
        }
    }
}

// Hand-written serde impls (the vendored derive has no struct-variant
// support): `"Exact"` / `"Dense"` as unit strings, `Sampled` externally
// tagged with a named map — `{"Sampled": {"shots": 256, "seed": 5}}`.
impl serde::Serialize for EvaluatorKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::Value;
        let value = match *self {
            EvaluatorKind::Exact => Value::Str("Exact".to_string()),
            EvaluatorKind::Dense => Value::Str("Dense".to_string()),
            EvaluatorKind::Sampled { shots, seed } => Value::Map(vec![(
                "Sampled".to_string(),
                Value::Map(vec![
                    ("shots".to_string(), serde::to_value(&shots)),
                    ("seed".to_string(), serde::to_value(&seed)),
                ]),
            )]),
        };
        serializer.serialize_value(value)
    }
}

impl<'de> serde::Deserialize<'de> for EvaluatorKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        use serde::Value;
        match deserializer.take_value()? {
            Value::Str(s) => match s.as_str() {
                "Exact" => Ok(EvaluatorKind::Exact),
                "Dense" => Ok(EvaluatorKind::Dense),
                other => Err(D::Error::custom(format!(
                    "unknown evaluator {other:?} (expected Exact, Dense, or Sampled)"
                ))),
            },
            Value::Map(mut m) if m.len() == 1 && m[0].0 == "Sampled" => {
                let (_, content) = m.remove(0);
                match content {
                    Value::Map(mut fields) => Ok(EvaluatorKind::Sampled {
                        shots: serde::take_field(&mut fields, "shots").map_err(D::Error::custom)?,
                        seed: serde::take_field(&mut fields, "seed").map_err(D::Error::custom)?,
                    }),
                    other => Err(D::Error::custom(format!(
                        "Sampled evaluator expects {{shots, seed}}, found {other:?}"
                    ))),
                }
            }
            other => Err(D::Error::custom(format!(
                "expected evaluator kind, found {other:?}"
            ))),
        }
    }
}

/// Evaluates Clapton/nCAFQA losses against an executable ansatz.
///
/// `LN` runs the noisy circuit built from a given `A'(θ)` (Eq. 9); `L0` is
/// the noiseless energy of the all-zeros state (Eq. 10).
///
/// # Example
///
/// ```
/// use clapton_core::{EvaluatorKind, ExecutableAnsatz, LossFunction};
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZZ".parse().unwrap())]);
/// let total = loss.total(&h);
/// // L0 = 1 exactly, LN slightly damped by gate and readout noise.
/// assert!(total < 2.0 && total > 1.8);
/// ```
#[derive(Debug, Clone)]
pub struct LossFunction<'a> {
    exec: &'a ExecutableAnsatz,
    zero_circuit: Circuit,
    backend: Arc<dyn EnergyBackend>,
    /// The backend specialized to the fixed `θ = 0` circuit, built lazily
    /// and shared for the lifetime of this loss object — every population
    /// batch, pooled chunk, and GA round reuses one preparation (and, for
    /// the sampled backend, one term-prep cache). Clones of an
    /// already-prepared loss share the same preparation (`OnceLock::clone`
    /// copies the initialized value); results are bit-identical either way.
    prepared_zero: OnceLock<Option<Arc<dyn PreparedEnergy>>>,
}

impl<'a> LossFunction<'a> {
    /// Creates the loss for the ansatz's `θ = 0` circuit with a built-in
    /// backend kind.
    pub fn new(exec: &'a ExecutableAnsatz, kind: EvaluatorKind) -> LossFunction<'a> {
        LossFunction::with_backend(exec, kind.backend())
    }

    /// Creates the loss with a custom [`EnergyBackend`] implementation.
    pub fn with_backend(
        exec: &'a ExecutableAnsatz,
        backend: Arc<dyn EnergyBackend>,
    ) -> LossFunction<'a> {
        LossFunction {
            exec,
            zero_circuit: exec.circuit_at_zero(),
            backend,
            prepared_zero: OnceLock::new(),
        }
    }

    /// The executable ansatz this loss evaluates against.
    pub fn exec(&self) -> &ExecutableAnsatz {
        self.exec
    }

    /// The backend computing `LN`.
    pub fn backend(&self) -> &dyn EnergyBackend {
        self.backend.as_ref()
    }

    /// `LN(γ)`: noisy energy of a (transformed) logical Hamiltonian at the
    /// initial point `θ = 0` on the transpiled circuit (Eq. 9).
    pub fn loss_n(&self, h_logical: &PauliSum) -> f64 {
        self.loss_n_for_circuit(&self.zero_circuit, h_logical)
    }

    /// The backend specialized to the fixed `θ = 0` circuit for repeated
    /// `LN` evaluations (the population-batch fast path), prepared at most
    /// once per loss object and reused across batches, pooled chunks, and
    /// GA rounds.
    ///
    /// `None` when the backend has nothing to hoist; results through the
    /// prepared path are bit-identical to [`LossFunction::loss_n`].
    pub fn prepared_zero(&self) -> Option<&dyn PreparedEnergy> {
        self.prepared_zero
            .get_or_init(|| {
                self.backend
                    .prepare(&self.zero_circuit, self.exec.noise_model())
                    .map(Arc::from)
            })
            .as_deref()
    }

    /// `LN` through a prepared backend (see [`LossFunction::prepared_zero`]).
    ///
    /// Skips the logical → compact Hamiltonian copy when the executable's
    /// mapping is the identity (the untranspiled case) — the mapped sum would
    /// be term-for-term equal, so the energy is bit-identical either way.
    pub fn loss_n_prepared(&self, prepared: &dyn PreparedEnergy, h_logical: &PauliSum) -> f64 {
        if self.exec.mapping_is_identity() {
            prepared.energy(h_logical)
        } else {
            prepared.energy(&self.exec.map_hamiltonian(h_logical))
        }
    }

    /// `LN` for an arbitrary executable circuit `A'(θ)` (used by nCAFQA,
    /// which searches over θ rather than transforming H).
    pub fn loss_n_for_circuit(&self, circuit: &Circuit, h_logical: &PauliSum) -> f64 {
        let mapped = self.exec.map_hamiltonian(h_logical);
        self.backend
            .energy(circuit, self.exec.noise_model(), &mapped)
    }

    /// `L0(γ) = ⟨0|H(γ)|0⟩` (Eq. 10): the noiseless anchor that prevents
    /// deceptively error-resilient but bad solutions.
    pub fn loss_0(&self, h_logical: &PauliSum) -> f64 {
        h_logical.expectation_all_zeros()
    }

    /// Noiseless energy of an arbitrary Clifford circuit `A'(θ)` w.r.t. the
    /// (mapped) Hamiltonian — CAFQA's objective and nCAFQA's `L0` analogue.
    pub fn noiseless_for_circuit(&self, circuit: &Circuit, h_logical: &PauliSum) -> f64 {
        let mapped = self.exec.map_hamiltonian(h_logical);
        self.backend
            .noiseless_energy(circuit, self.exec.noise_model(), &mapped)
    }

    /// The full Clapton loss `L = LN + L0` (§4.1).
    pub fn total(&self, h_logical: &PauliSum) -> f64 {
        self.loss_n(h_logical) + self.loss_0(h_logical)
    }
}

/// A cheap deterministic content hash of circuit + Hamiltonian coefficients
/// for per-candidate sampler seeding.
fn content_hash(circuit: &Circuit, h: &PauliSum) -> u64 {
    hamiltonian_hash(circuit_hash(circuit), h)
}

/// The circuit half of [`content_hash`] (hoistable: the GA evaluates every
/// candidate against one fixed circuit).
fn circuit_hash(circuit: &Circuit) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    mix(&mut acc, circuit.len() as u64);
    for g in circuit.gates() {
        for q in g.qubits() {
            mix(&mut acc, q as u64 + 1);
        }
    }
    acc
}

/// Folds a Hamiltonian into a running [`circuit_hash`] accumulator,
/// completing [`content_hash`].
fn hamiltonian_hash(mut acc: u64, h: &PauliSum) -> u64 {
    for (c, p) in h.iter() {
        mix(&mut acc, c.to_bits());
        mix(&mut acc, p.x_words().first().copied().unwrap_or(0));
        mix(&mut acc, p.z_words().first().copied().unwrap_or(0));
    }
    acc
}

fn mix(acc: &mut u64, v: u64) {
    *acc ^= v;
    *acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_noise::NoiseModel;
    use clapton_pauli::PauliString;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn l0_is_all_zeros_energy() {
        let model = NoiseModel::noiseless(3);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(3, vec![(2.0, ps("ZZI")), (5.0, ps("XII"))]);
        assert_eq!(loss.loss_0(&h), 2.0);
    }

    #[test]
    fn noiseless_model_makes_ln_equal_l0() {
        // With no noise, LN at θ=0 equals ⟨0|H|0⟩ because A(0)|0⟩ = |0⟩.
        let model = NoiseModel::noiseless(4);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(4, vec![(1.5, ps("ZIIZ")), (0.7, ps("XXII"))]);
        assert!((loss.loss_n(&h) - loss.loss_0(&h)).abs() < 1e-12);
    }

    #[test]
    fn noise_damps_ln_towards_zero() {
        let model = NoiseModel::uniform(3, 5e-3, 3e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(3, vec![(1.0, ps("ZZZ"))]);
        let ln = loss.loss_n(&h);
        assert!(ln < 1.0 && ln > 0.5, "LN = {ln}");
        assert_eq!(loss.loss_0(&h), 1.0);
        assert!((loss.total(&h) - (ln + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sampled_loss_is_deterministic_and_near_exact() {
        let model = NoiseModel::uniform(3, 5e-3, 2e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let exact = LossFunction::new(&exec, EvaluatorKind::Exact);
        let sampled = LossFunction::new(
            &exec,
            EvaluatorKind::Sampled {
                shots: 20_000,
                seed: 5,
            },
        );
        let h = PauliSum::from_terms(3, vec![(1.0, ps("ZZI")), (-0.5, ps("IZZ"))]);
        let a = sampled.loss_n(&h);
        let b = sampled.loss_n(&h);
        assert_eq!(a, b, "sampled loss must be deterministic");
        assert!((a - exact.loss_n(&h)).abs() < 0.03);
    }

    #[test]
    fn dense_backend_agrees_with_exact_on_pauli_noise() {
        // For pure Pauli noise (no T1 relaxation), the density-matrix
        // simulation and the exact back-propagation compute the same
        // channel, so LN must agree to numerical precision.
        let model = NoiseModel::uniform(3, 2e-3, 1.5e-2, 2.5e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let exact = LossFunction::new(&exec, EvaluatorKind::Exact);
        let dense = LossFunction::new(&exec, EvaluatorKind::Dense);
        let h = PauliSum::from_terms(
            3,
            vec![(1.0, ps("ZZI")), (-0.5, ps("IZZ")), (0.25, ps("XIX"))],
        );
        assert!(
            (exact.loss_n(&h) - dense.loss_n(&h)).abs() < 1e-9,
            "exact {} vs dense {}",
            exact.loss_n(&h),
            dense.loss_n(&h)
        );
    }

    #[test]
    fn backend_objects_report_names() {
        assert_eq!(EvaluatorKind::Exact.backend().name(), "exact");
        assert_eq!(
            EvaluatorKind::Sampled { shots: 8, seed: 0 }
                .backend()
                .name(),
            "sampled"
        );
        assert_eq!(EvaluatorKind::Dense.backend().name(), "dense");
    }

    #[test]
    fn custom_backend_plugs_in() {
        /// A backend that scales the exact energy — checks the trait-object
        /// path end to end.
        #[derive(Debug)]
        struct Halved;

        impl EnergyBackend for Halved {
            fn energy(&self, circuit: &Circuit, model: &NoiseModel, h: &PauliSum) -> f64 {
                0.5 * ExactBackend.energy(circuit, model, h)
            }

            fn name(&self) -> &'static str {
                "halved"
            }
        }

        let model = NoiseModel::noiseless(2);
        let exec = ExecutableAnsatz::untranspiled(2, &model);
        let loss = LossFunction::with_backend(&exec, Arc::new(Halved));
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZZ"))]);
        assert!((loss.loss_n(&h) - 0.5).abs() < 1e-12);
        // L0 is backend-independent.
        assert_eq!(loss.loss_0(&h), 1.0);
    }

    #[test]
    fn ln_accounts_for_routing_noise() {
        use clapton_circuits::CouplingMap;
        // The same 5-qubit problem on a line (needs routing SWAPs for the
        // ring closure) must show a strictly noisier LN than on a ring
        // (SWAP-free), for identical per-gate error rates.
        let h = PauliSum::from_terms(5, vec![(1.0, ps("ZZZZZ"))]);
        let line_model = NoiseModel::uniform(5, 1e-3, 1e-2, 0.0);
        let exec_line = ExecutableAnsatz::on_device(5, &CouplingMap::line(5), &line_model).unwrap();
        let exec_ring = ExecutableAnsatz::on_device(5, &CouplingMap::ring(5), &line_model).unwrap();
        let loss_line = LossFunction::new(&exec_line, EvaluatorKind::Exact);
        let loss_ring = LossFunction::new(&exec_ring, EvaluatorKind::Exact);
        let (ln_line, ln_ring) = (loss_line.loss_n(&h), loss_ring.loss_n(&h));
        assert!(
            ln_line < ln_ring,
            "routing SWAPs must cost fidelity: line {ln_line} vs ring {ln_ring}"
        );
    }
}
