//! The Clapton loss `L(γ) = LN(γ) + L0(γ)` (§4.1).

use crate::ExecutableAnsatz;
use clapton_circuits::Circuit;
use clapton_noise::{ExactEvaluator, FrameSampler, NoisyCircuit};
use clapton_pauli::PauliSum;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the noisy loss term `LN` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvaluatorKind {
    /// Closed-form Clifford-noise expectation (deterministic, zero sampling
    /// error; our improvement over the paper's stim sampling — DESIGN.md
    /// substitution 4).
    Exact,
    /// stim-style Pauli-frame Monte Carlo with a fixed shot budget — the
    /// paper's original estimator. The RNG is re-seeded per evaluation from
    /// `seed` and the candidate's content hash, so the loss stays
    /// deterministic (and thread-safe) inside the GA.
    Sampled {
        /// Shots per Pauli term.
        shots: usize,
        /// Base RNG seed.
        seed: u64,
    },
}

/// Evaluates Clapton/nCAFQA losses against an executable ansatz.
///
/// `LN` runs the noisy circuit built from a given `A'(θ)` (Eq. 9); `L0` is
/// the noiseless energy of the all-zeros state (Eq. 10).
///
/// # Example
///
/// ```
/// use clapton_core::{EvaluatorKind, ExecutableAnsatz, LossFunction};
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZZ".parse().unwrap())]);
/// let total = loss.total(&h);
/// // L0 = 1 exactly, LN slightly damped by gate and readout noise.
/// assert!(total < 2.0 && total > 1.8);
/// ```
#[derive(Debug, Clone)]
pub struct LossFunction<'a> {
    exec: &'a ExecutableAnsatz,
    zero_circuit: Circuit,
    kind: EvaluatorKind,
}

impl<'a> LossFunction<'a> {
    /// Creates the loss for the ansatz's `θ = 0` circuit.
    pub fn new(exec: &'a ExecutableAnsatz, kind: EvaluatorKind) -> LossFunction<'a> {
        LossFunction {
            exec,
            zero_circuit: exec.circuit_at_zero(),
            kind,
        }
    }

    /// The executable ansatz this loss evaluates against.
    pub fn exec(&self) -> &ExecutableAnsatz {
        self.exec
    }

    /// `LN(γ)`: noisy energy of a (transformed) logical Hamiltonian at the
    /// initial point `θ = 0` on the transpiled circuit (Eq. 9).
    pub fn loss_n(&self, h_logical: &PauliSum) -> f64 {
        self.loss_n_for_circuit(&self.zero_circuit, h_logical)
    }

    /// `LN` for an arbitrary executable circuit `A'(θ)` (used by nCAFQA,
    /// which searches over θ rather than transforming H).
    pub fn loss_n_for_circuit(&self, circuit: &Circuit, h_logical: &PauliSum) -> f64 {
        let mapped = self.exec.map_hamiltonian(h_logical);
        let noisy = NoisyCircuit::from_circuit(circuit, self.exec.noise_model())
            .expect("executable ansatz at Clifford angles must be Clifford");
        match self.kind {
            EvaluatorKind::Exact => ExactEvaluator::new(&noisy).energy(&mapped),
            EvaluatorKind::Sampled { shots, seed } => {
                let mut rng = StdRng::seed_from_u64(seed ^ content_hash(circuit, &mapped));
                FrameSampler::new(&noisy).energy(&mapped, shots, &mut rng)
            }
        }
    }

    /// `L0(γ) = ⟨0|H(γ)|0⟩` (Eq. 10): the noiseless anchor that prevents
    /// deceptively error-resilient but bad solutions.
    pub fn loss_0(&self, h_logical: &PauliSum) -> f64 {
        h_logical.expectation_all_zeros()
    }

    /// Noiseless energy of an arbitrary Clifford circuit `A'(θ)` w.r.t. the
    /// (mapped) Hamiltonian — CAFQA's objective and nCAFQA's `L0` analogue.
    pub fn noiseless_for_circuit(&self, circuit: &Circuit, h_logical: &PauliSum) -> f64 {
        let mapped = self.exec.map_hamiltonian(h_logical);
        let noisy = NoisyCircuit::from_circuit(circuit, self.exec.noise_model())
            .expect("circuit must be Clifford");
        ExactEvaluator::new(&noisy).noiseless_energy(&mapped)
    }

    /// The full Clapton loss `L = LN + L0` (§4.1).
    pub fn total(&self, h_logical: &PauliSum) -> f64 {
        self.loss_n(h_logical) + self.loss_0(h_logical)
    }
}

/// A cheap deterministic content hash of circuit + Hamiltonian coefficients
/// for per-candidate sampler seeding.
fn content_hash(circuit: &Circuit, h: &PauliSum) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(circuit.len() as u64);
    for g in circuit.gates() {
        for q in g.qubits() {
            mix(q as u64 + 1);
        }
    }
    for (c, p) in h.iter() {
        mix(c.to_bits());
        mix(p.x_words().first().copied().unwrap_or(0));
        mix(p.z_words().first().copied().unwrap_or(0));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_noise::NoiseModel;
    use clapton_pauli::PauliString;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn l0_is_all_zeros_energy() {
        let model = NoiseModel::noiseless(3);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(3, vec![(2.0, ps("ZZI")), (5.0, ps("XII"))]);
        assert_eq!(loss.loss_0(&h), 2.0);
    }

    #[test]
    fn noiseless_model_makes_ln_equal_l0() {
        // With no noise, LN at θ=0 equals ⟨0|H|0⟩ because A(0)|0⟩ = |0⟩.
        let model = NoiseModel::noiseless(4);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(4, vec![(1.5, ps("ZIIZ")), (0.7, ps("XXII"))]);
        assert!((loss.loss_n(&h) - loss.loss_0(&h)).abs() < 1e-12);
    }

    #[test]
    fn noise_damps_ln_towards_zero() {
        let model = NoiseModel::uniform(3, 5e-3, 3e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let h = PauliSum::from_terms(3, vec![(1.0, ps("ZZZ"))]);
        let ln = loss.loss_n(&h);
        assert!(ln < 1.0 && ln > 0.5, "LN = {ln}");
        assert_eq!(loss.loss_0(&h), 1.0);
        assert!((loss.total(&h) - (ln + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sampled_loss_is_deterministic_and_near_exact() {
        let model = NoiseModel::uniform(3, 5e-3, 2e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let exact = LossFunction::new(&exec, EvaluatorKind::Exact);
        let sampled = LossFunction::new(
            &exec,
            EvaluatorKind::Sampled {
                shots: 20_000,
                seed: 5,
            },
        );
        let h = PauliSum::from_terms(3, vec![(1.0, ps("ZZI")), (-0.5, ps("IZZ"))]);
        let a = sampled.loss_n(&h);
        let b = sampled.loss_n(&h);
        assert_eq!(a, b, "sampled loss must be deterministic");
        assert!((a - exact.loss_n(&h)).abs() < 0.03);
    }

    #[test]
    fn ln_accounts_for_routing_noise() {
        use clapton_circuits::CouplingMap;
        // The same 5-qubit problem on a line (needs routing SWAPs for the
        // ring closure) must show a strictly noisier LN than on a ring
        // (SWAP-free), for identical per-gate error rates.
        let h = PauliSum::from_terms(
            5,
            vec![(1.0, ps("ZZZZZ"))],
        );
        let line_model = NoiseModel::uniform(5, 1e-3, 1e-2, 0.0);
        let exec_line =
            ExecutableAnsatz::on_device(5, &CouplingMap::line(5), &line_model).unwrap();
        let exec_ring =
            ExecutableAnsatz::on_device(5, &CouplingMap::ring(5), &line_model).unwrap();
        let loss_line = LossFunction::new(&exec_line, EvaluatorKind::Exact);
        let loss_ring = LossFunction::new(&exec_ring, EvaluatorKind::Exact);
        let (ln_line, ln_ring) = (loss_line.loss_n(&h), loss_ring.loss_n(&h));
        assert!(
            ln_line < ln_ring,
            "routing SWAPs must cost fidelity: line {ln_line} vs ring {ln_ring}"
        );
    }
}
