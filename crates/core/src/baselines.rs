//! The baselines: CAFQA [38] and the paper's noise-aware CAFQA (§5.2).

use crate::{CafqaLoss, EvaluatorKind, ExecutableAnsatz};
use clapton_ga::{MultiGa, MultiGaConfig};
use clapton_pauli::PauliSum;
use serde::{Deserialize, Serialize};

/// Result of a CAFQA or nCAFQA initialization search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CafqaResult {
    /// The winning quarter-turn indices (one per ansatz parameter, `4N`).
    pub theta_indices: Vec<u8>,
    /// The corresponding rotation angles.
    pub theta: Vec<f64>,
    /// The search loss (noiseless energy for CAFQA; `LN + L0`-style for
    /// nCAFQA).
    pub loss: f64,
    /// The noiseless energy of the found initialization.
    pub energy_noiseless: f64,
    /// Best loss per engine round.
    pub round_bests: Vec<f64>,
    /// Engine rounds until convergence.
    pub rounds: usize,
}

/// Runs CAFQA: searches Clifford-compatible angles `θ` of the VQE ansatz
/// minimizing the **noiseless** energy `⟨0|A†(θ) H A(θ)|0⟩` (§2.5).
///
/// The original CAFQA used Bayesian optimization; like the paper's own
/// re-implementation (§5.2) we reuse the Figure-4 genetic engine so that
/// baseline and Clapton differ only in search space and cost function.
///
/// # Example
///
/// ```
/// use clapton_core::{run_cafqa, ExecutableAnsatz};
/// use clapton_ga::MultiGaConfig;
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZI".parse().unwrap())]);
/// let exec = ExecutableAnsatz::untranspiled(2, &NoiseModel::noiseless(2));
/// let result = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 7);
/// // The ground state |1⟩⊗|ψ⟩ is Clifford-reachable: energy -1.
/// assert!((result.energy_noiseless + 1.0).abs() < 1e-12);
/// ```
pub fn run_cafqa(
    h: &PauliSum,
    exec: &ExecutableAnsatz,
    engine_config: &MultiGaConfig,
    seed: u64,
) -> CafqaResult {
    run_cafqa_impl(h, exec, engine_config, seed, None)
}

/// Runs noise-aware CAFQA (nCAFQA): the same `θ` search but with the
/// noise-equipped ansatz `Ã(θ)`, minimizing `LN(θ) + L0(θ)` where `L0` is
/// the noiseless energy of the same circuit (§5.2).
///
/// nCAFQA is *not prior art*: it already benefits from the paper's
/// classically efficient noise modeling; comparing Clapton against it
/// isolates the value of the Hamiltonian transformation itself.
pub fn run_ncafqa(
    h: &PauliSum,
    exec: &ExecutableAnsatz,
    engine_config: &MultiGaConfig,
    evaluator: EvaluatorKind,
    seed: u64,
) -> CafqaResult {
    run_cafqa_impl(h, exec, engine_config, seed, Some(evaluator))
}

fn run_cafqa_impl(
    h: &PauliSum,
    exec: &ExecutableAnsatz,
    engine_config: &MultiGaConfig,
    seed: u64,
    noise_aware: Option<EvaluatorKind>,
) -> CafqaResult {
    let ansatz = exec.ansatz();
    let objective = match noise_aware {
        None => CafqaLoss::cafqa(h, exec),
        Some(evaluator) => CafqaLoss::ncafqa(h, exec, evaluator),
    };
    let engine = MultiGa::new(ansatz.num_parameters(), 4, *engine_config);
    let result = engine.run(seed, &objective);
    let theta_indices = result.best.genes.clone();
    let theta = ansatz.angles_from_indices(&theta_indices);
    let energy_noiseless = objective.noiseless_energy(&theta_indices);
    CafqaResult {
        theta_indices,
        theta,
        loss: result.best.loss,
        energy_noiseless,
        round_bests: result.round_bests,
        rounds: result.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_models::{ising, xxz};
    use clapton_noise::NoiseModel;
    use clapton_sim::ground_energy;

    #[test]
    fn cafqa_finds_good_stabilizer_approximation_for_small_j() {
        // At J = 0.25 the Ising ground state is near the |1…1⟩ product
        // state (E ≈ -N): CAFQA must reach at least 90% of the gap (§2.5
        // reports 90-99% accuracy).
        let n = 4;
        let h = ising(n, 0.25);
        let exec = ExecutableAnsatz::untranspiled(n, &NoiseModel::noiseless(n));
        let result = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 2);
        let e0 = ground_energy(&h);
        let mixed = h.identity_coefficient();
        let accuracy = (mixed - result.energy_noiseless) / (mixed - e0);
        assert!(
            accuracy > 0.9,
            "CAFQA accuracy {accuracy} (E = {}, E0 = {e0})",
            result.energy_noiseless
        );
        assert!(result.energy_noiseless >= e0 - 1e-9, "variational bound");
    }

    #[test]
    fn cafqa_loss_equals_noiseless_energy() {
        let h = xxz(3, 0.5);
        let exec = ExecutableAnsatz::untranspiled(3, &NoiseModel::noiseless(3));
        let result = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 4);
        assert!((result.loss - result.energy_noiseless).abs() < 1e-12);
        assert_eq!(result.theta.len(), 12);
        assert_eq!(result.theta_indices.len(), 12);
    }

    #[test]
    fn ncafqa_prefers_noise_resilient_solutions() {
        // Under heavy noise, nCAFQA's loss (LN + L0) differs from CAFQA's
        // purely noiseless loss and cannot be larger than 2× noiseless of
        // its own solution... sanity: both find valid Clifford points and
        // nCAFQA's noisy component is finite and below zero for a solvable
        // model.
        let n = 3;
        let h = ising(n, 0.5);
        let model = NoiseModel::uniform(n, 5e-3, 3e-2, 4e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let cafqa = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 5);
        let ncafqa = run_ncafqa(&h, &exec, &MultiGaConfig::quick(), EvaluatorKind::Exact, 5);
        // Both reach negative noiseless energies.
        assert!(cafqa.energy_noiseless < 0.0);
        assert!(ncafqa.energy_noiseless < 0.0);
        // nCAFQA's combined loss includes the damped noisy term, so it is
        // strictly greater than 2× the ground energy.
        assert!(ncafqa.loss > 2.0 * ground_energy(&h) - 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let h = ising(3, 1.0);
        let exec = ExecutableAnsatz::untranspiled(3, &NoiseModel::noiseless(3));
        let a = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 9);
        let b = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 9);
        assert_eq!(a.theta_indices, b.theta_indices);
    }
}
