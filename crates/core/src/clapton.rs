//! The end-to-end Clapton optimization (§4.1, Figure 4).

use crate::{EvaluatorKind, ExecutableAnsatz, TransformLoss, Transformation};
use clapton_circuits::TransformationAnsatz;
use clapton_eval::LossStore;
use clapton_ga::{EngineState, MultiGa, MultiGaConfig};
use clapton_noise::NoisyCircuit;
use clapton_pauli::PauliSum;
use clapton_runtime::WorkerPool;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a Clapton run.
#[derive(Debug, Clone)]
pub struct ClaptonConfig {
    /// The multi-GA engine settings (paper: `s=10, m=100, k=20, |S|=100`).
    pub engine: MultiGaConfig,
    /// How `LN` is computed.
    pub evaluator: EvaluatorKind,
    /// Base seed for the search.
    pub seed: u64,
    /// Ablation switch: when `false`, the four-valued two-qubit slots of
    /// Eq. 8 are frozen to identity, leaving a rotations-only transformation
    /// ansatz. The paper argues the slots add the expressiveness needed to
    /// move Pauli components across qubits (§4); this knob quantifies that.
    pub two_qubit_slots: bool,
}

impl ClaptonConfig {
    /// The paper's configuration with the exact evaluator.
    pub fn paper() -> ClaptonConfig {
        ClaptonConfig {
            engine: MultiGaConfig::paper(),
            evaluator: EvaluatorKind::Exact,
            seed: 0,
            two_qubit_slots: true,
        }
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn quick(seed: u64) -> ClaptonConfig {
        ClaptonConfig {
            engine: MultiGaConfig::quick(),
            evaluator: EvaluatorKind::Exact,
            seed,
            two_qubit_slots: true,
        }
    }
}

impl Default for ClaptonConfig {
    fn default() -> ClaptonConfig {
        ClaptonConfig::paper()
    }
}

/// The outcome of a Clapton run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaptonResult {
    /// The best transformation found.
    pub transformation: Transformation,
    /// The transformation ansatz the genome refers to.
    pub ansatz: TransformationAnsatz,
    /// The best loss `L = LN + L0`.
    pub loss: f64,
    /// `LN` of the winning transformation.
    pub loss_n: f64,
    /// `L0` of the winning transformation.
    pub loss_0: f64,
    /// Global best loss per engine round (non-increasing).
    pub round_bests: Vec<f64>,
    /// Number of engine rounds until convergence.
    pub rounds: usize,
    /// Distinct transformations (canonical genomes) whose loss was
    /// actually computed.
    pub unique_evaluations: u64,
    /// Fitness requests answered by the engine's genome → loss cache.
    pub cache_hits: u64,
}

/// Runs the Clapton search: finds `γ̂ = argmin [LN(γ) + L0(γ)]` over the
/// transformation ansatz and returns `Ĥ = C†(γ̂) H C(γ̂)` (Eq. 5/11).
///
/// The transformation ansatz lives on the *logical* register (the
/// transformation is a change of problem representation); the loss evaluates
/// the transformed Hamiltonian on the *transpiled* ansatz under the device
/// noise model.
///
/// # Example
///
/// ```
/// use clapton_core::{run_clapton, ClaptonConfig, ExecutableAnsatz};
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// // A problem whose ground state is |11⟩: Clapton should find a
/// // transformation making |00⟩ optimal.
/// let h = PauliSum::from_terms(2, vec![
///     (1.0, "ZI".parse().unwrap()),
///     (1.0, "IZ".parse().unwrap()),
/// ]);
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let result = run_clapton(&h, &exec, &ClaptonConfig::quick(1));
/// assert!((result.loss_0 - (-2.0)).abs() < 1e-12);
/// ```
pub fn run_clapton(h: &PauliSum, exec: &ExecutableAnsatz, config: &ClaptonConfig) -> ClaptonResult {
    run_clapton_resumable(h, exec, config, None, None, &mut |_| true)
        .1
        .expect("uninterrupted run converges")
}

/// [`run_clapton`] with a shared worker pool, round-level checkpoint hooks,
/// and resume — the job body of the `suite-runner` orchestrator.
///
/// * `pool` — when given, GA instances and population batches execute on the
///   shared persistent [`WorkerPool`] instead of spawning threads per round
///   (results are bit-identical either way).
/// * `resume` — an [`EngineState`] snapshot from a previous, interrupted
///   run. The search continues from the captured round, bit-identical to a
///   run that was never interrupted.
/// * `on_round` — called with the engine state after every completed round;
///   persist it to implement checkpointing. Returning `false` suspends the
///   search: the function returns the current state and `None`.
///
/// Returns the final engine state (always serializable) plus the
/// [`ClaptonResult`] when the search ran to convergence.
///
/// # Panics
///
/// Panics on a register mismatch, or when `resume` does not belong to this
/// exact search: the state's seed, instance count, and problem fingerprint
/// (a hash of the Hamiltonian, the evaluator backend, the ablation switch,
/// and the engine settings, stamped into [`EngineState::tag`] at start) must
/// all match — a memo cache built against a different objective would
/// silently corrupt the search.
pub fn run_clapton_resumable(
    h: &PauliSum,
    exec: &ExecutableAnsatz,
    config: &ClaptonConfig,
    pool: Option<&Arc<WorkerPool>>,
    resume: Option<EngineState>,
    on_round: &mut dyn FnMut(&EngineState) -> bool,
) -> (EngineState, Option<ClaptonResult>) {
    run_clapton_resumable_with_store(h, exec, config, pool, None, resume, on_round)
}

/// [`run_clapton_resumable`] with an optional persistent loss store: memo
/// misses consult the store before computing, and computed losses are written
/// back, so a repeated search (same Hamiltonian, device, evaluator, ablation)
/// answers its loss queries from disk. The store namespace is
/// [`loss_namespace`] — deliberately independent of the engine
/// hyper-parameters and seed, so differently-configured searches over the
/// same objective share entries. Results and all reported statistics are
/// bit-identical with or without the store (disk hits are recorded as fresh
/// memo inserts).
pub fn run_clapton_resumable_with_store(
    h: &PauliSum,
    exec: &ExecutableAnsatz,
    config: &ClaptonConfig,
    pool: Option<&Arc<WorkerPool>>,
    store: Option<Arc<dyn LossStore>>,
    resume: Option<EngineState>,
    on_round: &mut dyn FnMut(&EngineState) -> bool,
) -> (EngineState, Option<ClaptonResult>) {
    let n = exec.num_logical();
    assert_eq!(h.num_qubits(), n, "Hamiltonian/ansatz register mismatch");
    let t_ansatz = TransformationAnsatz::new(n);
    let mut objective = TransformLoss::new(h, exec, &t_ansatz, config.evaluator);
    if !config.two_qubit_slots {
        // Ablation: freeze the two-qubit slot genes to identity.
        objective = objective.freeze_two_qubit_slots();
    }
    let mut engine = MultiGa::new(t_ansatz.num_genes(), 4, config.engine);
    if let Some(store) = store {
        engine = engine.with_loss_store(store, loss_namespace(h, exec, config));
    }
    let tag = problem_fingerprint(h, config);
    let mut state = match resume {
        Some(state) => {
            assert_eq!(state.seed, config.seed, "resume seed mismatch");
            assert_eq!(
                state.seeds_per_instance.len(),
                config.engine.instances,
                "resume instance-count mismatch"
            );
            assert_eq!(
                state.tag, tag,
                "resume problem-fingerprint mismatch: the checkpoint belongs to a different \
                 Hamiltonian, evaluator backend, or engine configuration"
            );
            state
        }
        None => {
            let mut state = engine.start(config.seed);
            state.tag = tag;
            state
        }
    };
    while !state.finished {
        match pool {
            Some(pool) => engine.step_pooled(&mut state, &objective, pool),
            None => engine.step(&mut state, &objective),
        };
        if !on_round(&state) && !state.finished {
            return (state, None);
        }
    }
    let result = engine.result(&state);
    let transformation =
        Transformation::from_genome(h, &t_ansatz, objective.masked(&result.best.genes));
    let loss_n = objective.loss().loss_n(&transformation.transformed);
    let loss_0 = objective.loss().loss_0(&transformation.transformed);
    let clapton = ClaptonResult {
        transformation,
        ansatz: t_ansatz,
        loss: result.best.loss,
        loss_n,
        loss_0,
        round_bests: result.round_bests,
        rounds: result.rounds,
        unique_evaluations: result.unique_evaluations,
        cache_hits: result.cache_hits,
    };
    (state, Some(clapton))
}

/// The persistent-store namespace for loss entries of this objective: a
/// deterministic FNV-style fingerprint of everything a genome's loss depends
/// on — the Hamiltonian's terms, the noisy transpiled ansatz (via
/// [`NoisyCircuit::fingerprint`], which covers layout, coupling, and the
/// per-qubit noise model), the evaluator backend, and the ablation switch.
///
/// Deliberately excluded: the engine hyper-parameters and seed. The loss of
/// a transformation is a property of the objective alone, so searches with
/// different GA settings over the same problem share one namespace (unlike
/// the resume tag, which must pin the full engine configuration).
pub fn loss_namespace(h: &PauliSum, exec: &ExecutableAnsatz, config: &ClaptonConfig) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(h.num_qubits() as u64);
    for (c, p) in h.iter() {
        mix(c.to_bits());
        for &w in p.x_words() {
            mix(w);
        }
        for &w in p.z_words() {
            mix(w);
        }
    }
    let noisy = NoisyCircuit::from_circuit(&exec.circuit_at_zero(), exec.noise_model())
        .expect("the transpiled ansatz at θ=0 is Clifford");
    mix(noisy.fingerprint());
    match config.evaluator {
        EvaluatorKind::Exact => mix(1),
        EvaluatorKind::Sampled { shots, seed } => {
            mix(2);
            mix(shots as u64);
            mix(seed);
        }
        EvaluatorKind::Dense => mix(3),
    }
    mix(u64::from(config.two_qubit_slots));
    acc
}

/// A deterministic FNV-style fingerprint of everything that shapes the
/// search besides the seed: the Hamiltonian's terms, the evaluator backend,
/// the ablation switch, and the engine hyper-parameters. Stamped into
/// [`EngineState::tag`] so checkpoints refuse to resume a different search.
fn problem_fingerprint(h: &PauliSum, config: &ClaptonConfig) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        acc ^= v;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(h.num_qubits() as u64);
    for (c, p) in h.iter() {
        mix(c.to_bits());
        for &w in p.x_words() {
            mix(w);
        }
        for &w in p.z_words() {
            mix(w);
        }
    }
    match config.evaluator {
        EvaluatorKind::Exact => mix(1),
        EvaluatorKind::Sampled { shots, seed } => {
            mix(2);
            mix(shots as u64);
            mix(seed);
        }
        EvaluatorKind::Dense => mix(3),
    }
    mix(u64::from(config.two_qubit_slots));
    let engine = &config.engine;
    mix(engine.instances as u64);
    mix(engine.top_k as u64);
    mix(engine.max_retry_rounds as u64);
    mix(engine.max_rounds as u64);
    mix(engine.pool_fraction.to_bits());
    mix(engine.ga.population_size as u64);
    mix(engine.ga.generations as u64);
    mix(engine.ga.tournament_size as u64);
    mix(engine.ga.crossover_rate.to_bits());
    mix(engine.ga.mutation_rate.to_bits());
    mix(engine.ga.elite as u64);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LossFunction;
    use clapton_models::{ising, xxz};
    use clapton_noise::NoiseModel;
    use clapton_sim::ground_energy;

    #[test]
    fn clapton_reaches_exact_clifford_optimum_on_small_ising() {
        // For the 3-qubit Ising model at J=0.25 the stabilizer optimum is
        // close to the true ground state; Clapton's L0 should reach the best
        // computational-Clifford value.
        let h = ising(3, 0.25);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let result = run_clapton(&h, &exec, &ClaptonConfig::quick(3));
        // The transformed problem's |0⟩ energy must at least beat the
        // original |0…0⟩ energy (= +3) massively.
        assert!(result.loss_0 <= -3.0, "loss_0 = {}", result.loss_0);
        // And it can never beat the true ground energy.
        assert!(result.loss_0 >= ground_energy(&h) - 1e-9);
        // Spectrum is preserved.
        assert!(
            (ground_energy(&result.transformation.transformed) - ground_energy(&h)).abs() < 1e-8
        );
    }

    #[test]
    fn clapton_beats_untransformed_initial_point_under_noise() {
        let h = xxz(4, 0.5);
        let model = NoiseModel::uniform(4, 2e-3, 1.5e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let untransformed = loss.total(&h);
        let result = run_clapton(&h, &exec, &ClaptonConfig::quick(11));
        assert!(
            result.loss < untransformed,
            "clapton {} vs untransformed {untransformed}",
            result.loss
        );
        // Reported loss decomposition is consistent.
        assert!((result.loss_n + result.loss_0 - result.loss).abs() < 1e-9);
    }

    #[test]
    fn slot_ablation_freezes_two_qubit_genes() {
        let h = xxz(3, 1.0);
        let model = NoiseModel::uniform(3, 2e-3, 1.5e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let mut config = ClaptonConfig::quick(8);
        config.two_qubit_slots = false;
        let result = run_clapton(&h, &exec, &config);
        // Slot genes (positions 2N..2N+pairs) must be identity.
        let slots = &result.transformation.gamma[6..9];
        assert_eq!(slots, &[0, 0, 0]);
        // The full ansatz can only do at least as well (same seed budget may
        // vary, so compare against the ablated loss with a margin).
        let full = run_clapton(&h, &exec, &ClaptonConfig::quick(8));
        assert!(full.loss <= result.loss + 1e-9);
    }

    #[test]
    fn resumable_run_suspends_resumes_and_pools_bit_identically() {
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let config = ClaptonConfig::quick(9);
        let reference = run_clapton(&h, &exec, &config);

        // Pool-backed execution produces the identical result.
        let pool = std::sync::Arc::new(clapton_runtime::WorkerPool::with_workers(2));
        let (_, pooled) =
            run_clapton_resumable(&h, &exec, &config, Some(&pool), None, &mut |_| true);
        assert_eq!(pooled.expect("converged"), reference);

        // Suspend after the first round, round-trip the state through JSON,
        // resume: bit-identical to the uninterrupted run.
        let (suspended, early) =
            run_clapton_resumable(&h, &exec, &config, None, None, &mut |_| false);
        assert!(early.is_none(), "observer suspended the run");
        assert!(!suspended.finished);
        assert_eq!(suspended.rounds(), 1);
        let json = serde_json::to_string(&suspended).expect("state serializes");
        let restored: EngineState = serde_json::from_str(&json).expect("state parses");
        let (final_state, resumed) =
            run_clapton_resumable(&h, &exec, &config, None, Some(restored), &mut |_| true);
        assert!(final_state.finished);
        assert_eq!(resumed.expect("converged"), reference);
    }

    #[test]
    #[should_panic(expected = "problem-fingerprint mismatch")]
    fn resume_rejects_checkpoint_from_different_problem() {
        // Same register, same seed, same engine shape — only the Hamiltonian
        // differs. The stamped fingerprint must catch it.
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let config = ClaptonConfig::quick(5);
        let (state, _) =
            run_clapton_resumable(&ising(3, 0.25), &exec, &config, None, None, &mut |_| false);
        run_clapton_resumable(
            &xxz(3, 0.25),
            &exec,
            &config,
            None,
            Some(state),
            &mut |_| true,
        );
    }

    #[test]
    fn round_bests_monotone_and_deterministic() {
        let h = ising(3, 1.0);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let a = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
        let b = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
        assert_eq!(a.transformation.gamma, b.transformation.gamma);
        assert_eq!(a.loss, b.loss);
        for w in a.round_bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
