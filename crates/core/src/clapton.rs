//! The end-to-end Clapton optimization (§4.1, Figure 4).

use crate::{EvaluatorKind, ExecutableAnsatz, TransformLoss, Transformation};
use clapton_circuits::TransformationAnsatz;
use clapton_ga::{MultiGa, MultiGaConfig};
use clapton_pauli::PauliSum;

/// Configuration of a Clapton run.
#[derive(Debug, Clone)]
pub struct ClaptonConfig {
    /// The multi-GA engine settings (paper: `s=10, m=100, k=20, |S|=100`).
    pub engine: MultiGaConfig,
    /// How `LN` is computed.
    pub evaluator: EvaluatorKind,
    /// Base seed for the search.
    pub seed: u64,
    /// Ablation switch: when `false`, the four-valued two-qubit slots of
    /// Eq. 8 are frozen to identity, leaving a rotations-only transformation
    /// ansatz. The paper argues the slots add the expressiveness needed to
    /// move Pauli components across qubits (§4); this knob quantifies that.
    pub two_qubit_slots: bool,
}

impl ClaptonConfig {
    /// The paper's configuration with the exact evaluator.
    pub fn paper() -> ClaptonConfig {
        ClaptonConfig {
            engine: MultiGaConfig::paper(),
            evaluator: EvaluatorKind::Exact,
            seed: 0,
            two_qubit_slots: true,
        }
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn quick(seed: u64) -> ClaptonConfig {
        ClaptonConfig {
            engine: MultiGaConfig::quick(),
            evaluator: EvaluatorKind::Exact,
            seed,
            two_qubit_slots: true,
        }
    }
}

impl Default for ClaptonConfig {
    fn default() -> ClaptonConfig {
        ClaptonConfig::paper()
    }
}

/// The outcome of a Clapton run.
#[derive(Debug, Clone)]
pub struct ClaptonResult {
    /// The best transformation found.
    pub transformation: Transformation,
    /// The transformation ansatz the genome refers to.
    pub ansatz: TransformationAnsatz,
    /// The best loss `L = LN + L0`.
    pub loss: f64,
    /// `LN` of the winning transformation.
    pub loss_n: f64,
    /// `L0` of the winning transformation.
    pub loss_0: f64,
    /// Global best loss per engine round (non-increasing).
    pub round_bests: Vec<f64>,
    /// Number of engine rounds until convergence.
    pub rounds: usize,
    /// Distinct transformations (canonical genomes) whose loss was
    /// actually computed.
    pub unique_evaluations: u64,
    /// Fitness requests answered by the engine's genome → loss cache.
    pub cache_hits: u64,
}

/// Runs the Clapton search: finds `γ̂ = argmin [LN(γ) + L0(γ)]` over the
/// transformation ansatz and returns `Ĥ = C†(γ̂) H C(γ̂)` (Eq. 5/11).
///
/// The transformation ansatz lives on the *logical* register (the
/// transformation is a change of problem representation); the loss evaluates
/// the transformed Hamiltonian on the *transpiled* ansatz under the device
/// noise model.
///
/// # Example
///
/// ```
/// use clapton_core::{run_clapton, ClaptonConfig, ExecutableAnsatz};
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// // A problem whose ground state is |11⟩: Clapton should find a
/// // transformation making |00⟩ optimal.
/// let h = PauliSum::from_terms(2, vec![
///     (1.0, "ZI".parse().unwrap()),
///     (1.0, "IZ".parse().unwrap()),
/// ]);
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let result = run_clapton(&h, &exec, &ClaptonConfig::quick(1));
/// assert!((result.loss_0 - (-2.0)).abs() < 1e-12);
/// ```
pub fn run_clapton(h: &PauliSum, exec: &ExecutableAnsatz, config: &ClaptonConfig) -> ClaptonResult {
    let n = exec.num_logical();
    assert_eq!(h.num_qubits(), n, "Hamiltonian/ansatz register mismatch");
    let t_ansatz = TransformationAnsatz::new(n);
    let mut objective = TransformLoss::new(h, exec, &t_ansatz, config.evaluator);
    if !config.two_qubit_slots {
        // Ablation: freeze the two-qubit slot genes to identity.
        objective = objective.freeze_two_qubit_slots();
    }
    let engine = MultiGa::new(t_ansatz.num_genes(), 4, config.engine);
    let result = engine.run(config.seed, &objective);
    let transformation =
        Transformation::from_genome(h, &t_ansatz, objective.masked(&result.best.genes));
    let loss_n = objective.loss().loss_n(&transformation.transformed);
    let loss_0 = objective.loss().loss_0(&transformation.transformed);
    ClaptonResult {
        transformation,
        ansatz: t_ansatz,
        loss: result.best.loss,
        loss_n,
        loss_0,
        round_bests: result.round_bests,
        rounds: result.rounds,
        unique_evaluations: result.unique_evaluations,
        cache_hits: result.cache_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LossFunction;
    use clapton_models::{ising, xxz};
    use clapton_noise::NoiseModel;
    use clapton_sim::ground_energy;

    #[test]
    fn clapton_reaches_exact_clifford_optimum_on_small_ising() {
        // For the 3-qubit Ising model at J=0.25 the stabilizer optimum is
        // close to the true ground state; Clapton's L0 should reach the best
        // computational-Clifford value.
        let h = ising(3, 0.25);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let result = run_clapton(&h, &exec, &ClaptonConfig::quick(3));
        // The transformed problem's |0⟩ energy must at least beat the
        // original |0…0⟩ energy (= +3) massively.
        assert!(result.loss_0 <= -3.0, "loss_0 = {}", result.loss_0);
        // And it can never beat the true ground energy.
        assert!(result.loss_0 >= ground_energy(&h) - 1e-9);
        // Spectrum is preserved.
        assert!(
            (ground_energy(&result.transformation.transformed) - ground_energy(&h)).abs() < 1e-8
        );
    }

    #[test]
    fn clapton_beats_untransformed_initial_point_under_noise() {
        let h = xxz(4, 0.5);
        let model = NoiseModel::uniform(4, 2e-3, 1.5e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let untransformed = loss.total(&h);
        let result = run_clapton(&h, &exec, &ClaptonConfig::quick(11));
        assert!(
            result.loss < untransformed,
            "clapton {} vs untransformed {untransformed}",
            result.loss
        );
        // Reported loss decomposition is consistent.
        assert!((result.loss_n + result.loss_0 - result.loss).abs() < 1e-9);
    }

    #[test]
    fn slot_ablation_freezes_two_qubit_genes() {
        let h = xxz(3, 1.0);
        let model = NoiseModel::uniform(3, 2e-3, 1.5e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let mut config = ClaptonConfig::quick(8);
        config.two_qubit_slots = false;
        let result = run_clapton(&h, &exec, &config);
        // Slot genes (positions 2N..2N+pairs) must be identity.
        let slots = &result.transformation.gamma[6..9];
        assert_eq!(slots, &[0, 0, 0]);
        // The full ansatz can only do at least as well (same seed budget may
        // vary, so compare against the ablated loss with a margin).
        let full = run_clapton(&h, &exec, &ClaptonConfig::quick(8));
        assert!(full.loss <= result.loss + 1e-9);
    }

    #[test]
    fn round_bests_monotone_and_deterministic() {
        let h = ising(3, 1.0);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let a = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
        let b = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
        assert_eq!(a.transformation.gamma, b.transformation.gamma);
        assert_eq!(a.loss, b.loss);
        for w in a.round_bests.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
