//! First-class loss evaluators: the objects the GA engine batches over.
//!
//! [`TransformLoss`] is Clapton's objective `L(γ) = LN(γ) + L0(γ)` packaged
//! as a [`LossEvaluator`]: it owns the problem Hamiltonian, the
//! transformation ansatz, the gene mask, and the loss (with its pluggable
//! [`EnergyBackend`](crate::EnergyBackend)). [`CafqaLoss`] is the θ-space
//! analogue for the CAFQA / nCAFQA baselines.
//!
//! Both are pure and `Sync`, so the engine's parallel batch path and
//! genome → loss cache apply transparently.

use crate::{
    transform_hamiltonian, transform_hamiltonian_into, EvaluatorKind, ExecutableAnsatz,
    LossFunction,
};
use clapton_circuits::TransformationAnsatz;
use clapton_eval::LossEvaluator;
use clapton_pauli::PauliSum;
use std::ops::Range;

/// The Clapton search objective over transformation genomes γ.
///
/// Each evaluation conjugates the Hamiltonian through the transformation
/// ansatz at the (masked) genome and scores `LN + L0` on the executable
/// ansatz — exactly the loss of Eq. 5/9/10.
///
/// # Example
///
/// ```
/// use clapton_core::{EvaluatorKind, ExecutableAnsatz, TransformLoss};
/// use clapton_circuits::TransformationAnsatz;
/// use clapton_eval::LossEvaluator;
/// use clapton_noise::NoiseModel;
/// use clapton_pauli::PauliSum;
///
/// let h = PauliSum::from_terms(2, vec![(1.0, "ZI".parse().unwrap())]);
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::untranspiled(2, &model);
/// let ansatz = TransformationAnsatz::new(2);
/// let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
/// // The identity genome scores the untransformed problem.
/// let identity = vec![0u8; ansatz.num_genes()];
/// let single = loss.evaluate(&identity);
/// let batch = loss.evaluate_population(&[identity.clone(), identity]);
/// assert_eq!(batch, vec![single, single]);
/// ```
#[derive(Debug, Clone)]
pub struct TransformLoss<'a> {
    h: &'a PauliSum,
    ansatz: &'a TransformationAnsatz,
    loss: LossFunction<'a>,
    /// Genes frozen to identity (the two-qubit-slot ablation of §4).
    frozen: Option<Range<usize>>,
}

impl<'a> TransformLoss<'a> {
    /// Builds the objective for `h` on `exec`, searching over `ansatz`.
    ///
    /// # Panics
    ///
    /// Panics if the Hamiltonian, executable ansatz, and transformation
    /// ansatz disagree on the register size.
    pub fn new(
        h: &'a PauliSum,
        exec: &'a ExecutableAnsatz,
        ansatz: &'a TransformationAnsatz,
        evaluator: EvaluatorKind,
    ) -> TransformLoss<'a> {
        assert_eq!(
            h.num_qubits(),
            exec.num_logical(),
            "Hamiltonian/ansatz register mismatch"
        );
        assert_eq!(
            ansatz.num_qubits(),
            exec.num_logical(),
            "transformation/executable register mismatch"
        );
        TransformLoss {
            h,
            ansatz,
            loss: LossFunction::new(exec, evaluator),
            frozen: None,
        }
    }

    /// Freezes the four-valued two-qubit slot genes of Eq. 8 to identity,
    /// leaving a rotations-only transformation ansatz (ablation knob).
    #[must_use]
    pub fn freeze_two_qubit_slots(mut self) -> TransformLoss<'a> {
        let rotations = 2 * self.ansatz.num_qubits();
        self.frozen = Some(rotations..rotations + self.ansatz.pairs().len());
        self
    }

    /// The genome after applying the ablation mask.
    pub fn masked(&self, gamma: &[u8]) -> Vec<u8> {
        let mut g = gamma.to_vec();
        if let Some(range) = &self.frozen {
            for i in range.clone() {
                g[i] = 0;
            }
        }
        g
    }

    /// The transformed Hamiltonian `Ĥ = C†(γ) H C(γ)` at a genome.
    pub fn transformed(&self, gamma: &[u8]) -> PauliSum {
        transform_hamiltonian(self.h, &self.ansatz.gates(&self.masked(gamma)))
    }

    /// [`TransformLoss::transformed`] into a caller-owned scratch sum: the
    /// batch path reuses one `Ĥ` buffer across a whole population, so the
    /// per-genome transform performs no term-string allocation.
    pub fn transformed_into(&self, gamma: &[u8], out: &mut PauliSum) {
        transform_hamiltonian_into(self.h, &self.ansatz.gates(&self.masked(gamma)), out);
    }

    /// The underlying loss function (for `LN`/`L0` decompositions).
    pub fn loss(&self) -> &LossFunction<'a> {
        &self.loss
    }
}

impl LossEvaluator for TransformLoss<'_> {
    fn evaluate(&self, gamma: &[u8]) -> f64 {
        self.loss.total(&self.transformed(gamma))
    }

    /// The population-batch fast path: the backend is prepared once per
    /// loss object for the fixed `θ = 0` circuit (noise attachment and, for
    /// the sampled backend, the per-term prep cache hoisted out of the
    /// per-genome loop and shared across batches/rounds/pooled chunks),
    /// then every genome pays only its own transformation and energy — with
    /// one transformed-Hamiltonian scratch buffer reused across the whole
    /// batch, so the per-genome transform allocates no term strings.
    /// Bit-identical to genome-at-a-time [`LossEvaluator::evaluate`] — the
    /// losses are the same arithmetic, minus the reconstruction overhead.
    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        match self.loss.prepared_zero() {
            Some(prepared) => {
                let mut transformed = PauliSum::new(self.h.num_qubits());
                genomes
                    .iter()
                    .map(|gamma| {
                        self.transformed_into(gamma, &mut transformed);
                        self.loss.loss_n_prepared(prepared, &transformed)
                            + self.loss.loss_0(&transformed)
                    })
                    .collect()
            }
            None => genomes.iter().map(|gamma| self.evaluate(gamma)).collect(),
        }
    }

    /// Frozen slot genes do not affect the loss, so the masked genome is the
    /// cache identity — genomes differing only in frozen genes share one
    /// memo entry.
    fn canonical_key(&self, gamma: &[u8]) -> Vec<u8> {
        self.masked(gamma)
    }
}

/// The CAFQA / nCAFQA search objective over quarter-turn indices of θ.
///
/// CAFQA minimizes the noiseless Clifford energy; noise-aware CAFQA adds the
/// `LN` term computed by the configured backend (§5.2).
#[derive(Debug, Clone)]
pub struct CafqaLoss<'a> {
    h: &'a PauliSum,
    exec: &'a ExecutableAnsatz,
    loss: LossFunction<'a>,
    noise_aware: bool,
}

impl<'a> CafqaLoss<'a> {
    /// The plain CAFQA objective: noiseless energy only.
    ///
    /// # Panics
    ///
    /// Panics on a register mismatch between `h` and `exec`.
    pub fn cafqa(h: &'a PauliSum, exec: &'a ExecutableAnsatz) -> CafqaLoss<'a> {
        CafqaLoss::build(h, exec, EvaluatorKind::Exact, false)
    }

    /// The noise-aware nCAFQA objective: `LN(θ) + L0(θ)`.
    ///
    /// # Panics
    ///
    /// Panics on a register mismatch between `h` and `exec`.
    pub fn ncafqa(
        h: &'a PauliSum,
        exec: &'a ExecutableAnsatz,
        evaluator: EvaluatorKind,
    ) -> CafqaLoss<'a> {
        CafqaLoss::build(h, exec, evaluator, true)
    }

    fn build(
        h: &'a PauliSum,
        exec: &'a ExecutableAnsatz,
        evaluator: EvaluatorKind,
        noise_aware: bool,
    ) -> CafqaLoss<'a> {
        assert_eq!(h.num_qubits(), exec.num_logical(), "register mismatch");
        CafqaLoss {
            h,
            exec,
            loss: LossFunction::new(exec, evaluator),
            noise_aware,
        }
    }

    /// The underlying loss function.
    pub fn loss(&self) -> &LossFunction<'a> {
        &self.loss
    }

    /// The noiseless energy of the ansatz at quarter-turn indices.
    pub fn noiseless_energy(&self, indices: &[u8]) -> f64 {
        let theta = self.exec.ansatz().angles_from_indices(indices);
        let circuit = self.exec.circuit(&theta);
        self.loss.noiseless_for_circuit(&circuit, self.h)
    }
}

impl LossEvaluator for CafqaLoss<'_> {
    fn evaluate(&self, indices: &[u8]) -> f64 {
        let theta = self.exec.ansatz().angles_from_indices(indices);
        let circuit = self.exec.circuit(&theta);
        let noiseless = self.loss.noiseless_for_circuit(&circuit, self.h);
        if self.noise_aware {
            self.loss.loss_n_for_circuit(&circuit, self.h) + noiseless
        } else {
            noiseless
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_eval::{CachedEvaluator, ParallelEvaluator};
    use clapton_models::ising;
    use clapton_noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_genomes(n: usize, genes: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..genes).map(|_| rng.gen_range(0..4u8)).collect())
            .collect()
    }

    #[test]
    fn batch_evaluation_is_bit_identical_to_sequential() {
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
        let genomes = random_genomes(24, ansatz.num_genes(), 3);
        let sequential: Vec<f64> = genomes.iter().map(|g| loss.evaluate(g)).collect();
        assert_eq!(loss.evaluate_population(&genomes), sequential);
        // Parallel and cached wrappers preserve the values exactly.
        let parallel = ParallelEvaluator::with_threads(&loss, 4);
        assert_eq!(parallel.evaluate_population(&genomes), sequential);
        let cached = CachedEvaluator::new(&loss);
        assert_eq!(cached.evaluate_population(&genomes), sequential);
        assert_eq!(cached.evaluate_population(&genomes), sequential);
        assert_eq!(cached.stats().misses, genomes.len() as u64);
    }

    #[test]
    fn sampled_population_batch_is_bit_identical_through_every_path() {
        // The sampled backend's prepared batch path (noisy circuit + term
        // cache hoisted) and the pool-backed wrapper must replay the
        // genome-at-a-time losses exactly: per-candidate seeding is content
        // hashed and term-prep cache hits consume no randomness.
        use crate::{PooledEvaluator, WorkerPool};
        use std::sync::Arc;
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss = TransformLoss::new(
            &h,
            &exec,
            &ansatz,
            EvaluatorKind::Sampled {
                shots: 96,
                seed: 11,
            },
        );
        let genomes = random_genomes(16, ansatz.num_genes(), 5);
        let sequential: Vec<f64> = genomes.iter().map(|g| loss.evaluate(g)).collect();
        assert_eq!(loss.evaluate_population(&genomes), sequential);
        // A second batch shares the loss object's one prepared backend —
        // its term cache is warm now — and still replays exactly.
        assert_eq!(loss.evaluate_population(&genomes), sequential);
        let pool = Arc::new(WorkerPool::with_workers(2));
        let pooled = PooledEvaluator::new(&loss, pool);
        assert_eq!(pooled.evaluate_population(&genomes), sequential);
    }

    #[test]
    fn transformed_into_matches_transformed() {
        let h = ising(4, 0.5);
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let ansatz = TransformationAnsatz::new(4);
        let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
        let mut scratch = clapton_pauli::PauliSum::new(4);
        for gamma in random_genomes(12, ansatz.num_genes(), 21) {
            loss.transformed_into(&gamma, &mut scratch);
            assert_eq!(scratch, loss.transformed(&gamma));
        }
    }

    #[test]
    fn identity_genome_scores_untransformed_problem() {
        let h = ising(3, 1.0);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
        let identity = vec![0u8; ansatz.num_genes()];
        let expected = loss.loss().total(&h);
        assert!((loss.evaluate(&identity) - expected).abs() < 1e-12);
    }

    #[test]
    fn frozen_slots_ignore_slot_genes() {
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss =
            TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact).freeze_two_qubit_slots();
        let mut gamma = vec![0u8; ansatz.num_genes()];
        let base = loss.evaluate(&gamma);
        // Twiddling a frozen slot gene must not change the loss.
        gamma[2 * 3] = 3;
        assert_eq!(loss.evaluate(&gamma), base);
        assert_eq!(loss.masked(&gamma)[2 * 3], 0);
    }

    #[test]
    fn frozen_slots_share_cache_entries() {
        // Genomes differing only in frozen genes must hit one memo entry.
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 1e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss =
            TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact).freeze_two_qubit_slots();
        let cached = CachedEvaluator::new(&loss);
        let mut a = vec![1u8; ansatz.num_genes()];
        let mut b = a.clone();
        a[2 * 3] = 0;
        b[2 * 3] = 3; // frozen slot gene differs
        assert_eq!(cached.evaluate(&a), cached.evaluate(&b));
        assert_eq!(cached.stats().misses, 1, "one canonical entry");
        assert_eq!(cached.stats().hits, 1);
    }

    #[test]
    fn cafqa_loss_is_noiseless_energy() {
        let h = ising(3, 0.5);
        let exec = ExecutableAnsatz::untranspiled(3, &NoiseModel::noiseless(3));
        let loss = CafqaLoss::cafqa(&h, &exec);
        let genomes = random_genomes(8, exec.ansatz().num_parameters(), 9);
        for g in &genomes {
            assert_eq!(loss.evaluate(g), loss.noiseless_energy(g));
        }
    }

    #[test]
    fn ncafqa_adds_noisy_term() {
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 5e-3, 2e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let plain = CafqaLoss::cafqa(&h, &exec);
        let aware = CafqaLoss::ncafqa(&h, &exec, EvaluatorKind::Exact);
        let g = vec![1u8; exec.ansatz().num_parameters()];
        // LN is finite and distinct from zero under real noise, so the two
        // objectives must differ by exactly that term.
        let ln = aware
            .loss()
            .loss_n_for_circuit(&exec.circuit(&exec.ansatz().angles_from_indices(&g)), &h);
        assert!((aware.evaluate(&g) - (plain.evaluate(&g) + ln)).abs() < 1e-12);
    }
}
