//! Device-aware executable ansätze: transpile once, rebuild for any θ.

use clapton_circuits::{
    chain_layout, route_with_layout, Circuit, CouplingMap, HardwareEfficientAnsatz,
};
use clapton_error::ClaptonError;
use clapton_noise::NoiseModel;
use clapton_pauli::{PauliString, PauliSum};
use std::collections::BTreeMap;

/// The VQE ansatz `A(θ)` prepared for execution on a concrete device:
/// logical chain layout, SWAP routing, and compaction onto the physical
/// qubits actually used, with the device noise model restricted accordingly.
///
/// Transpilation happens **before** Clapton (§5.2.2: "this so-called
/// transpilation step happens first to produce the transpiled ansatz A′,
/// which is then fed to the Clapton scheme"). Routing decisions depend only
/// on the gate structure, so the layout computed at `θ = 0` is reused to
/// rebuild `A'(θ)` for any parameter vector.
///
/// # Example
///
/// ```
/// use clapton_circuits::CouplingMap;
/// use clapton_core::ExecutableAnsatz;
/// use clapton_noise::NoiseModel;
///
/// let coupling = CouplingMap::line(6);
/// let model = NoiseModel::uniform(6, 1e-3, 1e-2, 2e-2);
/// let exec = ExecutableAnsatz::on_device(4, &coupling, &model).unwrap();
/// assert_eq!(exec.num_qubits(), 4); // compacted to the used line
/// let at_zero = exec.circuit_at_zero();
/// assert!(at_zero.is_clifford());
/// ```
#[derive(Debug, Clone)]
pub struct ExecutableAnsatz {
    ansatz: HardwareEfficientAnsatz,
    /// Compact coupling map routing happens on (None = no routing).
    coupling: Option<CouplingMap>,
    /// Initial layout logical → physical (device indices, for reporting).
    layout: Vec<usize>,
    /// Initial layout logical → compact (what routing uses).
    compact_layout: Vec<usize>,
    /// Physical → compact re-indexing.
    compact_of_phys: BTreeMap<usize, usize>,
    /// Logical qubit → compact index at circuit end (measurement mapping).
    final_compact: Vec<usize>,
    /// Noise model on the compact register.
    noise: NoiseModel,
    num_compact: usize,
}

impl ExecutableAnsatz {
    /// Transpiles an `n`-qubit circular ansatz onto a device.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Placement`] if the device cannot host an `n`-qubit
    /// chain.
    pub fn on_device(
        n: usize,
        coupling: &CouplingMap,
        device_model: &NoiseModel,
    ) -> Result<ExecutableAnsatz, ClaptonError> {
        assert_eq!(
            coupling.num_qubits(),
            device_model.num_qubits(),
            "coupling/model size mismatch"
        );
        let ansatz = HardwareEfficientAnsatz::new(n);
        let layout =
            chain_layout(coupling, n).map_err(|detail| ClaptonError::Placement { detail })?;
        // Routing is confined to the induced subgraph of the chain qubits:
        // SWAPping the ring closure through off-chain spectator qubits would
        // silently grow the active register (and drag in uncalibrated
        // qubits), so the executable uses exactly the N chain qubits.
        let compact_of_phys: BTreeMap<usize, usize> =
            layout.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        if compact_of_phys.len() != n {
            return Err(ClaptonError::Placement {
                detail: "chain layout assigned duplicate physical qubits".to_string(),
            });
        }
        let sub_edges: Vec<(usize, usize)> = coupling
            .edges()
            .iter()
            .filter_map(
                |&(a, b)| match (compact_of_phys.get(&a), compact_of_phys.get(&b)) {
                    (Some(&ca), Some(&cb)) => Some((ca, cb)),
                    _ => None,
                },
            )
            .collect();
        let sub_coupling = CouplingMap::new(n, sub_edges);
        let compact_layout: Vec<usize> = layout.iter().map(|p| compact_of_phys[p]).collect();
        let routed = route_with_layout(&ansatz.circuit_at_zero(), &sub_coupling, &compact_layout);
        let num_compact = n;
        // Restrict the noise model to the chain qubits.
        let mut noise = NoiseModel::noiseless(num_compact);
        let mut p2_sum = 0.0;
        let mut p2_count = 0usize;
        for (&pa, &ca) in &compact_of_phys {
            noise.set_p1(ca, device_model.p1(pa));
            noise.set_readout(ca, device_model.readout(pa));
            noise.set_t1(ca, device_model.t1(pa));
            for (&pb, &cb) in &compact_of_phys {
                if pa < pb && coupling.are_adjacent(pa, pb) {
                    let p = device_model.p2(pa, pb);
                    noise.set_p2(ca, cb, p);
                    p2_sum += p;
                    p2_count += 1;
                }
            }
        }
        if p2_count > 0 {
            noise.set_p2_default(p2_sum / p2_count as f64);
        }
        noise.set_durations(device_model.durations());
        let final_compact = routed.final_layout.clone();
        Ok(ExecutableAnsatz {
            ansatz,
            coupling: Some(sub_coupling),
            layout,
            compact_layout,
            compact_of_phys,
            final_compact,
            noise,
            num_compact,
        })
    }

    /// An untranspiled ansatz: logical = physical (used for the scaling study
    /// of §6.3 where "transpilation is not required").
    ///
    /// # Panics
    ///
    /// Panics if the model register differs from `n`.
    pub fn untranspiled(n: usize, model: &NoiseModel) -> ExecutableAnsatz {
        assert_eq!(model.num_qubits(), n, "model size mismatch");
        ExecutableAnsatz {
            ansatz: HardwareEfficientAnsatz::new(n),
            coupling: None,
            layout: (0..n).collect(),
            compact_layout: (0..n).collect(),
            compact_of_phys: (0..n).map(|q| (q, q)).collect(),
            final_compact: (0..n).collect(),
            noise: model.clone(),
            num_compact: n,
        }
    }

    /// The logical ansatz.
    pub fn ansatz(&self) -> &HardwareEfficientAnsatz {
        &self.ansatz
    }

    /// Number of logical qubits `N`.
    pub fn num_logical(&self) -> usize {
        self.ansatz.num_qubits()
    }

    /// Size of the compact physical register the circuits act on.
    pub fn num_qubits(&self) -> usize {
        self.num_compact
    }

    /// The restricted device noise model.
    pub fn noise_model(&self) -> &NoiseModel {
        &self.noise
    }

    /// The physical chain layout chosen for the logical register.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// The compact index of a physical device qubit, if it is part of the
    /// executable register.
    pub fn compact_index(&self, physical: usize) -> Option<usize> {
        self.compact_of_phys.get(&physical).copied()
    }

    /// Builds the executable circuit `A'(θ)` on the compact register.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len() != 4N`.
    pub fn circuit(&self, theta: &[f64]) -> Circuit {
        let logical = self.ansatz.circuit(theta);
        match &self.coupling {
            Some(coupling) => route_with_layout(&logical, coupling, &self.compact_layout).circuit,
            None => logical,
        }
    }

    /// The executable circuit at the Clapton initial point `θ = 0`.
    pub fn circuit_at_zero(&self) -> Circuit {
        self.circuit(&vec![0.0; self.ansatz.num_parameters()])
    }

    /// Whether logical terms map onto the compact register unchanged
    /// (`map_term` is a copy): true for untranspiled ansätze and for routed
    /// circuits whose final layout happens to be the identity. Lets hot
    /// paths skip the per-term re-indexing copy.
    pub fn mapping_is_identity(&self) -> bool {
        self.num_compact == self.num_logical()
            && self.final_compact.iter().enumerate().all(|(i, &c)| i == c)
    }

    /// Maps a logical Pauli term onto the compact register according to
    /// where each logical qubit sits at measurement time.
    ///
    /// # Panics
    ///
    /// Panics if the term is not on the logical register.
    pub fn map_term(&self, p: &PauliString) -> PauliString {
        assert_eq!(p.num_qubits(), self.num_logical(), "term register");
        let mut out = PauliString::identity(self.num_compact);
        for q in p.support() {
            out.set(self.final_compact[q], p.get(q));
        }
        out
    }

    /// Maps a logical Hamiltonian onto the compact register.
    pub fn map_hamiltonian(&self, h: &PauliSum) -> PauliSum {
        let mut out = PauliSum::new(self.num_compact);
        for (c, p) in h.iter() {
            out.push(c, self.map_term(p));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_pauli::Pauli;
    use clapton_sim::StateVector;

    #[test]
    fn untranspiled_is_identity_mapping() {
        let model = NoiseModel::uniform(4, 1e-3, 1e-2, 0.0);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        assert_eq!(exec.num_qubits(), 4);
        let p = PauliString::single(4, 2, Pauli::Z);
        assert_eq!(exec.map_term(&p), p);
        assert_eq!(exec.circuit_at_zero().num_qubits(), 4);
    }

    #[test]
    fn on_device_compacts_to_used_qubits() {
        let coupling = CouplingMap::line(12);
        let model = NoiseModel::uniform(12, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::on_device(5, &coupling, &model).unwrap();
        // The 5-qubit chain on a line uses exactly 5 physical qubits.
        assert_eq!(exec.num_qubits(), 5);
        assert_eq!(exec.noise_model().num_qubits(), 5);
    }

    #[test]
    fn circuit_structure_is_theta_independent() {
        let coupling = CouplingMap::line(8);
        let model = NoiseModel::uniform(8, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::on_device(4, &coupling, &model).unwrap();
        let zero = exec.circuit_at_zero();
        let theta: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
        let other = exec.circuit(&theta);
        assert_eq!(zero.len(), other.len());
        // Same gate skeleton: two-qubit gates at identical positions.
        for (a, b) in zero.gates().iter().zip(other.gates()) {
            assert_eq!(a.is_two_qubit(), b.is_two_qubit());
            assert_eq!(a.qubits(), b.qubits());
        }
    }

    #[test]
    fn measurement_mapping_tracks_routing_swaps() {
        // On a line, the circular ansatz's wrap-around CX forces SWAPs; the
        // final measurement mapping must follow the displaced qubits. Verify
        // physically: energy of the transpiled circuit w.r.t. the mapped
        // Hamiltonian equals the logical energy.
        let n = 5;
        let coupling = CouplingMap::line(8);
        let model = NoiseModel::noiseless(8);
        let exec = ExecutableAnsatz::on_device(n, &coupling, &model).unwrap();
        let theta: Vec<f64> = (0..4 * n).map(|i| (i as f64) * 0.37).collect();
        let logical_state = StateVector::from_circuit(&exec.ansatz().circuit(&theta));
        let compact_state = StateVector::from_circuit(&exec.circuit(&theta));
        let mut h = PauliSum::new(n);
        h.push(
            0.7,
            PauliString::from_sparse(n, [(0, Pauli::X), (4, Pauli::X)]),
        );
        h.push(
            -1.2,
            PauliString::from_sparse(n, [(1, Pauli::Z), (2, Pauli::Z)]),
        );
        h.push(0.3, PauliString::single(n, 3, Pauli::Y));
        let mapped = exec.map_hamiltonian(&h);
        assert!(
            (logical_state.energy(&h) - compact_state.energy(&mapped)).abs() < 1e-9,
            "transpiled energy must match logical energy"
        );
    }

    #[test]
    fn noise_model_restriction_pulls_device_values() {
        let coupling = CouplingMap::line(6);
        let mut model = NoiseModel::uniform(6, 1e-4, 5e-3, 1e-2);
        model.set_p1(2, 9e-4);
        model.set_t1(3, 33e-6);
        let exec = ExecutableAnsatz::on_device(6, &coupling, &model).unwrap();
        // Layout on a 6-line with 6 qubits is the whole line (some order).
        let pos2 = exec.layout().iter().position(|&p| p == 2);
        let pos3 = exec.layout().iter().position(|&p| p == 3);
        assert!(pos2.is_some() && pos3.is_some());
        // The compact model must contain the per-qubit overrides somewhere.
        let p1s: Vec<f64> = (0..6).map(|q| exec.noise_model().p1(q)).collect();
        assert!(p1s.iter().any(|&p| (p - 9e-4).abs() < 1e-15));
        let t1s: Vec<f64> = (0..6).map(|q| exec.noise_model().t1(q)).collect();
        assert!(t1s.iter().any(|&t| (t - 33e-6).abs() < 1e-15));
    }

    #[test]
    fn rejects_too_small_device() {
        let coupling = CouplingMap::line(3);
        let model = NoiseModel::noiseless(3);
        assert!(ExecutableAnsatz::on_device(5, &coupling, &model).is_err());
    }
}
