//! The Clapton Hamiltonian transformation `Ĥ = C†(γ) H C(γ)` (§3.2).

use clapton_circuits::{Circuit, TransformationAnsatz};
use clapton_pauli::PauliSum;
use clapton_stabilizer::{CliffordGate, CliffordMap};
use serde::{Deserialize, Serialize};

/// Anticonjugates every term of `h` through the Clifford circuit `C`
/// (gates in application order): `Ĥ = C† H C`, with sign flips absorbed into
/// the coefficients (Eq. 6).
///
/// Because Clifford conjugation maps Pauli strings to signed Pauli strings,
/// the transformed problem has exactly the same term count and structure —
/// and the same spectrum, since the transformation is unitary.
///
/// # Example
///
/// ```
/// use clapton_core::transform_hamiltonian;
/// use clapton_pauli::PauliSum;
/// use clapton_stabilizer::CliffordGate;
///
/// // Conjugating Z by H gives X: (H)† Z (H) = X.
/// let h = PauliSum::from_terms(1, vec![(2.0, "Z".parse().unwrap())]);
/// let t = transform_hamiltonian(&h, &[CliffordGate::H(0)]);
/// assert_eq!(t.coefficient_of(&"X".parse().unwrap()), Some(2.0));
/// ```
pub fn transform_hamiltonian(h: &PauliSum, gates: &[CliffordGate]) -> PauliSum {
    let mut out = PauliSum::new(h.num_qubits());
    transform_hamiltonian_into(h, gates, &mut out);
    out
}

/// [`transform_hamiltonian`] writing into `out`, reusing its term storage.
///
/// The GA scores thousands of genomes against one Hamiltonian, and every
/// score starts with this transform; routing the per-term conjugation
/// through [`CliffordMap::conjugate_into`] into a caller-owned sum means
/// that after the first call, the per-genome transform allocates no term
/// strings at all (the transformed problem always has exactly `M` terms on
/// the same register — the structure is closed, Eq. 6).
pub fn transform_hamiltonian_into(h: &PauliSum, gates: &[CliffordGate], out: &mut PauliSum) {
    let map = CliffordMap::anticonjugation(h.num_qubits(), gates);
    h.map_terms_into(|p, image| map.conjugate_into(p, image), out);
}

/// A found Clapton transformation: the genome, the Clifford circuit
/// `Ĉ = C(γ̂)` and the transformed problem `Ĥ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transformation {
    /// The genome `γ̂` over the transformation ansatz.
    pub gamma: Vec<u8>,
    /// The number of logical qubits.
    pub num_qubits: usize,
    /// The transformed Hamiltonian `Ĥ = Ĉ† H Ĉ`.
    pub transformed: PauliSum,
}

impl Transformation {
    /// Builds the transformation for a genome over `ansatz`.
    pub fn from_genome(
        h: &PauliSum,
        ansatz: &TransformationAnsatz,
        gamma: Vec<u8>,
    ) -> Transformation {
        let gates = ansatz.gates(&gamma);
        Transformation {
            num_qubits: h.num_qubits(),
            transformed: transform_hamiltonian(h, &gates),
            gamma,
        }
    }

    /// The identity transformation (`Ĥ = H`).
    pub fn identity(h: &PauliSum) -> Transformation {
        Transformation {
            gamma: Vec::new(),
            num_qubits: h.num_qubits(),
            transformed: h.clone(),
        }
    }

    /// The Clifford gates of `Ĉ` for a given ansatz (the genome is stored;
    /// the circuit is rebuilt on demand).
    pub fn gates(&self, ansatz: &TransformationAnsatz) -> Vec<CliffordGate> {
        if self.gamma.is_empty() {
            Vec::new()
        } else {
            ansatz.gates(&self.gamma)
        }
    }

    /// The recovery circuit `Ĉ` as a parametric [`Circuit`]: a state
    /// `|ψ̂⟩` found for `Ĥ` corresponds to `|ψ⟩ = Ĉ|ψ̂⟩` for the original
    /// problem (§3.2).
    pub fn recovery_circuit(&self, ansatz: &TransformationAnsatz) -> Circuit {
        if self.gamma.is_empty() {
            Circuit::new(self.num_qubits)
        } else {
            ansatz.circuit(&self.gamma)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_pauli::PauliString;
    use clapton_sim::{ground_energy, StateVector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn identity_transformation_is_noop() {
        let h = PauliSum::from_terms(2, vec![(1.0, ps("XX")), (0.5, ps("ZI"))]);
        let t = transform_hamiltonian(&h, &[]);
        assert_eq!(t, h);
    }

    #[test]
    fn cx_transform_matches_eq_3() {
        // Anticonjugation by CX(0→1): X0 ← CX† X0 CX... the anticonjugated
        // image of X0X1 is X0 (inverse direction of Eq. 3).
        let h = PauliSum::from_terms(2, vec![(1.0, ps("XX"))]);
        let t = transform_hamiltonian(&h, &[CliffordGate::Cx(0, 1)]);
        assert_eq!(t.coefficient_of(&ps("XI")), Some(1.0));
    }

    #[test]
    fn transformation_preserves_spectrum() {
        // Ground energies before and after random transformations agree
        // (unitary equivalence) — the core invariant of Clapton.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 4;
        let h = PauliSum::from_terms(
            n,
            (0..8).map(|_| (rng.gen_range(-1.0..1.0), PauliString::random(n, &mut rng))),
        );
        let e0 = ground_energy(&h);
        let ansatz = TransformationAnsatz::new(n);
        for _ in 0..5 {
            let gamma: Vec<u8> = (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4))
                .collect();
            let t = Transformation::from_genome(&h, &ansatz, gamma);
            assert_eq!(t.transformed.num_terms(), h.num_terms());
            let e0_t = ground_energy(&t.transformed);
            assert!((e0 - e0_t).abs() < 1e-8, "spectrum changed: {e0} vs {e0_t}");
        }
    }

    #[test]
    fn recovery_circuit_translates_states() {
        // ⟨ψ̂|Ĥ|ψ̂⟩ = ⟨Ĉψ̂|H|Ĉψ̂⟩ for random states ψ̂ (end of §3.2).
        let mut rng = StdRng::seed_from_u64(21);
        let n = 3;
        let h = PauliSum::from_terms(
            n,
            (0..6).map(|_| (rng.gen_range(-1.0..1.0), PauliString::random(n, &mut rng))),
        );
        let ansatz = TransformationAnsatz::new(n);
        let gamma: Vec<u8> = (0..ansatz.num_genes())
            .map(|_| rng.gen_range(0..4))
            .collect();
        let t = Transformation::from_genome(&h, &ansatz, gamma);
        // Random state from a random circuit.
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.push(clapton_circuits::Gate::Ry(
                q,
                rng.gen_range(0.0..std::f64::consts::TAU),
            ));
        }
        prep.push(clapton_circuits::Gate::Cx(0, 1));
        prep.push(clapton_circuits::Gate::Cx(1, 2));
        let psi_hat = StateVector::from_circuit(&prep);
        let e_hat = psi_hat.energy(&t.transformed);
        // |ψ⟩ = Ĉ|ψ̂⟩.
        let mut full = prep.clone();
        full.append(&t.recovery_circuit(&ansatz));
        let psi = StateVector::from_circuit(&full);
        let e = psi.energy(&h);
        assert!((e - e_hat).abs() < 1e-9, "{e} vs {e_hat}");
    }

    #[test]
    fn transformation_composes_with_sign_absorption() {
        // S† X S = ... anticonjugation by S of X: S† X S = -Y... verify the
        // coefficient sign is carried into the sum.
        let h = PauliSum::from_terms(1, vec![(3.0, ps("X"))]);
        let t = transform_hamiltonian(&h, &[CliffordGate::S(0)]);
        // S† X S: conjugation by S†, i.e. apply Sdg-rule: X → -Y.
        assert_eq!(t.coefficient_of(&ps("Y")), Some(-3.0));
    }

    #[test]
    fn serde_round_trip() {
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZZ"))]);
        let ansatz = TransformationAnsatz::new(2);
        let t = Transformation::from_genome(&h, &ansatz, vec![0; ansatz.num_genes()]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Transformation = serde_json::from_str(&json).unwrap();
        assert_eq!(back.gamma, t.gamma);
        assert_eq!(back.transformed, t.transformed);
    }
}
