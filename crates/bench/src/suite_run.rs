//! The concurrent, checkpointed benchmark-suite orchestrator behind the
//! `suite-runner` CLI.
//!
//! One *suite run* executes the paper's benchmark suite (12 instances at
//! `N = 10`, Figure 5) as concurrent jobs on a shared persistent
//! [`WorkerPool`]: the scheduler interleaves the jobs' population batches
//! fairly, every GA round is checkpointed atomically into the run
//! directory, and a run killed at any instant resumes bit-identically —
//! finished jobs are skipped, in-flight jobs continue from their last round
//! snapshot.
//!
//! Determinism contract: the per-job result artifacts
//! (`<job>.result.json`) depend only on the manifest (suite + seed +
//! profile). Interrupting and resuming arbitrarily, re-running a completed
//! suite, or changing pool sizes never changes a single byte of them.

use crate::Options;
use clapton_core::{
    run_clapton_resumable, ClaptonConfig, EngineState, EvaluatorKind, ExecutableAnsatz,
};
use clapton_error::ClaptonError;
use clapton_models::benchmark_suite;
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;
use clapton_runtime::{
    artifact_slug, EventKind, JobContext, JobScheduler, RunDirectory, RunEvent, RunManifest,
    ScheduledJob, WorkerPool,
};
use clapton_service::{
    CacheStore, ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, Report,
    SuiteProblem, UniformNoise,
};
use clapton_sim::ground_energy;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// The uniform device model the suite scores against (the same rates as the
/// `population_batch` bench, so suite wall-clock tracks the bench rows).
const SUITE_NOISE: (f64, f64, f64) = (3e-4, 8e-3, 2e-2);

/// Configuration of one suite run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Effort scale and base seed (the CLI's `--quick`/`--full`/`--seed`).
    pub options: Options,
    /// Physics-suite register size; `10` includes the chemistry benchmarks
    /// for the paper's full 12-instance suite.
    pub qubits: usize,
    /// Global GA-round budget: after this many rounds (summed over all
    /// jobs), every job suspends at its next checkpoint. `None` runs to
    /// convergence. This is the deterministic stand-in for `kill -9` — both
    /// leave only atomic round snapshots behind.
    pub halt_after_rounds: Option<u64>,
}

impl SuiteConfig {
    /// Human-readable effort name, recorded in the run manifest.
    pub fn profile(&self) -> &'static str {
        match self.options.effort {
            0 => "quick",
            1 => "default",
            _ => "full",
        }
    }

    /// The declarative form of the hard-coded suite: one [`JobSpec`] per
    /// benchmark, carrying the same noise, engine, and derived per-job seed
    /// the legacy path hard-wires. `suite-runner --emit-specs` writes this
    /// list; `--specs` consumes it (or any hand-edited variant).
    pub fn specs(&self) -> Vec<JobSpec> {
        let (p1, p2, readout) = SUITE_NOISE;
        benchmark_suite(self.qubits)
            .iter()
            .enumerate()
            .map(|(index, bench)| {
                let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
                    name: bench.name.clone(),
                    qubits: self.qubits,
                }));
                spec.noise = NoiseSpec::Uniform(UniformNoise {
                    p1,
                    p2,
                    readout,
                    t1: None,
                });
                spec.methods = vec![MethodSpec::Clapton];
                spec.engine = EngineSpec::from_config(self.options.engine());
                spec.seed = job_seed(self.options.seed, index);
                spec
            })
            .collect()
    }

    /// The manifest this configuration stamps onto its run directory.
    pub fn manifest(&self) -> RunManifest {
        RunManifest {
            jobs: benchmark_suite(self.qubits)
                .iter()
                .map(|b| b.name.clone())
                .collect(),
            seed: self.options.seed,
            profile: format!("{}-n{}", self.profile(), self.qubits),
        }
    }
}

/// The deterministic result artifact of one suite job
/// (`<job>.result.json`). Contains no wall-clock data, so interrupted and
/// uninterrupted runs produce byte-identical artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteRecord {
    /// Benchmark name.
    pub name: String,
    /// The job's derived seed (base seed mixed with the job index).
    pub seed: u64,
    /// Exact ground energy of the problem.
    pub e0: f64,
    /// Best Clapton loss `L = LN + L0`.
    pub loss: f64,
    /// `LN` of the winning transformation.
    pub loss_n: f64,
    /// `L0` of the winning transformation.
    pub loss_0: f64,
    /// Engine rounds to convergence.
    pub rounds: usize,
    /// Distinct genomes evaluated.
    pub unique_evaluations: u64,
    /// Fitness requests answered by the genome → loss memo.
    pub cache_hits: u64,
    /// Global best loss per round.
    pub round_bests: Vec<f64>,
    /// The winning transformation genome `γ̂`.
    pub gamma: Vec<u8>,
}

/// What happened to one job in one `run_suite` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Benchmark name.
    pub name: String,
    /// Rounds completed so far (across all invocations).
    pub rounds: usize,
    /// Whether the job now has a final result.
    pub completed: bool,
    /// Whether the result already existed and the job was skipped.
    pub skipped: bool,
    /// Wall-clock spent in this invocation.
    pub wall_ms: u128,
}

/// The summary of one `run_suite` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteOutcome {
    /// Per-job outcomes, in suite order.
    pub jobs: Vec<JobOutcome>,
}

impl SuiteOutcome {
    /// Jobs that have a final result.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.completed).count()
    }

    /// Jobs suspended with a checkpoint.
    pub fn suspended(&self) -> usize {
        self.jobs.len() - self.completed()
    }

    /// Whether the whole suite is done.
    pub fn is_complete(&self) -> bool {
        self.suspended() == 0
    }
}

/// The per-job seed: the base seed mixed with the (stable) job index, so
/// jobs are decorrelated but the whole suite reproduces from one `--seed`.
fn job_seed(base: u64, index: usize) -> u64 {
    base ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs (or resumes) a whole benchmark suite concurrently on `pool`.
///
/// Jobs stream [`RunEvent`]s to `events` while running. Returns after every
/// job either finished or suspended on the round budget.
///
/// # Errors
///
/// Fails if the run directory belongs to a different configuration (suite,
/// seed, or profile mismatch — resuming would corrupt it), or on artifact
/// I/O errors.
pub fn run_suite(
    dir: &RunDirectory,
    config: &SuiteConfig,
    pool: Arc<WorkerPool>,
    events: Option<Sender<RunEvent>>,
) -> io::Result<SuiteOutcome> {
    let suite = benchmark_suite(config.qubits);
    let manifest = config.manifest();
    match dir.manifest()? {
        Some(existing) if existing != manifest => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "run at {} was created with seed {} / profile {:?}; refusing to resume it \
                     with seed {} / profile {:?}",
                    dir.path().display(),
                    existing.seed,
                    existing.profile,
                    manifest.seed,
                    manifest.profile
                ),
            ));
        }
        Some(_) => {}
        None => dir.write_manifest(&manifest)?,
    }
    let engine = config.options.engine();
    let budget: Option<Arc<AtomicI64>> = config
        .halt_after_rounds
        .map(|rounds| Arc::new(AtomicI64::new(rounds as i64)));
    let scheduler = JobScheduler::new(pool);
    let jobs: Vec<ScheduledJob<'_, io::Result<JobOutcome>>> = suite
        .iter()
        .enumerate()
        .map(|(index, bench)| {
            let dir = dir.clone();
            let budget = budget.clone();
            let name = bench.name.clone();
            let hamiltonian = &bench.hamiltonian;
            let seed = job_seed(config.options.seed, index);
            ScheduledJob::new(bench.name.clone(), move |ctx: &JobContext| {
                let config = ClaptonConfig {
                    engine,
                    evaluator: EvaluatorKind::Exact,
                    seed,
                    two_qubit_slots: true,
                };
                run_one_job(ctx, &dir, &name, hamiltonian, &config, budget.as_deref())
            })
        })
        .collect();
    let outcomes = scheduler.run_all(jobs, events);
    outcomes
        .into_iter()
        .collect::<io::Result<Vec<JobOutcome>>>()
        .map(|jobs| SuiteOutcome { jobs })
}

/// Runs one benchmark instance with round-level checkpointing.
fn run_one_job(
    ctx: &JobContext,
    dir: &RunDirectory,
    name: &str,
    hamiltonian: &PauliSum,
    config: &ClaptonConfig,
    budget: Option<&AtomicI64>,
) -> io::Result<JobOutcome> {
    let started = Instant::now();
    let slug = artifact_slug(name);
    let result_artifact = format!("{slug}.result.json");
    let checkpoint_artifact = format!("{slug}.checkpoint.json");
    if let Some(existing) = dir.read_json::<SuiteRecord>(&result_artifact)? {
        ctx.emit(EventKind::Finished(format!(
            "already complete: loss {:.6} in {} rounds",
            existing.loss, existing.rounds
        )));
        return Ok(JobOutcome {
            name: name.to_string(),
            rounds: existing.rounds,
            completed: true,
            skipped: true,
            wall_ms: started.elapsed().as_millis(),
        });
    }
    let resume = dir.read_json::<EngineState>(&checkpoint_artifact)?;
    let resumed_rounds = resume.as_ref().map_or(0, EngineState::rounds);
    if budget.is_some_and(|b| b.load(Ordering::Relaxed) <= 0) {
        // The global budget was exhausted before this job got a round in.
        ctx.emit(EventKind::Suspended(resumed_rounds));
        return Ok(JobOutcome {
            name: name.to_string(),
            rounds: resumed_rounds,
            completed: false,
            skipped: false,
            wall_ms: started.elapsed().as_millis(),
        });
    }
    let n = hamiltonian.num_qubits();
    let (p1, p2, readout) = SUITE_NOISE;
    let model = NoiseModel::uniform(n, p1, p2, readout);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let mut checkpoint_error: Option<io::Error> = None;
    let (state, result) = run_clapton_resumable(
        hamiltonian,
        &exec,
        config,
        Some(ctx.pool()),
        resume,
        &mut |state| {
            if let Err(e) = dir.write_json(&checkpoint_artifact, state) {
                checkpoint_error = Some(e);
                return false;
            }
            ctx.emit(EventKind::Checkpointed(state.rounds()));
            if let Some(best) = &state.global_best {
                ctx.emit(EventKind::Round(state.rounds(), best.loss));
            }
            budget.is_none_or(|b| b.fetch_sub(1, Ordering::Relaxed) > 1)
        },
    );
    if let Some(e) = checkpoint_error {
        return Err(e);
    }
    match result {
        Some(clapton) => {
            let record = SuiteRecord {
                name: name.to_string(),
                seed: config.seed,
                e0: ground_energy(hamiltonian),
                loss: clapton.loss,
                loss_n: clapton.loss_n,
                loss_0: clapton.loss_0,
                rounds: clapton.rounds,
                unique_evaluations: clapton.unique_evaluations,
                cache_hits: clapton.cache_hits,
                round_bests: clapton.round_bests.clone(),
                gamma: clapton.transformation.gamma.clone(),
            };
            dir.write_json(&result_artifact, &record)?;
            dir.remove(&checkpoint_artifact)?;
            ctx.emit(EventKind::Finished(format!(
                "loss {:.6} in {} rounds",
                record.loss, record.rounds
            )));
            Ok(JobOutcome {
                name: name.to_string(),
                rounds: record.rounds,
                completed: true,
                skipped: false,
                wall_ms: started.elapsed().as_millis(),
            })
        }
        None => {
            ctx.emit(EventKind::Suspended(state.rounds()));
            Ok(JobOutcome {
                name: name.to_string(),
                rounds: state.rounds(),
                completed: false,
                skipped: false,
                wall_ms: started.elapsed().as_millis(),
            })
        }
    }
}

/// One entry of a spec-driven suite outcome: the job's display name and
/// its result — a [`Report`] on completion, [`ClaptonError::Suspended`]
/// when the round budget halted it.
pub type SpecJobOutcome = (String, Result<Report, ClaptonError>);

/// Runs a suite described by a list of [`JobSpec`]s through the
/// [`ClaptonService`] front door: each job gets its own artifact directory
/// under `root` (spec + per-round checkpoints + final `report.json`), and
/// re-running the same spec list resumes suspended jobs and answers
/// completed ones from their persisted reports — byte-identical to an
/// uninterrupted run.
///
/// `halt_after_rounds` overrides every job's round budget for this
/// invocation (the spec-file analogue of the legacy `--halt-after-rounds`).
///
/// Returns `(display name, per-job result)` in spec order; a suspended job
/// comes back as [`ClaptonError::Suspended`].
///
/// # Errors
///
/// The first invalid spec (nothing runs), or an artifact-directory
/// conflict.
pub fn run_spec_suite(
    root: impl Into<PathBuf>,
    specs: Vec<JobSpec>,
    pool: Arc<WorkerPool>,
    events: Option<Sender<RunEvent>>,
    halt_after_rounds: Option<u64>,
) -> Result<Vec<SpecJobOutcome>, ClaptonError> {
    run_spec_suite_with_cache(root, specs, pool, events, halt_after_rounds, None)
}

/// [`run_spec_suite`] with an optional persistent result store attached:
/// the service answers already-solved specs and already-scored genomes from
/// `cache` and writes fresh results back to it. Results stay byte-identical
/// to the cache-less path — a disk hit enters the in-memory memo exactly
/// like a fresh computation, so every counter in the reports matches.
///
/// # Errors
///
/// The first invalid spec (nothing runs), or an artifact-directory
/// conflict.
pub fn run_spec_suite_with_cache(
    root: impl Into<PathBuf>,
    mut specs: Vec<JobSpec>,
    pool: Arc<WorkerPool>,
    events: Option<Sender<RunEvent>>,
    halt_after_rounds: Option<u64>,
    cache: Option<Arc<CacheStore>>,
) -> Result<Vec<SpecJobOutcome>, ClaptonError> {
    if let Some(budget) = halt_after_rounds {
        for spec in &mut specs {
            spec.budget = Some(budget);
        }
    }
    let names: Vec<String> = specs.iter().map(JobSpec::display_name).collect();
    let mut service = ClaptonService::with_pool(pool).with_artifacts(root)?;
    if let Some(cache) = cache {
        service = service.with_cache(cache);
    }
    let results = service.run_all(specs, events)?;
    Ok(names.into_iter().zip(results).collect())
}
