//! Experiment harness shared by the per-figure binaries.
//!
//! Each binary regenerates one figure of the paper's evaluation:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig2` | Figure 2 — key result on one benchmark |
//! | `fig5` | Figure 5 — initial/final energies and η across backends × benchmarks |
//! | `fig6` | Figure 6 — VQE convergence traces (XXZ J=0.25 / J=1.00) |
//! | `fig7` | Figure 7 — η vs gate-error sweep |
//! | `fig8` | Figure 8 — η vs measurement-error sweep |
//! | `fig9` | Figure 9 — Clapton/CAFQA optimization-time scaling with N |
//!
//! All binaries accept `--quick` (reduced hyper-parameters; the default is a
//! middle ground) and `--full` (paper-scale settings), plus `--seed <u64>`.

pub mod chaos;
pub mod shard;
pub mod suite_run;

pub use chaos::{chaos_schedule, run_chaos_suite, schedule_spec, ChaosOutcome};
pub use shard::{
    merge_shards, read_queue, run_shard_worker, shard_status, write_queue, MergedJob,
    MergedManifest, ShardJobOutcome, ShardOutcome, ShardStatusRow, ShardWorkerConfig,
    MERGED_MANIFEST_ARTIFACT, QUEUE_ARTIFACT,
};
pub use suite_run::{
    run_spec_suite, run_spec_suite_with_cache, run_suite, JobOutcome, SuiteConfig, SuiteOutcome,
    SuiteRecord,
};

use clapton_core::{
    relative_improvement, run_cafqa, run_clapton, run_ncafqa, CafqaResult, ClaptonConfig,
    ClaptonResult, EvaluatorKind, ExecutableAnsatz, LossFunction,
};
use clapton_devices::FakeBackend;
use clapton_ga::{GaConfig, MultiGaConfig};
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;
use clapton_sim::{ground_energy, DeviceEvaluator};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Effort scale: 0 = quick, 1 = default, 2 = full (paper scale).
    pub effort: u8,
    /// Base seed.
    pub seed: u64,
}

impl Options {
    /// Parses `--quick`, `--full` and `--seed <u64>` from `std::env::args`.
    pub fn from_args() -> Options {
        let mut options = Options { effort: 1, seed: 0 };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => options.effort = 0,
                "--full" => options.effort = 2,
                "--seed" => {
                    i += 1;
                    options.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a u64 argument"));
                }
                other => panic!("unknown argument {other} (try --quick / --full / --seed N)"),
            }
            i += 1;
        }
        options
    }

    /// The GA engine settings for this effort level.
    pub fn engine(&self) -> MultiGaConfig {
        match self.effort {
            0 => MultiGaConfig::quick(),
            1 => MultiGaConfig {
                instances: 4,
                top_k: 10,
                max_retry_rounds: 1,
                max_rounds: 12,
                pool_fraction: 0.5,
                parallel: true,
                ga: GaConfig {
                    population_size: 50,
                    generations: 40,
                    ..GaConfig::default()
                },
            },
            _ => MultiGaConfig::paper(),
        }
    }

    /// The number of VQE iterations for this effort level.
    pub fn vqe_iterations(&self) -> usize {
        match self.effort {
            0 => 30,
            1 => 120,
            _ => 300,
        }
    }
}

/// The three energies the paper reports for one solution (Figures 2 and 5):
/// noiseless (⋄), Clifford noise model (◦), full device model (×).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTriple {
    /// Noiseless evaluation (lower bound; `L0`-like).
    pub noiseless: f64,
    /// Clifford (Pauli-channel) noise-model evaluation (`LN`).
    pub clifford_model: f64,
    /// Full density-matrix device-model evaluation.
    pub device: f64,
}

/// One initialization method's outcome on a benchmark.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// "CAFQA", "nCAFQA" or "Clapton".
    pub method: &'static str,
    /// Energies of the initial point.
    pub initial: EnergyTriple,
    /// The starting parameters for the follow-up VQE.
    pub theta0: Vec<f64>,
    /// The Hamiltonian the VQE optimizes (transformed for Clapton).
    pub vqe_hamiltonian: PauliSum,
}

/// A prepared benchmark instance on a backend.
pub struct Instance {
    /// Benchmark name.
    pub name: String,
    /// The original problem Hamiltonian.
    pub hamiltonian: PauliSum,
    /// Exact ground energy `E0`.
    pub e0: f64,
    /// Fully-mixed-state energy `E_ρ = tr(H)/2^N`.
    pub e_mixed: f64,
    /// The transpiled executable ansatz.
    pub exec: ExecutableAnsatz,
}

impl Instance {
    /// Prepares a benchmark on a backend: transpiles the ansatz and computes
    /// the exact references.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot host the benchmark.
    pub fn prepare(name: &str, hamiltonian: &PauliSum, backend: &FakeBackend) -> Instance {
        let n = hamiltonian.num_qubits();
        let exec = ExecutableAnsatz::on_device(n, backend.coupling_map(), &backend.noise_model())
            .unwrap_or_else(|e| panic!("cannot place {name} on {}: {e}", backend.name()));
        Instance {
            name: name.to_string(),
            hamiltonian: hamiltonian.clone(),
            e0: ground_energy(hamiltonian),
            e_mixed: hamiltonian.identity_coefficient(),
            exec,
        }
    }

    /// Prepares a benchmark with a plain (untranspiled) noise model.
    pub fn prepare_untranspiled(
        name: &str,
        hamiltonian: &PauliSum,
        model: &NoiseModel,
    ) -> Instance {
        let exec = ExecutableAnsatz::untranspiled(hamiltonian.num_qubits(), model);
        Instance {
            name: name.to_string(),
            hamiltonian: hamiltonian.clone(),
            e0: ground_energy(hamiltonian),
            e_mixed: hamiltonian.identity_coefficient(),
            exec,
        }
    }

    /// Evaluates the device-model energy of `A'(θ)` w.r.t. a logical
    /// Hamiltonian, optionally under a different ("hardware") noise model.
    pub fn device_energy(&self, h: &PauliSum, theta: &[f64], model: Option<&NoiseModel>) -> f64 {
        let circuit = self.exec.circuit(theta);
        let mapped = self.exec.map_hamiltonian(h);
        DeviceEvaluator::run(&circuit, model.unwrap_or_else(|| self.exec.noise_model()))
            .energy(&mapped)
    }

    /// Runs all three initialization methods and evaluates their initial
    /// points in the three noise environments.
    pub fn run_methods(&self, options: &Options) -> Vec<MethodOutcome> {
        let loss = LossFunction::new(&self.exec, EvaluatorKind::Exact);
        let zeros = vec![0.0; self.exec.ansatz().num_parameters()];
        // CAFQA.
        let cafqa = run_cafqa(
            &self.hamiltonian,
            &self.exec,
            &options.engine(),
            options.seed,
        );
        let cafqa_outcome = self.theta_outcome("CAFQA", &loss, &cafqa);
        // nCAFQA.
        let ncafqa = run_ncafqa(
            &self.hamiltonian,
            &self.exec,
            &options.engine(),
            EvaluatorKind::Exact,
            options.seed + 1,
        );
        let ncafqa_outcome = self.theta_outcome("nCAFQA", &loss, &ncafqa);
        // Clapton.
        let clapton = run_clapton(
            &self.hamiltonian,
            &self.exec,
            &ClaptonConfig {
                engine: options.engine(),
                evaluator: EvaluatorKind::Exact,
                seed: options.seed + 2,
                two_qubit_slots: true,
            },
        );
        let clapton_outcome = MethodOutcome {
            method: "Clapton",
            initial: EnergyTriple {
                noiseless: clapton.loss_0,
                clifford_model: clapton.loss_n,
                device: self.device_energy(&clapton.transformation.transformed, &zeros, None),
            },
            theta0: zeros,
            vqe_hamiltonian: clapton.transformation.transformed.clone(),
        };
        vec![cafqa_outcome, ncafqa_outcome, clapton_outcome]
    }

    /// Builds the outcome record for a θ-space method (CAFQA/nCAFQA).
    fn theta_outcome(
        &self,
        method: &'static str,
        loss: &LossFunction<'_>,
        result: &CafqaResult,
    ) -> MethodOutcome {
        let circuit = self.exec.circuit(&result.theta);
        MethodOutcome {
            method,
            initial: EnergyTriple {
                noiseless: result.energy_noiseless,
                clifford_model: loss.loss_n_for_circuit(&circuit, &self.hamiltonian),
                device: self.device_energy(&self.hamiltonian, &result.theta, None),
            },
            theta0: result.theta.clone(),
            vqe_hamiltonian: self.hamiltonian.clone(),
        }
    }

    /// Runs Clapton only (used by the sweep figures).
    pub fn run_clapton_only(&self, options: &Options) -> ClaptonResult {
        run_clapton(
            &self.hamiltonian,
            &self.exec,
            &ClaptonConfig {
                engine: options.engine(),
                evaluator: EvaluatorKind::Exact,
                seed: options.seed + 2,
                two_qubit_slots: true,
            },
        )
    }
}

/// Shared sweep driver for Figures 7 and 8: for every `(benchmark, T1,
/// sweep point)` builds the 27-qubit uniform noise model via `model_for`,
/// transpiles the ten-qubit ansatz onto the `toronto` topology (§5.2.3),
/// runs nCAFQA and Clapton, and prints η(initial) under the full device
/// model.
pub fn run_sweep<F>(
    options: &Options,
    benchmarks: &[(&str, &PauliSum)],
    t1s: &[f64],
    sweep: &[f64],
    model_for: F,
) where
    F: Fn(f64, f64) -> NoiseModel,
{
    let backend = FakeBackend::toronto();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "benchmark", "p", "T1[us]", "E_nCAFQA(x)", "E_Clapton(x)", "eta"
    );
    for &(name, h) in benchmarks {
        for &t1 in t1s {
            for &p in sweep {
                let model = model_for(p, t1);
                let exec =
                    ExecutableAnsatz::on_device(h.num_qubits(), backend.coupling_map(), &model)
                        .expect("toronto hosts ten qubits");
                let instance = Instance {
                    name: name.to_string(),
                    hamiltonian: h.clone(),
                    e0: ground_energy(h),
                    e_mixed: h.identity_coefficient(),
                    exec,
                };
                let zeros = vec![0.0; instance.exec.ansatz().num_parameters()];
                let ncafqa = run_ncafqa(
                    h,
                    &instance.exec,
                    &options.engine(),
                    EvaluatorKind::Exact,
                    options.seed + 1,
                );
                let clapton = instance.run_clapton_only(options);
                let e_ncafqa = instance.device_energy(h, &ncafqa.theta, None);
                let e_clapton =
                    instance.device_energy(&clapton.transformation.transformed, &zeros, None);
                let eta = relative_improvement(instance.e0, e_ncafqa, e_clapton);
                println!(
                    "{:<14} {:>10.2e} {:>10.0} {:>12.5} {:>12.5} {:>8.3}",
                    name,
                    p,
                    t1 * 1e6,
                    e_ncafqa,
                    e_clapton,
                    eta
                );
            }
        }
    }
}

/// Least-squares fit of `y ≈ c2·x² + c1·x + c0`; returns `(c2, c1, c0)`.
///
/// # Panics
///
/// Panics with fewer than three points.
pub fn quadratic_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert!(xs.len() >= 3 && xs.len() == ys.len(), "need ≥3 points");
    // Normal equations for the 3-parameter polynomial.
    let n = xs.len() as f64;
    let (mut sx, mut sx2, mut sx3, mut sx4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let x2 = x * x;
        sx += x;
        sx2 += x2;
        sx3 += x2 * x;
        sx4 += x2 * x2;
        sy += y;
        sxy += x * y;
        sx2y += x2 * y;
    }
    // Solve the 3x3 system [ [sx4 sx3 sx2], [sx3 sx2 sx], [sx2 sx n] ] c = b.
    let m = [[sx4, sx3, sx2], [sx3, sx2, sx], [sx2, sx, n]];
    let b = [sx2y, sxy, sy];
    let det = |m: &[[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(&m);
    assert!(d.abs() > 1e-12, "singular fit system");
    let replace = |col: usize| {
        let mut mm = m;
        for r in 0..3 {
            mm[r][col] = b[r];
        }
        det(&mm) / d
    };
    (replace(0), replace(1), replace(2))
}

/// Least-squares fit of `y ≈ c1·x + c0`; returns `(c1, c0)`.
///
/// # Panics
///
/// Panics with fewer than two points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(xs.len() >= 2 && xs.len() == ys.len(), "need ≥2 points");
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sx2: f64 = xs.iter().map(|x| x * x).sum();
    let c1 = (n * sxy - sx * sy) / (n * sx2 - sx * sx);
    (c1, (sy - c1 * sx) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_models::ising;

    #[test]
    fn quadratic_fit_recovers_coefficients() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 0.5 * x * x + 2.0 * x - 3.0).collect();
        let (c2, c1, c0) = quadratic_fit(&xs, &ys);
        assert!((c2 - 0.5).abs() < 1e-9);
        assert!((c1 - 2.0).abs() < 1e-9);
        assert!((c0 + 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (c1, c0) = linear_fit(&xs, &ys);
        assert!((c1 - 2.0).abs() < 1e-12);
        assert!((c0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instance_preparation_and_methods_smoke() {
        let backend = FakeBackend::nairobi();
        let options = Options { effort: 0, seed: 1 };
        let h = ising(4, 0.25);
        let inst = Instance::prepare("ising4", &h, &backend);
        assert!(inst.e0 < inst.e_mixed);
        let outcomes = inst.run_methods(&options);
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            // Noiseless value lower-bounds the noisy evaluations... not in
            // general, but all must be finite and above E0 - ε.
            assert!(o.initial.device.is_finite());
            assert!(o.initial.noiseless >= inst.e0 - 1e-6, "{}", o.method);
        }
        // Clapton's device energy should beat CAFQA's on this noisy backend.
        let cafqa = &outcomes[0];
        let clapton = &outcomes[2];
        assert!(
            clapton.initial.device <= cafqa.initial.device + 1e-9,
            "clapton {} vs cafqa {}",
            clapton.initial.device,
            cafqa.initial.device
        );
    }
}
