//! Sharded suite execution: many worker processes, one queue directory.
//!
//! A *shard run* is a run directory holding a `queue.json` spec list plus
//! one artifact subdirectory per job. Any number of worker processes (the
//! children of `suite-runner --workers N`, or external processes attaching
//! with `--join <dir>`, possibly on other hosts over a shared filesystem)
//! repeatedly sweep the queue, claim unfinished jobs through the lease
//! protocol (`claim.json`, see `clapton_runtime::WorkQueue`), and execute
//! them through the [`ClaptonService`] front door. A worker SIGKILLed
//! mid-job leaves a staling lease; a surviving worker takes the job over
//! and resumes it from its last round checkpoint bit-identically.
//!
//! When the queue drains, [`merge_shards`] folds the per-job artifacts into
//! one `suite_manifest.json` ordered by job id — byte-stable regardless of
//! which worker ran what, how often workers died, or how many there were.

use clapton_error::ClaptonError;
use clapton_runtime::{Artifact, CancelToken, RunDirectory, RunEvent, RunRegistry, WorkerPool};
use clapton_service::{CacheStore, ClaptonService, JobArtifactState, JobSpec, Report};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

/// The spec list a shard run's workers sweep, written once by the
/// coordinating parent (or by hand for multi-host runs).
pub const QUEUE_ARTIFACT: &str = "queue.json";

/// The deterministic merged suite manifest (see [`merge_shards`]).
pub const MERGED_MANIFEST_ARTIFACT: &str = "suite_manifest.json";

/// Writes the shard run's `queue.json` spec list (atomic, idempotent).
///
/// # Errors
///
/// [`ClaptonError::Io`] when the run directory cannot be written.
pub fn write_queue(root: &Path, specs: &[JobSpec]) -> Result<(), ClaptonError> {
    let dir = RunDirectory::create(root)?;
    dir.write_json(QUEUE_ARTIFACT, specs)?;
    Ok(())
}

/// Reads the shard run's `queue.json` spec list.
///
/// # Errors
///
/// [`ClaptonError::Parse`] when the file is missing,
/// [`ClaptonError::CorruptArtifact`] when it exists but fails integrity
/// verification (the corrupt bytes are quarantined; rewrite the queue with
/// [`write_queue`] to recover — per-job artifacts are untouched), and
/// [`ClaptonError::Io`] for real I/O failures.
pub fn read_queue(root: &Path) -> Result<Vec<JobSpec>, ClaptonError> {
    let dir = RunDirectory::create(root)?;
    match dir.load::<Vec<JobSpec>>(QUEUE_ARTIFACT)? {
        Artifact::Valid(specs) => Ok(specs),
        Artifact::Missing => Err(ClaptonError::Parse {
            what: format!("{}/{QUEUE_ARTIFACT}", root.display()),
            detail: "no queue.json — this directory is not a shard run (create one with \
                         suite-runner --workers N, or write the spec list yourself)"
                .to_string(),
        }),
        Artifact::Corrupt { quarantined_to, .. } => Err(ClaptonError::CorruptArtifact {
            artifact: format!("{}/{QUEUE_ARTIFACT}", root.display()),
            quarantined_to,
        }),
    }
}

/// How one shard worker behaves (see [`run_shard_worker`]).
#[derive(Debug, Clone)]
pub struct ShardWorkerConfig {
    /// Worker identity claims are made under (`None` → the per-process
    /// default).
    pub worker_id: Option<String>,
    /// Lease TTL: how stale a peer's heartbeat must be before this worker
    /// takes its job over.
    pub lease_ttl: Duration,
    /// How long to sleep between sweeps when every unfinished job is leased
    /// by a live peer.
    pub poll: Duration,
    /// Per-job round budget for this invocation (the spec-mode
    /// `--halt-after-rounds` semantics); suspended jobs are not re-entered
    /// within the same invocation.
    pub halt_after_rounds: Option<u64>,
    /// How many times this worker re-attempts a job whose execution failed
    /// before persisting a terminal `failed` state. Transient faults —
    /// injected failpoint errors, a quarantined-then-recovered artifact, a
    /// flaky shared filesystem — cost a retry from the last checkpoint, not
    /// the job.
    pub max_job_attempts: usize,
    /// Persistent content-addressed result store this worker answers repeat
    /// work from (and writes back to). `None` keeps the cold path — the
    /// default, so chaos and determinism suites pin cold-path behavior
    /// unless a caller opts in.
    pub cache: Option<Arc<CacheStore>>,
}

impl Default for ShardWorkerConfig {
    fn default() -> ShardWorkerConfig {
        ShardWorkerConfig {
            worker_id: None,
            lease_ttl: clapton_runtime::DEFAULT_LEASE_TTL,
            poll: Duration::from_millis(100),
            halt_after_rounds: None,
            max_job_attempts: 3,
            cache: None,
        }
    }
}

/// What one job looked like when [`run_shard_worker`] returned.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJobOutcome {
    /// Job id (artifact-directory name).
    pub job: String,
    /// Display name.
    pub name: String,
    /// Terminal state: `"done"`, `"cancelled"`, `"failed"`, or
    /// `"suspended"` (budget-halted this invocation).
    pub state: String,
}

/// Summary of one worker invocation over the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Per-job outcomes, ordered by job id.
    pub jobs: Vec<ShardJobOutcome>,
}

impl ShardOutcome {
    /// Jobs with a final report.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.state == "done").count()
    }

    /// Whether every job ended with a report.
    pub fn is_complete(&self) -> bool {
        self.completed() == self.jobs.len()
    }
}

/// Sweeps the shard queue at `root` until every job is terminal (or
/// budget-suspended), claiming unfinished jobs through the lease protocol
/// and executing them on `pool`.
///
/// Jobs leased by a live peer are skipped; jobs whose lease went stale are
/// taken over and resumed from their checkpoints. The worker exits when a
/// full sweep finds nothing left to do.
///
/// # Errors
///
/// The first invalid spec, an artifact conflict, or artifact I/O failure.
/// Per-job *execution* failures do not abort the sweep — they are persisted
/// as terminal `failed` states and reported in the outcome.
pub fn run_shard_worker(
    root: &Path,
    pool: Arc<WorkerPool>,
    events: Option<Sender<RunEvent>>,
    config: &ShardWorkerConfig,
) -> Result<ShardOutcome, ClaptonError> {
    let mut specs = read_queue(root)?;
    if let Some(budget) = config.halt_after_rounds {
        for spec in &mut specs {
            spec.budget = Some(budget);
        }
    }
    let mut service = ClaptonService::with_pool(pool)
        .with_artifacts(root)?
        .with_lease_ttl(config.lease_ttl);
    if let Some(worker_id) = &config.worker_id {
        service = service.with_worker_id(worker_id.clone());
    }
    if let Some(cache) = &config.cache {
        service = service.with_cache(Arc::clone(cache));
    }
    let queue = RunRegistry::open(root)?.work_queue(service.worker_id(), config.lease_ttl);
    let mut suspended_here: HashSet<String> = HashSet::new();
    let mut attempts: HashMap<String, usize> = HashMap::new();
    loop {
        let mut pending = 0usize;
        let mut open = 0usize;
        let mut progressed = false;
        for spec in &specs {
            let admitted = service.admit(spec.clone())?;
            match service.inspect(&admitted)? {
                JobArtifactState::Done(_)
                | JobArtifactState::Cancelled { .. }
                | JobArtifactState::Failed { .. } => continue,
                JobArtifactState::Fresh | JobArtifactState::InFlight => {}
            }
            open += 1;
            let name = admitted.job().name.clone();
            if suspended_here.contains(&name) {
                continue;
            }
            pending += 1;
            if service.leased_by_peer(&admitted)?.is_some() {
                continue; // a live peer is on it
            }
            match service.execute_admitted(&admitted, events.clone(), CancelToken::new()) {
                Ok(_) => progressed = true,
                Err(ClaptonError::Suspended { .. }) => {
                    suspended_here.insert(name);
                    progressed = true;
                }
                Err(ClaptonError::Cancelled { .. }) => progressed = true,
                // Lost the claim race to a peer between the peer-lease check
                // and acquisition — their job now.
                Err(ClaptonError::Leased { .. }) => {}
                Err(e) => {
                    // Execution failures are presumed transient until the
                    // attempt budget is spent: the next sweep resumes from
                    // the job's last valid checkpoint.
                    let tried = attempts.entry(name).or_insert(0);
                    *tried += 1;
                    if *tried >= config.max_job_attempts {
                        service.mark_failed(&admitted, &e.to_string())?;
                    }
                    progressed = true;
                }
            }
        }
        queue.set_depth(open);
        if pending == 0 {
            break;
        }
        if !progressed {
            std::thread::sleep(config.poll);
        }
    }
    // Final status sweep, ordered by job id like everything queue-shaped.
    let mut jobs: Vec<ShardJobOutcome> = specs
        .iter()
        .map(|spec| {
            let admitted = service.admit(spec.clone())?;
            let job = admitted
                .artifact_dir()
                .and_then(|p| p.file_name())
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| admitted.job().name.clone());
            let state = match service.inspect(&admitted)? {
                JobArtifactState::Done(_) => "done",
                JobArtifactState::Cancelled { .. } => "cancelled",
                JobArtifactState::Failed { .. } => "failed",
                JobArtifactState::Fresh | JobArtifactState::InFlight => "suspended",
            };
            Ok(ShardJobOutcome {
                job,
                name: admitted.job().name.clone(),
                state: state.to_string(),
            })
        })
        .collect::<Result<_, ClaptonError>>()?;
    jobs.sort_by(|a, b| a.job.cmp(&b.job));
    Ok(ShardOutcome { jobs })
}

/// One entry of the merged suite manifest: only deterministic fields — the
/// job id, its identity, its terminal state, and its report — never
/// wall-clock, worker identity, or completion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedJob {
    /// Job id (artifact-directory name) — the manifest's sort key.
    pub job: String,
    /// Display name.
    pub name: String,
    /// The job's seed.
    pub seed: u64,
    /// `"done"`, `"cancelled"`, `"failed"`, or `"pending"`.
    pub state: String,
    /// The persisted report, for `"done"` jobs.
    pub report: Option<Report>,
}

/// The deterministic merged result of a shard run (`suite_manifest.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergedManifest {
    /// Per-job entries, ordered by job id.
    pub jobs: Vec<MergedJob>,
}

impl MergedManifest {
    /// Jobs with a final report.
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.state == "done").count()
    }

    /// Whether every job ended with a report.
    pub fn is_complete(&self) -> bool {
        self.completed() == self.jobs.len()
    }
}

/// Folds a shard run's per-job artifacts into one `suite_manifest.json`.
///
/// The manifest is ordered by job id and contains only deterministic
/// fields, so it is byte-stable: any worker count, any interleaving, any
/// number of mid-run kills — the same bytes, as long as the jobs reached
/// the same terminal states.
///
/// # Errors
///
/// The first invalid spec, or artifact I/O failure.
pub fn merge_shards(root: &Path, specs: &[JobSpec]) -> Result<MergedManifest, ClaptonError> {
    // Inspection only: a zero-worker pool never spins threads.
    let service =
        ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(0))).with_artifacts(root)?;
    let mut jobs = Vec::with_capacity(specs.len());
    for spec in specs {
        let admitted = service.admit(spec.clone())?;
        let job = admitted
            .artifact_dir()
            .and_then(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| admitted.job().name.clone());
        let (state, report) = match service.inspect(&admitted)? {
            JobArtifactState::Done(report) => ("done", Some(*report)),
            JobArtifactState::Cancelled { .. } => ("cancelled", None),
            JobArtifactState::Failed { .. } => ("failed", None),
            JobArtifactState::Fresh | JobArtifactState::InFlight => ("pending", None),
        };
        jobs.push(MergedJob {
            job,
            name: admitted.job().name.clone(),
            seed: admitted.job().config.seed,
            state: state.to_string(),
            report,
        });
    }
    jobs.sort_by(|a, b| a.job.cmp(&b.job));
    let manifest = MergedManifest { jobs };
    RunDirectory::create(root)?.write_json(MERGED_MANIFEST_ARTIFACT, &manifest)?;
    Ok(manifest)
}

/// One row of the operator-facing `--status` table: terminal/artifact state
/// plus live lease state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatusRow {
    /// Job id (artifact-directory name).
    pub job: String,
    /// Display name.
    pub name: String,
    /// `"done"`, `"cancelled"`, `"failed"`, `"in-flight"`, or `"fresh"`.
    pub state: String,
    /// Worker currently leasing the job, if any.
    pub owner: Option<String>,
    /// Milliseconds since the lease holder's last heartbeat.
    pub heartbeat_age_ms: Option<u64>,
    /// Whether that heartbeat is older than the lease TTL.
    pub stale: bool,
    /// GA rounds banked in the job's checkpoint (or final report).
    pub rounds: Option<usize>,
    /// Memo-answered fitness requests so far (checkpoint while running,
    /// final report once done).
    pub cache_hits: Option<u64>,
}

/// Snapshots per-job lease state for `suite-runner --status`, ordered by
/// job id.
///
/// # Errors
///
/// The first invalid spec, or artifact I/O failure.
pub fn shard_status(
    root: &Path,
    specs: &[JobSpec],
    lease_ttl: Duration,
) -> Result<Vec<ShardStatusRow>, ClaptonError> {
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(0)))
        .with_artifacts(root)?
        .with_lease_ttl(lease_ttl);
    let mut rows = Vec::with_capacity(specs.len());
    for spec in specs {
        let admitted = service.admit(spec.clone())?;
        let job = admitted
            .artifact_dir()
            .and_then(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| admitted.job().name.clone());
        let state = match service.inspect(&admitted)? {
            JobArtifactState::Done(_) => "done",
            JobArtifactState::Cancelled { .. } => "cancelled",
            JobArtifactState::Failed { .. } => "failed",
            JobArtifactState::InFlight => "in-flight",
            JobArtifactState::Fresh => "fresh",
        };
        let lease = service.lease_view(&admitted)?;
        rows.push(ShardStatusRow {
            job,
            name: admitted.job().name.clone(),
            state: state.to_string(),
            owner: lease.owner,
            heartbeat_age_ms: lease.heartbeat_age_ms,
            stale: lease.stale.unwrap_or(false),
            rounds: lease.rounds,
            cache_hits: lease.cache_hits,
        });
    }
    rows.sort_by(|a, b| a.job.cmp(&b.job));
    Ok(rows)
}
