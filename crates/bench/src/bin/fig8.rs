//! Figure 8 — relative improvement η (Clapton vs nCAFQA, initial point)
//! when sweeping the measurement (readout misassignment) error `p` for
//! several thermal-relaxation times T1.
//!
//! Benchmarks and topology as in Figure 7; gate errors are off so the
//! readout channel is isolated (§5.2.3).

use clapton_bench::{run_sweep, Options};
use clapton_models::{ising, molecular, Molecule};
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;

fn main() {
    let options = Options::from_args();
    let readout_errors: Vec<f64> = match options.effort {
        0 => vec![5e-3, 9.5e-2],
        1 => vec![5e-3, 3.5e-2, 9.5e-2],
        _ => vec![5e-3, 2e-2, 3.5e-2, 5e-2, 6.5e-2, 8e-2, 9.5e-2],
    };
    let t1s: Vec<f64> = match options.effort {
        0 => vec![150e-6],
        1 => vec![50e-6, 250e-6],
        _ => vec![50e-6, 150e-6, 250e-6],
    };
    let owned: Vec<(String, PauliSum)> = {
        let mut v = vec![("ising(J=1.00)".to_string(), ising(10, 1.0))];
        if options.effort >= 1 {
            v.push(("H2O(l=1.0)".to_string(), molecular(Molecule::H2O, 1.0)));
            v.push(("LiH(l=4.5)".to_string(), molecular(Molecule::LiH, 4.5)));
        }
        if options.effort >= 2 {
            v.push(("H6(l=1.0)".to_string(), molecular(Molecule::H6, 1.0)));
        }
        v
    };
    let benchmarks: Vec<(&str, &PauliSum)> = owned.iter().map(|(n, h)| (n.as_str(), h)).collect();
    run_sweep(&options, &benchmarks, &t1s, &readout_errors, |p, t1| {
        // Measurement-error sweep: gates noiseless (§5.2.3).
        let mut model = NoiseModel::uniform(27, 0.0, 0.0, p);
        model.set_t1_uniform(t1);
        model
    });
}
