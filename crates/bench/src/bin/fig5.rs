//! Figure 5 — the main evaluation: initial and final (post-VQE) energies and
//! relative improvements η across backends × benchmarks.
//!
//! For every backend and benchmark, runs CAFQA, nCAFQA and Clapton, then a
//! follow-up VQE from each initialization, and reports:
//!
//! * normalized energies of initial and final points under device evaluation,
//! * η(initial) and η(final) of Clapton over both baselines,
//! * geometric means per backend (the figure's inset `η̄`).
//!
//! On `hanoi` the final points are additionally evaluated on the perturbed
//! "hardware" variant (the paper's real-device experiments).

use clapton_bench::{Instance, Options};
use clapton_core::{geometric_mean, normalized_energy, relative_improvement};
use clapton_devices::FakeBackend;
use clapton_models::{benchmark_suite, physics_suite};
use clapton_vqe::{run_vqe, VqeConfig};

fn main() {
    let options = Options::from_args();
    let backends: Vec<FakeBackend> = match options.effort {
        0 => vec![FakeBackend::nairobi()],
        1 => vec![FakeBackend::nairobi(), FakeBackend::toronto()],
        _ => FakeBackend::all(),
    };
    for backend in &backends {
        run_backend(backend, &options);
    }
}

fn run_backend(backend: &FakeBackend, options: &Options) {
    // nairobi hosts only the 7-qubit physics models (§5.2.2).
    let benchmarks = if backend.name() == "nairobi" {
        physics_suite(7)
    } else if options.effort >= 2 {
        benchmark_suite(10)
    } else {
        // Default: a representative subset (2 physics + 2 chemistry).
        benchmark_suite(10)
            .into_iter()
            .filter(|b| {
                ["ising(J=0.50)", "xxz(J=1.00)", "H2O(l=1.0)", "LiH(l=4.5)"]
                    .contains(&b.name.as_str())
            })
            .collect()
    };
    let hardware = (backend.name() == "hanoi").then(|| backend.hardware_variant(options.seed));
    println!("\n## backend: {}", backend.name());
    println!(
        "{:<14} {:<8} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "benchmark",
        "method",
        "E_init(x)",
        "E_final(x)",
        "norm(init)",
        "norm(final)",
        "eta_i/C",
        "eta_f/C",
        "eta_i/nC",
        "eta_f/nC"
    );
    let mut etas_init_cafqa = Vec::new();
    let mut etas_final_cafqa = Vec::new();
    let mut etas_init_ncafqa = Vec::new();
    let mut etas_final_ncafqa = Vec::new();
    for bench in &benchmarks {
        let instance = Instance::prepare(&bench.name, &bench.hamiltonian, backend);
        // On hanoi, final points are evaluated on the perturbed "hardware"
        // model restricted to the same compact register.
        let hw_model = hardware.as_ref().map(|hw| restricted_model(&instance, hw));
        let outcomes = instance.run_methods(options);
        let vqe_config = VqeConfig::new(options.vqe_iterations());
        let mut initial = Vec::new();
        let mut fin = Vec::new();
        let mut rows = Vec::new();
        for o in &outcomes {
            let trace = run_vqe(&o.vqe_hamiltonian, &instance.exec, &o.theta0, &vqe_config);
            let e_init = o.initial.device;
            let e_final =
                instance.device_energy(&o.vqe_hamiltonian, &trace.final_theta, hw_model.as_ref());
            initial.push(e_init);
            fin.push(e_final);
            rows.push((o.method, e_init, e_final));
        }
        for (method, e_init, e_final) in &rows {
            let (ei_c, ef_c, ei_n, ef_n) = if *method == "Clapton" {
                (
                    relative_improvement(instance.e0, initial[0], initial[2]),
                    relative_improvement(instance.e0, fin[0], fin[2]),
                    relative_improvement(instance.e0, initial[1], initial[2]),
                    relative_improvement(instance.e0, fin[1], fin[2]),
                )
            } else {
                (f64::NAN, f64::NAN, f64::NAN, f64::NAN)
            };
            println!(
                "{:<14} {:<8} {:>10.4} {:>10.4} {:>11.4} {:>11.4} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                instance.name,
                method,
                e_init,
                e_final,
                normalized_energy(*e_init, instance.e0, instance.e_mixed),
                normalized_energy(*e_final, instance.e0, instance.e_mixed),
                ei_c,
                ef_c,
                ei_n,
                ef_n
            );
            if *method == "Clapton" {
                etas_init_cafqa.push(ei_c);
                etas_final_cafqa.push(ef_c);
                etas_init_ncafqa.push(ei_n);
                etas_final_ncafqa.push(ef_n);
            }
        }
    }
    println!(
        "# {}: geo-mean eta vs CAFQA: init {:.2}x, final {:.2}x | vs nCAFQA: init {:.2}x, final {:.2}x",
        backend.name(),
        geometric_mean(&etas_init_cafqa),
        geometric_mean(&etas_final_cafqa),
        geometric_mean(&etas_init_ncafqa),
        geometric_mean(&etas_final_ncafqa),
    );
}

/// Restricts a (27-qubit) hardware-variant model onto the instance's compact
/// register by rebuilding the executable ansatz against it.
fn restricted_model(instance: &Instance, hw: &FakeBackend) -> clapton_noise::NoiseModel {
    let exec = clapton_core::ExecutableAnsatz::on_device(
        instance.hamiltonian.num_qubits(),
        hw.coupling_map(),
        &hw.noise_model(),
    )
    .expect("hardware variant hosts the same chain");
    exec.noise_model().clone()
}
