//! Figure 9 — classical compute scaling of the Clapton optimization with
//! qubit count N, against the CAFQA baseline.
//!
//! For the Ising model (J = 0.25) on N = 11…40 qubits (reduced ranges below
//! paper scale unless `--full`), runs Clapton and CAFQA from several random
//! initial configurations, measuring total time to convergence `t` and time
//! per engine round `τ`. Prints both series and the paper's fits:
//! `τ_Clapton(N) ≈ c2·N² + c1·N + c0` (quadratic) and `τ_CAFQA(N)` (linear).
//!
//! Transpilation is skipped, as in §6.3 ("For the purpose of this study
//! transpilation is not required").

use clapton_bench::{linear_fit, quadratic_fit, Options};
use clapton_core::{run_cafqa, run_clapton, ClaptonConfig, EvaluatorKind, ExecutableAnsatz};
use clapton_models::ising;
use clapton_noise::NoiseModel;
use std::time::Instant;

fn main() {
    let options = Options::from_args();
    let (ns, guesses): (Vec<usize>, usize) = match options.effort {
        0 => ((11..=19).step_by(4).collect(), 2),
        1 => ((11..=29).step_by(3).collect(), 3),
        _ => ((11..=40).collect(), 5),
    };
    println!(
        "{:>4} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "N", "t_clap[s]", "tau_clap[s]", "rounds", "t_cafqa[s]", "tau_cafqa[s]", "rounds", "cache"
    );
    let mut xs = Vec::new();
    let mut tau_clapton = Vec::new();
    let mut tau_cafqa = Vec::new();
    for &n in &ns {
        let h = ising(n, 0.25);
        // Representative uniform noise (Clifford channels only matter here).
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let mut t_clap = 0.0;
        let mut rounds_clap = 0usize;
        let mut t_caf = 0.0;
        let mut rounds_caf = 0usize;
        let mut unique_evals = 0u64;
        let mut cache_hits = 0u64;
        for g in 0..guesses {
            let seed = options.seed + g as u64;
            let start = Instant::now();
            let result = run_clapton(
                &h,
                &exec,
                &ClaptonConfig {
                    engine: options.engine(),
                    evaluator: EvaluatorKind::Exact,
                    seed,
                    two_qubit_slots: true,
                },
            );
            t_clap += start.elapsed().as_secs_f64();
            rounds_clap += result.rounds;
            unique_evals += result.unique_evaluations;
            cache_hits += result.cache_hits;
            let start = Instant::now();
            let result = run_cafqa(&h, &exec, &options.engine(), seed);
            t_caf += start.elapsed().as_secs_f64();
            rounds_caf += result.rounds;
        }
        let tau_c = t_clap / rounds_clap as f64;
        let tau_f = t_caf / rounds_caf as f64;
        let hit_rate = cache_hits as f64 / (cache_hits + unique_evals).max(1) as f64;
        println!(
            "{n:>4} {t_clap:>12.3} {tau_c:>12.4} {:>8.1} {t_caf:>12.3} {tau_f:>12.4} {:>8.1} {:>7.1}%",
            rounds_clap as f64 / guesses as f64,
            rounds_caf as f64 / guesses as f64,
            100.0 * hit_rate,
        );
        xs.push(n as f64);
        tau_clapton.push(tau_c);
        tau_cafqa.push(tau_f);
    }
    let (c2, c1, c0) = quadratic_fit(&xs, &tau_clapton);
    let (l1, l0) = linear_fit(&xs, &tau_cafqa);
    println!("\n# Clapton fit: tau(N)[s] = {c2:.4}*N^2 + {c1:.4}*N + {c0:.4}");
    println!("# CAFQA   fit: tau(N)[s] = {l1:.4}*N + {l0:.4}");
    // Shape check mirrored from the paper: Clapton pays a super-linear
    // premium over CAFQA's noiseless-only evaluation.
    let ratio_small = tau_clapton.first().unwrap() / tau_cafqa.first().unwrap();
    let ratio_large = tau_clapton.last().unwrap() / tau_cafqa.last().unwrap();
    println!(
        "# Clapton/CAFQA round-time ratio: {ratio_small:.2}x at N={} -> {ratio_large:.2}x at N={}",
        ns.first().unwrap(),
        ns.last().unwrap()
    );
}
