//! `suite-runner` — the concurrent, checkpointed benchmark-suite
//! orchestrator.
//!
//! Executes the paper's benchmark suite (12 instances at `N = 10`) as
//! concurrent jobs on one persistent worker pool, checkpointing every GA
//! round atomically into a run directory. Kill it at any instant (or bound
//! it with `--halt-after-rounds`) and re-run the same command line: finished
//! jobs are skipped, interrupted jobs resume from their last round snapshot,
//! and the final artifacts are byte-identical to an uninterrupted run.
//!
//! ```text
//! suite-runner [--quick|--full] [--seed N] [--qubits N] [--workers N]
//!              [--registry DIR] [--run NAME] [--halt-after-rounds N]
//!              [--quiet] [--list]
//!              [--specs FILE] [--emit-specs FILE]
//! ```
//!
//! Two suite sources:
//!
//! * **Built-in** (default): the paper's hard-coded benchmark suite,
//!   parameterized by `--qubits`/`--seed`/effort. Artifacts per run
//!   directory: `manifest.json`, `<job>.checkpoint.json`,
//!   `<job>.result.json` (deterministic), `suite_summary.json` and
//!   `bench_rows.json`.
//! * **Spec file** (`--specs FILE`): a JSON array of `JobSpec`s — any jobs,
//!   not just the hard-coded suite — executed through the `ClaptonService`
//!   front door. Note the `--halt-after-rounds N` scope difference: the
//!   built-in mode counts `N` rounds *summed over the whole suite* (one
//!   shared budget), while spec mode gives *each job* its own `N`-round
//!   budget per invocation (each spec's `budget` field is set to `N`). Each job gets its own subdirectory under the run directory
//!   holding its `spec.json`, round checkpoints, and final `report.json`;
//!   re-running the same command resumes suspended jobs and skips finished
//!   ones, byte-identical to an uninterrupted run. `--emit-specs FILE`
//!   writes the built-in suite as such a spec file (the two modes produce
//!   the same searches).

use clapton_bench::{run_spec_suite, run_suite, Options, SuiteConfig, SuiteOutcome};
use clapton_error::ClaptonError;
use clapton_runtime::{EventKind, RunEvent, RunRegistry, WorkerPool};
use clapton_service::JobSpec;
use serde::Serialize;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;

/// One wall-clock row in the repository's BENCH format.
#[derive(Debug, Serialize)]
struct BenchRow {
    group: String,
    id: String,
    median_ns: u64,
    best_ns: u64,
    samples: usize,
}

/// Everything `suite_summary.json` records (wall-clock lives here, *not* in
/// the deterministic per-job results).
#[derive(Debug, Serialize)]
struct SummaryJob {
    name: String,
    rounds: usize,
    completed: bool,
    skipped: bool,
    wall_ms: u64,
}

struct Args {
    options: Options,
    qubits: usize,
    workers: usize,
    registry: String,
    run_name: Option<String>,
    halt_after_rounds: Option<u64>,
    quiet: bool,
    list: bool,
    specs: Option<String>,
    emit_specs: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        options: Options { effort: 1, seed: 0 },
        qubits: 10,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        registry: "suite-runs".to_string(),
        run_name: None,
        halt_after_rounds: None,
        quiet: false,
        list: false,
        specs: None,
        emit_specs: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.options.effort = 0,
            "--full" => args.options.effort = 2,
            "--seed" => {
                args.options.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--qubits" => {
                args.qubits = value(&mut i, "--qubits")?
                    .parse()
                    .map_err(|e| format!("--qubits: {e}"))?;
            }
            "--workers" => {
                args.workers = value(&mut i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--registry" => args.registry = value(&mut i, "--registry")?,
            "--run" => args.run_name = Some(value(&mut i, "--run")?),
            "--halt-after-rounds" => {
                args.halt_after_rounds = Some(
                    value(&mut i, "--halt-after-rounds")?
                        .parse()
                        .map_err(|e| format!("--halt-after-rounds: {e}"))?,
                );
            }
            "--quiet" => args.quiet = true,
            "--list" => args.list = true,
            "--specs" => args.specs = Some(value(&mut i, "--specs")?),
            "--emit-specs" => args.emit_specs = Some(value(&mut i, "--emit-specs")?),
            other => {
                return Err(format!(
                    "unknown argument {other} (see the module docs for usage)"
                ))
            }
        }
        i += 1;
    }
    Ok(args)
}

fn list_runs(registry: &RunRegistry) -> std::io::Result<()> {
    let runs = registry.list()?;
    if runs.is_empty() {
        println!("no runs under {}", registry.path().display());
        return Ok(());
    }
    println!(
        "{:<28} {:<16} {:>6} {:>10} {:>12} {:>10}",
        "run", "profile", "seed", "jobs", "complete", "in-flight"
    );
    for run in runs {
        println!(
            "{:<28} {:<16} {:>6} {:>10} {:>12} {:>10}",
            run.name,
            run.manifest.profile,
            run.manifest.seed,
            run.manifest.jobs.len(),
            run.complete_jobs,
            run.checkpointed_jobs
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    let registry = match RunRegistry::open(&args.registry) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("suite-runner: cannot open registry {}: {e}", args.registry);
            return ExitCode::from(2);
        }
    };
    if args.list {
        return match list_runs(&registry) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("suite-runner: {e}");
                ExitCode::from(2)
            }
        };
    }
    let config = SuiteConfig {
        options: args.options,
        qubits: args.qubits,
        halt_after_rounds: args.halt_after_rounds,
    };
    if let Some(path) = &args.emit_specs {
        let specs = config.specs();
        let json = serde_json::to_string_pretty(&specs).expect("specs serialize");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("suite-runner: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "suite-runner: wrote {} job specs to {path} (run them with --specs {path})",
            specs.len()
        );
        return ExitCode::SUCCESS;
    }
    let run_name = args.run_name.clone().unwrap_or_else(|| {
        format!(
            "{}-n{}-seed{}",
            config.profile(),
            args.qubits,
            args.options.seed
        )
    });
    let dir = match registry.run(&run_name) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("suite-runner: cannot open run {run_name}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "suite-runner: run {run_name} ({} profile, seed {}, {} workers) → {}",
        config.profile(),
        args.options.seed,
        args.workers,
        dir.path().display()
    );
    let pool = Arc::new(WorkerPool::with_workers(args.workers));
    if let Some(path) = &args.specs {
        return run_specs_mode(&dir, path, &args, pool);
    }
    // Stream progress events on a printer thread while the suite runs.
    let (tx, printer) = spawn_printer(args.quiet);
    let started = std::time::Instant::now();
    let outcome = run_suite(&dir, &config, pool, Some(tx));
    printer.join().expect("printer thread");
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("suite-runner: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = write_summaries(&dir, &config, &outcome) {
        eprintln!("suite-runner: writing summaries: {e}");
        return ExitCode::from(2);
    }
    let wall = started.elapsed();
    println!(
        "suite-runner: {} of {} jobs complete in {:.2?}{}",
        outcome.completed(),
        outcome.jobs.len(),
        wall,
        if outcome.is_complete() {
            String::new()
        } else {
            format!(
                " — {} suspended; re-run the same command to resume",
                outcome.suspended()
            )
        }
    );
    ExitCode::SUCCESS
}

/// Streams [`RunEvent`]s to stdout on a dedicated thread (shared by the
/// built-in and spec-file modes); the returned sender feeds it, and joining
/// the handle after the run drains it.
fn spawn_printer(quiet: bool) -> (mpsc::Sender<RunEvent>, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<RunEvent>();
    let printer = std::thread::spawn(move || {
        for event in rx {
            if quiet {
                continue;
            }
            match event.kind {
                EventKind::Started => println!("[{}] started", event.job),
                EventKind::Round(round, best) => {
                    println!("[{}] round {round}: best {best:.6}", event.job)
                }
                EventKind::Checkpointed(_) => {}
                EventKind::Finished(outcome) => println!("[{}] {outcome}", event.job),
                EventKind::Suspended(rounds) => {
                    println!("[{}] suspended after {rounds} rounds", event.job)
                }
                EventKind::Cancelled(rounds) => {
                    println!("[{}] cancelled after {rounds} rounds", event.job)
                }
            }
        }
    });
    (tx, printer)
}

/// The `--specs FILE` mode: run an arbitrary `JobSpec` list through the
/// `ClaptonService` front door, with per-job artifact subdirectories under
/// the run directory.
fn run_specs_mode(
    dir: &clapton_runtime::RunDirectory,
    path: &str,
    args: &Args,
    pool: Arc<WorkerPool>,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("suite-runner: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let specs: Vec<JobSpec> = match serde_json::from_str(&text) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("suite-runner: {path} is not a JSON array of job specs: {e}");
            return ExitCode::from(2);
        }
    };
    println!("suite-runner: {} job specs from {path}", specs.len());
    let (tx, printer) = spawn_printer(args.quiet);
    let started = std::time::Instant::now();
    let outcome = run_spec_suite(dir.path(), specs, pool, Some(tx), args.halt_after_rounds);
    printer.join().expect("printer thread");
    let outcomes = match outcome {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("suite-runner: {e}");
            return ExitCode::from(2);
        }
    };
    let mut completed = 0usize;
    let mut suspended = 0usize;
    let mut failed = 0usize;
    for (name, result) in &outcomes {
        match result {
            Ok(_) => completed += 1,
            Err(ClaptonError::Suspended { rounds }) => {
                suspended += 1;
                println!("[{name}] checkpointed at round {rounds}");
            }
            Err(e) => {
                failed += 1;
                eprintln!("[{name}] failed: {e}");
            }
        }
    }
    println!(
        "suite-runner: {completed} of {} jobs complete in {:.2?}{}",
        outcomes.len(),
        started.elapsed(),
        if suspended > 0 {
            format!(" — {suspended} suspended; re-run the same command to resume")
        } else {
            String::new()
        }
    );
    if failed > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes the wall-clock summary and the BENCH-format rows for this
/// invocation (separate from the deterministic result artifacts).
fn write_summaries(
    dir: &clapton_runtime::RunDirectory,
    config: &SuiteConfig,
    outcome: &SuiteOutcome,
) -> std::io::Result<()> {
    let summary: Vec<SummaryJob> = outcome
        .jobs
        .iter()
        .map(|j| SummaryJob {
            name: j.name.clone(),
            rounds: j.rounds,
            completed: j.completed,
            skipped: j.skipped,
            wall_ms: j.wall_ms as u64,
        })
        .collect();
    dir.write_json("suite_summary.json", &summary)?;
    let rows: Vec<BenchRow> = outcome
        .jobs
        .iter()
        .filter(|j| j.completed && !j.skipped)
        .map(|j| BenchRow {
            group: format!("suite_{}", config.profile()),
            id: j.name.clone(),
            median_ns: j.wall_ms as u64 * 1_000_000,
            best_ns: j.wall_ms as u64 * 1_000_000,
            samples: 1,
        })
        .collect();
    dir.write_json("bench_rows.json", &rows)
}
