//! `suite-runner` — the concurrent, checkpointed benchmark-suite
//! orchestrator.
//!
//! Executes the paper's benchmark suite (12 instances at `N = 10`) as
//! concurrent jobs, checkpointing every GA round atomically into a run
//! directory. Kill it at any instant (or bound it with
//! `--halt-after-rounds`) and re-run the same command line: finished jobs
//! are skipped, interrupted jobs resume from their last round snapshot, and
//! the final artifacts are byte-identical to an uninterrupted run.
//!
//! ```text
//! suite-runner [--quick|--full] [--seed N] [--qubits N]
//!              [--registry DIR] [--run NAME] [--halt-after-rounds N]
//!              [--pool-workers N] [--quiet] [--list]
//!              [--specs FILE] [--emit-specs FILE]
//!              [--workers N] [--join DIR] [--status] [--merge]
//!              [--lease-ttl SECS] [--worker-id ID] [--chaos-seed N]
//!              [--cache-dir DIR] [--no-persistent-cache]
//! ```
//!
//! Three execution shapes:
//!
//! * **Single process** (default): the legacy orchestrator — one process,
//!   `--pool-workers` threads. Built-in suite artifacts per run directory:
//!   `manifest.json`, `<job>.checkpoint.json`, `<job>.result.json`
//!   (deterministic), `suite_summary.json`, `bench_rows.json`.
//! * **Spec file** (`--specs FILE`): a JSON array of `JobSpec`s executed
//!   through the `ClaptonService` front door, one artifact subdirectory per
//!   job. Note the `--halt-after-rounds N` scope difference: built-in mode
//!   counts `N` rounds summed over the whole suite; spec mode gives *each
//!   job* its own `N`-round budget per invocation.
//! * **Sharded** (`--workers N`): the run directory becomes a shared work
//!   queue (`queue.json` + per-job dirs + `claim.json` leases) and `N`
//!   child *processes* sweep it concurrently. Any external process — on
//!   this host or another sharing the filesystem — can attach to the same
//!   queue with `--join DIR`. Workers SIGKILLed mid-job are survived: their
//!   leases go stale after `--lease-ttl` seconds and a peer resumes the job
//!   from its checkpoint. When the queue drains, the parent folds the
//!   per-job reports into `suite_manifest.json`, ordered by job id and
//!   byte-identical to a single-worker run. `--status` prints who holds
//!   what; `--merge` re-folds the manifest without running anything.
//!   `--chaos-seed N` arms each worker child with a seeded fault schedule
//!   (torn writes, failed renames, lost claims, dropped heartbeats, even a
//!   process abort) via `CLAPTON_FAILPOINTS`; the merged manifest must
//!   still come out byte-identical — that is the CI `chaos-smoke` check.
//!
//! Spec-file and sharded runs answer repeat work from the persistent
//! content-addressed store at `--cache-dir` (default: `.cache` inside the
//! run directory) — already-solved specs skip the pool entirely, and
//! already-scored genomes are read back instead of recomputed, without
//! changing a byte of any artifact. `--no-persistent-cache` pins the cold
//! path (the chaos and determinism suites run cold by default). Each worker
//! prints a `clapton_cache_hits_total=…` line on exit; see
//! `docs/CACHING.md`.
//!
//! See `docs/DISTRIBUTED.md` for the queue layout and lease protocol.

use clapton_bench::{
    chaos_schedule, merge_shards, read_queue, run_shard_worker, run_spec_suite_with_cache,
    run_suite, schedule_spec, shard_status, write_queue, Options, ShardWorkerConfig, SuiteConfig,
    SuiteOutcome,
};
use clapton_error::ClaptonError;
use clapton_runtime::{EventKind, RunEvent, RunRegistry, WorkerPool};
use clapton_service::{CacheConfig, CacheStore, JobSpec, CACHE_DIR_NAME};
use serde::Serialize;
use std::path::Path;
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One wall-clock row in the repository's BENCH format.
#[derive(Debug, Serialize)]
struct BenchRow {
    group: String,
    id: String,
    median_ns: u64,
    best_ns: u64,
    samples: usize,
}

/// Everything `suite_summary.json` records (wall-clock lives here, *not* in
/// the deterministic per-job results).
#[derive(Debug, Serialize)]
struct SummaryJob {
    name: String,
    rounds: usize,
    completed: bool,
    skipped: bool,
    wall_ms: u64,
}

struct Args {
    options: Options,
    qubits: usize,
    /// Shard worker *processes* (`None` → single-process run).
    workers: Option<usize>,
    /// Worker-pool threads per process.
    pool_workers: usize,
    registry: String,
    run_name: Option<String>,
    halt_after_rounds: Option<u64>,
    quiet: bool,
    list: bool,
    specs: Option<String>,
    emit_specs: Option<String>,
    join: Option<String>,
    status: bool,
    merge: bool,
    lease_ttl: Duration,
    worker_id: Option<String>,
    /// Arm each shard worker child with the fault schedule for this seed.
    chaos_seed: Option<u64>,
    /// Persistent-store location override (`None` → `.cache` inside the run
    /// directory).
    cache_dir: Option<String>,
    /// Run every job cold: no persistent store is opened or written.
    no_cache: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        options: Options { effort: 1, seed: 0 },
        qubits: 10,
        workers: None,
        pool_workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        registry: "suite-runs".to_string(),
        run_name: None,
        halt_after_rounds: None,
        quiet: false,
        list: false,
        specs: None,
        emit_specs: None,
        join: None,
        status: false,
        merge: false,
        lease_ttl: clapton_runtime::DEFAULT_LEASE_TTL,
        worker_id: None,
        chaos_seed: None,
        cache_dir: None,
        no_cache: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs an argument"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.options.effort = 0,
            "--full" => args.options.effort = 2,
            "--seed" => {
                args.options.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--qubits" => {
                args.qubits = value(&mut i, "--qubits")?
                    .parse()
                    .map_err(|e| format!("--qubits: {e}"))?;
            }
            "--workers" => {
                args.workers = Some(
                    value(&mut i, "--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--pool-workers" => {
                args.pool_workers = value(&mut i, "--pool-workers")?
                    .parse()
                    .map_err(|e| format!("--pool-workers: {e}"))?;
            }
            "--registry" => args.registry = value(&mut i, "--registry")?,
            "--run" => args.run_name = Some(value(&mut i, "--run")?),
            "--halt-after-rounds" => {
                args.halt_after_rounds = Some(
                    value(&mut i, "--halt-after-rounds")?
                        .parse()
                        .map_err(|e| format!("--halt-after-rounds: {e}"))?,
                );
            }
            "--quiet" => args.quiet = true,
            "--list" => args.list = true,
            "--specs" => args.specs = Some(value(&mut i, "--specs")?),
            "--emit-specs" => args.emit_specs = Some(value(&mut i, "--emit-specs")?),
            "--join" => args.join = Some(value(&mut i, "--join")?),
            "--status" => args.status = true,
            "--merge" => args.merge = true,
            "--lease-ttl" => {
                let secs: f64 = value(&mut i, "--lease-ttl")?
                    .parse()
                    .map_err(|e| format!("--lease-ttl: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--lease-ttl must be positive".to_string());
                }
                args.lease_ttl = Duration::from_secs_f64(secs);
            }
            "--worker-id" => args.worker_id = Some(value(&mut i, "--worker-id")?),
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value(&mut i, "--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                );
            }
            "--cache-dir" => args.cache_dir = Some(value(&mut i, "--cache-dir")?),
            "--no-persistent-cache" => args.no_cache = true,
            other => {
                return Err(format!(
                    "unknown argument {other} (see the module docs for usage)"
                ))
            }
        }
        i += 1;
    }
    if args.workers == Some(0) {
        return Err("--workers needs at least 1 worker process".to_string());
    }
    if args.chaos_seed.is_some() && args.workers.is_none() {
        return Err(
            "--chaos-seed needs --workers (faults are injected into worker children, \
                    never this process)"
                .to_string(),
        );
    }
    if args.no_cache && args.cache_dir.is_some() {
        return Err("--no-persistent-cache and --cache-dir are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Opens the run's persistent result store (unless `--no-persistent-cache`):
/// `--cache-dir` when given, else `.cache` inside the run directory.
fn open_cache(dir: &Path, args: &Args) -> Result<Option<Arc<CacheStore>>, String> {
    if args.no_cache {
        return Ok(None);
    }
    let path = args
        .cache_dir
        .as_ref()
        .map_or_else(|| dir.join(CACHE_DIR_NAME), std::path::PathBuf::from);
    CacheStore::open(&path, CacheConfig::default())
        .map(|store| Some(Arc::new(store)))
        .map_err(|e| format!("cannot open persistent cache at {}: {e}", path.display()))
}

/// The end-of-invocation store summary workers print (CI greps the
/// `clapton_cache_hits_total=` key to assert warm runs actually hit disk).
fn print_cache_summary(cache: Option<&Arc<CacheStore>>) {
    let Some(cache) = cache else { return };
    let stats = cache.stats();
    println!(
        "suite-runner: persistent cache at {}: clapton_cache_hits_total={} \
         clapton_cache_misses_total={} clapton_cache_inserts_total={} \
         entries={} bytes={}",
        cache.path().display(),
        stats.hits,
        stats.misses,
        stats.inserts,
        stats.entries,
        stats.bytes
    );
}

fn list_runs(registry: &RunRegistry) -> std::io::Result<()> {
    let runs = registry.list()?;
    if runs.is_empty() {
        println!("no runs under {}", registry.path().display());
        return Ok(());
    }
    println!(
        "{:<28} {:<16} {:>6} {:>10} {:>12} {:>10}",
        "run", "profile", "seed", "jobs", "complete", "in-flight"
    );
    for run in runs {
        println!(
            "{:<28} {:<16} {:>6} {:>10} {:>12} {:>10}",
            run.name,
            run.manifest.profile,
            run.manifest.seed,
            run.manifest.jobs.len(),
            run.complete_jobs,
            run.checkpointed_jobs
        );
    }
    Ok(())
}

/// The spec list a shard/status/merge invocation operates on: the run's
/// persisted `queue.json` wins (the queue is the source of truth once a
/// shard run exists), then an explicit `--specs` file, then the built-in
/// suite.
fn resolve_specs(dir: &Path, args: &Args, config: &SuiteConfig) -> Result<Vec<JobSpec>, String> {
    if let Ok(specs) = read_queue(dir) {
        return Ok(specs);
    }
    if let Some(path) = &args.specs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return serde_json::from_str(&text)
            .map_err(|e| format!("{path} is not a JSON array of job specs: {e}"));
    }
    Ok(config.specs())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    // Arms this process when a chaos parent handed us a schedule (worker
    // children of `--chaos-seed` see it via CLAPTON_FAILPOINTS).
    if let Err(e) = clapton_runtime::failpoint::configure_from_env() {
        eprintln!("suite-runner: bad CLAPTON_FAILPOINTS: {e}");
        return ExitCode::from(2);
    }
    let config = SuiteConfig {
        options: args.options,
        qubits: args.qubits,
        halt_after_rounds: args.halt_after_rounds,
    };
    // Worker mode: attach to an existing shard queue and sweep it. The
    // queue directory is given directly — no registry resolution — so any
    // process on any host sharing the filesystem can join.
    if let Some(join) = &args.join {
        if args.status {
            return status_mode(Path::new(join), &args, &config);
        }
        if args.merge {
            return merge_mode(Path::new(join), &args, &config);
        }
        return join_mode(Path::new(join), &args);
    }
    let registry = match RunRegistry::open(&args.registry) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("suite-runner: cannot open registry {}: {e}", args.registry);
            return ExitCode::from(2);
        }
    };
    if args.list {
        return match list_runs(&registry) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("suite-runner: {e}");
                ExitCode::from(2)
            }
        };
    }
    if let Some(path) = &args.emit_specs {
        let specs = config.specs();
        let json = serde_json::to_string_pretty(&specs).expect("specs serialize");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("suite-runner: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "suite-runner: wrote {} job specs to {path} (run them with --specs {path})",
            specs.len()
        );
        return ExitCode::SUCCESS;
    }
    let run_name = args.run_name.clone().unwrap_or_else(|| {
        format!(
            "{}-n{}-seed{}",
            config.profile(),
            args.qubits,
            args.options.seed
        )
    });
    let dir = match registry.run(&run_name) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("suite-runner: cannot open run {run_name}: {e}");
            return ExitCode::from(2);
        }
    };
    if args.status {
        return status_mode(dir.path(), &args, &config);
    }
    if args.merge {
        return merge_mode(dir.path(), &args, &config);
    }
    if let Some(workers) = args.workers {
        return shard_parent_mode(dir.path(), workers, &args, &config);
    }
    println!(
        "suite-runner: run {run_name} ({} profile, seed {}, {} pool workers) → {}",
        config.profile(),
        args.options.seed,
        args.pool_workers,
        dir.path().display()
    );
    let pool = Arc::new(WorkerPool::with_workers(args.pool_workers));
    if let Some(path) = &args.specs {
        return run_specs_mode(&dir, path, &args, pool);
    }
    // Stream progress events on a printer thread while the suite runs.
    let (tx, printer) = spawn_printer(args.quiet);
    let started = std::time::Instant::now();
    let outcome = run_suite(&dir, &config, pool, Some(tx));
    printer.join().expect("printer thread");
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("suite-runner: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = write_summaries(&dir, &config, &outcome) {
        eprintln!("suite-runner: writing summaries: {e}");
        return ExitCode::from(2);
    }
    let wall = started.elapsed();
    println!(
        "suite-runner: {} of {} jobs complete in {:.2?}{}",
        outcome.completed(),
        outcome.jobs.len(),
        wall,
        if outcome.is_complete() {
            String::new()
        } else {
            format!(
                " — {} suspended; re-run the same command to resume",
                outcome.suspended()
            )
        }
    );
    ExitCode::SUCCESS
}

/// The `--workers N` parent: seed the queue, fork N `--join` children over
/// it, survive child deaths, and merge when the queue drains.
fn shard_parent_mode(dir: &Path, workers: usize, args: &Args, config: &SuiteConfig) -> ExitCode {
    let specs = match resolve_specs(dir, args, config) {
        Ok(specs) => specs,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = write_queue(dir, &specs) {
        eprintln!("suite-runner: cannot seed queue: {e}");
        return ExitCode::from(2);
    }
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("suite-runner: cannot locate own binary to fork workers: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "suite-runner: sharding {} jobs across {workers} worker processes \
         (lease TTL {:.1?}) → {}",
        specs.len(),
        args.lease_ttl,
        dir.display()
    );
    let started = std::time::Instant::now();
    let mut children = Vec::with_capacity(workers);
    for index in 0..workers {
        let mut command = std::process::Command::new(&exe);
        command
            .arg("--join")
            .arg(dir)
            .arg("--lease-ttl")
            .arg(format!("{}", args.lease_ttl.as_secs_f64()))
            .arg("--pool-workers")
            .arg(args.pool_workers.to_string());
        if let Some(budget) = args.halt_after_rounds {
            command.arg("--halt-after-rounds").arg(budget.to_string());
        }
        if args.quiet {
            command.arg("--quiet");
        }
        if args.no_cache {
            command.arg("--no-persistent-cache");
        }
        if let Some(cache_dir) = &args.cache_dir {
            command.arg("--cache-dir").arg(cache_dir);
        }
        if let Some(seed) = args.chaos_seed {
            // Each child gets its own schedule (seed + index), aborts
            // allowed: a dead child's lease goes stale and a peer (or the
            // parent's inline sweep) resumes from the checkpoint. This
            // process stays unarmed — the merge must not be perturbed.
            let rules = chaos_schedule(seed.wrapping_add(index as u64), true);
            command.env(
                clapton_runtime::failpoint::FAILPOINTS_ENV,
                schedule_spec(&rules),
            );
        }
        match command.spawn() {
            Ok(child) => children.push((index, child)),
            Err(e) => {
                eprintln!("suite-runner: cannot spawn worker {index}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut died = 0usize;
    for (index, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                died += 1;
                eprintln!("suite-runner: worker {index} exited with {status} (queue survives it)");
            }
            Err(e) => {
                died += 1;
                eprintln!("suite-runner: waiting for worker {index}: {e}");
            }
        }
    }
    // Dead workers are tolerated by design — the queue outlives any of
    // them — but if *every* worker died the sweep may be incomplete, so
    // finish it inline before merging.
    let merged = match merge_shards(dir, &specs) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("suite-runner: merge failed: {e}");
            return ExitCode::from(2);
        }
    };
    let merged = if !merged.is_complete() && args.halt_after_rounds.is_none() {
        eprintln!(
            "suite-runner: {} of {} jobs unfinished after all workers exited; \
             finishing the sweep inline",
            merged.jobs.len() - merged.completed(),
            merged.jobs.len()
        );
        let cache = match open_cache(dir, args) {
            Ok(cache) => cache,
            Err(message) => {
                eprintln!("suite-runner: {message}");
                return ExitCode::from(2);
            }
        };
        let shard_config = ShardWorkerConfig {
            worker_id: args.worker_id.clone(),
            lease_ttl: args.lease_ttl,
            halt_after_rounds: args.halt_after_rounds,
            cache,
            ..ShardWorkerConfig::default()
        };
        let pool = Arc::new(WorkerPool::with_workers(args.pool_workers));
        let (tx, printer) = spawn_printer(args.quiet);
        let outcome = run_shard_worker(dir, pool, Some(tx), &shard_config);
        printer.join().expect("printer thread");
        if let Err(e) = outcome {
            eprintln!("suite-runner: inline sweep failed: {e}");
            return ExitCode::from(2);
        }
        match merge_shards(dir, &specs) {
            Ok(merged) => merged,
            Err(e) => {
                eprintln!("suite-runner: merge failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        merged
    };
    println!(
        "suite-runner: {} of {} jobs complete in {:.2?} ({died} worker deaths survived) — \
         merged manifest at {}",
        merged.completed(),
        merged.jobs.len(),
        started.elapsed(),
        dir.join(clapton_bench::MERGED_MANIFEST_ARTIFACT).display()
    );
    if merged.is_complete() || args.halt_after_rounds.is_some() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The `--join DIR` worker: sweep an existing shard queue until nothing is
/// left to do.
fn join_mode(dir: &Path, args: &Args) -> ExitCode {
    let cache = match open_cache(dir, args) {
        Ok(cache) => cache,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    let shard_config = ShardWorkerConfig {
        worker_id: args.worker_id.clone(),
        lease_ttl: args.lease_ttl,
        halt_after_rounds: args.halt_after_rounds,
        cache: cache.clone(),
        // Under an armed fault schedule a job may error far more than the
        // usual attempt cap without being broken; injected faults are
        // finite, so retrying forever still converges.
        max_job_attempts: if clapton_runtime::failpoint::armed() {
            usize::MAX
        } else {
            ShardWorkerConfig::default().max_job_attempts
        },
        ..ShardWorkerConfig::default()
    };
    let pool = Arc::new(WorkerPool::with_workers(args.pool_workers));
    let (tx, printer) = spawn_printer(args.quiet);
    let started = std::time::Instant::now();
    let outcome = run_shard_worker(dir, pool, Some(tx), &shard_config);
    printer.join().expect("printer thread");
    match outcome {
        Ok(outcome) => {
            println!(
                "suite-runner: worker drained the queue in {:.2?} — {} of {} jobs done",
                started.elapsed(),
                outcome.completed(),
                outcome.jobs.len()
            );
            print_cache_summary(cache.as_ref());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("suite-runner: worker failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// The `--status` mode: who holds what, per job.
fn status_mode(dir: &Path, args: &Args, config: &SuiteConfig) -> ExitCode {
    let specs = match resolve_specs(dir, args, config) {
        Ok(specs) => specs,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    let rows = match shard_status(dir, &specs, args.lease_ttl) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("suite-runner: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{:<34} {:<10} {:<20} {:>12} {:>8} {:>12}",
        "job", "state", "lease owner", "heartbeat", "rounds", "cache hits"
    );
    for row in rows {
        let owner = match (&row.owner, row.stale) {
            (Some(owner), true) => format!("{owner} (stale)"),
            (Some(owner), false) => owner.clone(),
            (None, _) => "-".to_string(),
        };
        let heartbeat = row
            .heartbeat_age_ms
            .map_or_else(|| "-".to_string(), |ms| format!("{ms} ms ago"));
        let rounds = row
            .rounds
            .map_or_else(|| "-".to_string(), |r| r.to_string());
        let cache_hits = row
            .cache_hits
            .map_or_else(|| "-".to_string(), |h| h.to_string());
        println!(
            "{:<34} {:<10} {:<20} {:>12} {:>8} {:>12}",
            row.job, row.state, owner, heartbeat, rounds, cache_hits
        );
    }
    ExitCode::SUCCESS
}

/// The `--merge` mode: re-fold `suite_manifest.json` without running
/// anything.
fn merge_mode(dir: &Path, args: &Args, config: &SuiteConfig) -> ExitCode {
    let specs = match resolve_specs(dir, args, config) {
        Ok(specs) => specs,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    match merge_shards(dir, &specs) {
        Ok(merged) => {
            println!(
                "suite-runner: merged {} jobs ({} done) → {}",
                merged.jobs.len(),
                merged.completed(),
                dir.join(clapton_bench::MERGED_MANIFEST_ARTIFACT).display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("suite-runner: merge failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Streams [`RunEvent`]s to stdout on a dedicated thread (shared by the
/// built-in and spec-file modes); the returned sender feeds it, and joining
/// the handle after the run drains it.
fn spawn_printer(quiet: bool) -> (mpsc::Sender<RunEvent>, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<RunEvent>();
    let printer = std::thread::spawn(move || {
        for event in rx {
            if quiet {
                continue;
            }
            match event.kind {
                EventKind::Started => println!("[{}] started", event.job),
                EventKind::Round(round, best) => {
                    println!("[{}] round {round}: best {best:.6}", event.job)
                }
                EventKind::Checkpointed(_) => {}
                EventKind::Finished(outcome) => println!("[{}] {outcome}", event.job),
                EventKind::Suspended(rounds) => {
                    println!("[{}] suspended after {rounds} rounds", event.job)
                }
                EventKind::Cancelled(rounds) => {
                    println!("[{}] cancelled after {rounds} rounds", event.job)
                }
            }
        }
    });
    (tx, printer)
}

/// The `--specs FILE` mode: run an arbitrary `JobSpec` list through the
/// `ClaptonService` front door, with per-job artifact subdirectories under
/// the run directory.
fn run_specs_mode(
    dir: &clapton_runtime::RunDirectory,
    path: &str,
    args: &Args,
    pool: Arc<WorkerPool>,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("suite-runner: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let specs: Vec<JobSpec> = match serde_json::from_str(&text) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("suite-runner: {path} is not a JSON array of job specs: {e}");
            return ExitCode::from(2);
        }
    };
    println!("suite-runner: {} job specs from {path}", specs.len());
    let cache = match open_cache(dir.path(), args) {
        Ok(cache) => cache,
        Err(message) => {
            eprintln!("suite-runner: {message}");
            return ExitCode::from(2);
        }
    };
    let (tx, printer) = spawn_printer(args.quiet);
    let started = std::time::Instant::now();
    let outcome = run_spec_suite_with_cache(
        dir.path(),
        specs,
        pool,
        Some(tx),
        args.halt_after_rounds,
        cache.clone(),
    );
    printer.join().expect("printer thread");
    let outcomes = match outcome {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("suite-runner: {e}");
            return ExitCode::from(2);
        }
    };
    let mut completed = 0usize;
    let mut suspended = 0usize;
    let mut failed = 0usize;
    for (name, result) in &outcomes {
        match result {
            Ok(_) => completed += 1,
            Err(ClaptonError::Suspended { rounds }) => {
                suspended += 1;
                println!("[{name}] checkpointed at round {rounds}");
            }
            Err(e) => {
                failed += 1;
                eprintln!("[{name}] failed: {e}");
            }
        }
    }
    println!(
        "suite-runner: {completed} of {} jobs complete in {:.2?}{}",
        outcomes.len(),
        started.elapsed(),
        if suspended > 0 {
            format!(" — {suspended} suspended; re-run the same command to resume")
        } else {
            String::new()
        }
    );
    print_cache_summary(cache.as_ref());
    if failed > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes the wall-clock summary and the BENCH-format rows for this
/// invocation (separate from the deterministic result artifacts).
fn write_summaries(
    dir: &clapton_runtime::RunDirectory,
    config: &SuiteConfig,
    outcome: &SuiteOutcome,
) -> std::io::Result<()> {
    let summary: Vec<SummaryJob> = outcome
        .jobs
        .iter()
        .map(|j| SummaryJob {
            name: j.name.clone(),
            rounds: j.rounds,
            completed: j.completed,
            skipped: j.skipped,
            wall_ms: j.wall_ms as u64,
        })
        .collect();
    dir.write_json("suite_summary.json", &summary)?;
    let rows: Vec<BenchRow> = outcome
        .jobs
        .iter()
        .filter(|j| j.completed && !j.skipped)
        .map(|j| BenchRow {
            group: format!("suite_{}", config.profile()),
            id: j.name.clone(),
            median_ns: j.wall_ms as u64 * 1_000_000,
            best_ns: j.wall_ms as u64 * 1_000_000,
            samples: 1,
        })
        .collect();
    dir.write_json("bench_rows.json", &rows)
}
