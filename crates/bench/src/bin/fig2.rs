//! Figure 2 — the key result on one magnified benchmark.
//!
//! For the ten-qubit XXZ model (J = 1.00) on the `toronto` backend, prints
//! the initial-point energy of CAFQA, nCAFQA and Clapton in the three noise
//! environments (noiseless ⋄ / Clifford noise model ◦ / device model ×),
//! plus the Clifford-model vs device-model discrepancy. The paper's claims:
//! Clapton reaches the lowest device energy, and its Clifford noise model is
//! the most accurate (smallest ◦/× gap).

use clapton_bench::{Instance, Options};
use clapton_core::normalized_energy;
use clapton_devices::FakeBackend;
use clapton_models::xxz;

fn main() {
    let options = Options::from_args();
    let n = 10;
    let backend = FakeBackend::toronto();
    let h = xxz(n, 1.0);
    println!("# Figure 2: XXZ (J=1.00, N={n}) on {}", backend.name());
    let instance = Instance::prepare("xxz(J=1.00)", &h, &backend);
    println!(
        "# E0 = {:.6}, E_mixed = {:.6}",
        instance.e0, instance.e_mixed
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "method", "noiseless", "cliff-model", "device", "norm(device)", "model-gap"
    );
    let outcomes = instance.run_methods(&options);
    for o in &outcomes {
        let norm = normalized_energy(o.initial.device, instance.e0, instance.e_mixed);
        let gap = (o.initial.clifford_model - o.initial.device).abs();
        println!(
            "{:<10} {:>14.6} {:>14.6} {:>14.6} {:>12.4} {:>12.4}",
            o.method, o.initial.noiseless, o.initial.clifford_model, o.initial.device, norm, gap
        );
    }
    let device = |m: &str| {
        outcomes
            .iter()
            .find(|o| o.method == m)
            .expect("method present")
            .initial
            .device
    };
    let eta_cafqa =
        clapton_core::relative_improvement(instance.e0, device("CAFQA"), device("Clapton"));
    let eta_ncafqa =
        clapton_core::relative_improvement(instance.e0, device("nCAFQA"), device("Clapton"));
    println!("\n# relative improvement eta (initial point, device evaluation)");
    println!("eta vs CAFQA  = {eta_cafqa:.3}");
    println!("eta vs nCAFQA = {eta_ncafqa:.3}");
}
