//! Ablation study for the design choices DESIGN.md calls out:
//!
//! 1. **Two-qubit transformation slots** (Eq. 8): full ansatz vs
//!    rotations-only (`two_qubit_slots = false`),
//! 2. **Exact vs sampled `LN`**: the closed-form Clifford-noise evaluator vs
//!    the paper's stim-style shot sampler (256 shots/term) as the GA loss.
//!
//! Reports the winning loss and the device-model energy of each variant.

use clapton_bench::{Instance, Options};
use clapton_core::{run_clapton, ClaptonConfig, EvaluatorKind};
use clapton_devices::FakeBackend;
use clapton_models::{ising, xxz};

fn main() {
    let options = Options::from_args();
    let backend = FakeBackend::toronto();
    let benchmarks = vec![
        ("ising(J=0.50)", ising(10, 0.5)),
        ("xxz(J=1.00)", xxz(10, 1.0)),
    ];
    println!(
        "{:<14} {:<22} {:>12} {:>12} {:>12}",
        "benchmark", "variant", "loss", "L0", "E_device(x)"
    );
    for (name, h) in &benchmarks {
        let instance = Instance::prepare(name, h, &backend);
        let zeros = vec![0.0; instance.exec.ansatz().num_parameters()];
        let variants: Vec<(&str, ClaptonConfig)> = vec![
            (
                "full (exact LN)",
                ClaptonConfig {
                    engine: options.engine(),
                    evaluator: EvaluatorKind::Exact,
                    seed: options.seed,
                    two_qubit_slots: true,
                },
            ),
            (
                "no two-qubit slots",
                ClaptonConfig {
                    engine: options.engine(),
                    evaluator: EvaluatorKind::Exact,
                    seed: options.seed,
                    two_qubit_slots: false,
                },
            ),
            (
                "sampled LN (256 shots)",
                ClaptonConfig {
                    engine: options.engine(),
                    evaluator: EvaluatorKind::Sampled {
                        shots: 256,
                        seed: options.seed,
                    },
                    seed: options.seed,
                    two_qubit_slots: true,
                },
            ),
        ];
        for (label, config) in variants {
            let result = run_clapton(h, &instance.exec, &config);
            let device = instance.device_energy(&result.transformation.transformed, &zeros, None);
            println!(
                "{:<14} {:<22} {:>12.5} {:>12.5} {:>12.5}",
                instance.name, label, result.loss, result.loss_0, device
            );
        }
        println!(
            "{:<14} {:<22} {:>12} {:>12} {:>12.5}",
            instance.name, "(reference E0)", "", "", instance.e0
        );
    }
}
