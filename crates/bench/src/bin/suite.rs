//! Benchmark-suite statistics: reproduces the paper's background claim that
//! Clifford (stabilizer) initial states reach 90-99% of the ground-state
//! energy (§2.5, citing CAFQA [38]), and prints the structural properties of
//! every benchmark instance.

use clapton_bench::Options;
use clapton_core::{run_cafqa, ExecutableAnsatz};
use clapton_models::benchmark_suite;
use clapton_noise::NoiseModel;
use clapton_sim::ground_energy;

fn main() {
    let options = Options::from_args();
    println!(
        "{:<14} {:>6} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "benchmark", "N", "terms", "E_mixed", "E0", "E_CAFQA", "accuracy"
    );
    for bench in benchmark_suite(10) {
        let h = &bench.hamiltonian;
        let n = h.num_qubits();
        let e0 = ground_energy(h);
        let e_mixed = h.identity_coefficient();
        let exec = ExecutableAnsatz::untranspiled(n, &NoiseModel::noiseless(n));
        let cafqa = run_cafqa(h, &exec, &options.engine(), options.seed);
        // Accuracy per CAFQA's definition: fraction of the mixed-to-ground
        // gap closed by the best Clifford state.
        let accuracy = (e_mixed - cafqa.energy_noiseless) / (e_mixed - e0);
        println!(
            "{:<14} {:>6} {:>6} {:>12.5} {:>12.5} {:>12.5} {:>9.1}%",
            bench.name,
            n,
            h.num_terms(),
            e_mixed,
            e0,
            cafqa.energy_noiseless,
            100.0 * accuracy
        );
    }
}
