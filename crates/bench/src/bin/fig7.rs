//! Figure 7 — relative improvement η (Clapton vs nCAFQA, initial point)
//! when sweeping the single-qubit gate error `p` (two-qubit error `10p`)
//! for several thermal-relaxation times T1.
//!
//! Benchmarks: Ising (J=1.00), H2O (l=1.0), H6 (l=1.0), LiH (l=4.5), all on
//! the `toronto` topology with spatially uniform noise (§5.2.3). Pass
//! `--no-two-qubit-slots` conceptually via the ablation bench; this binary
//! reproduces the paper's sweep as-is.

use clapton_bench::{run_sweep, Options};
use clapton_models::{ising, molecular, Molecule};
use clapton_noise::NoiseModel;
use clapton_pauli::PauliSum;

fn main() {
    let options = Options::from_args();
    let gate_errors: Vec<f64> = match options.effort {
        0 => vec![5e-4, 5e-3],
        1 => vec![5e-4, 2e-3, 5e-3],
        _ => vec![5e-4, 1.25e-3, 2e-3, 2.75e-3, 3.5e-3, 4.25e-3, 5e-3],
    };
    let t1s: Vec<f64> = match options.effort {
        0 => vec![150e-6],
        1 => vec![50e-6, 250e-6],
        _ => vec![50e-6, 150e-6, 250e-6],
    };
    let benchmarks: Vec<(String, PauliSum)> = {
        let mut v = vec![("ising(J=1.00)".to_string(), ising(10, 1.0))];
        if options.effort >= 1 {
            v.push(("H2O(l=1.0)".to_string(), molecular(Molecule::H2O, 1.0)));
            v.push(("LiH(l=4.5)".to_string(), molecular(Molecule::LiH, 4.5)));
        }
        if options.effort >= 2 {
            v.push(("H6(l=1.0)".to_string(), molecular(Molecule::H6, 1.0)));
        }
        v
    };
    let benchmarks: Vec<(&str, &PauliSum)> =
        benchmarks.iter().map(|(n, h)| (n.as_str(), h)).collect();
    run_sweep(&options, &benchmarks, &t1s, &gate_errors, |p, t1| {
        // Gate-error sweep: readout off, 2q error = 10p (§5.2.3).
        let mut model = NoiseModel::uniform(27, p, (10.0 * p).min(1.0), 0.0);
        model.set_t1_uniform(t1);
        model
    });
}
