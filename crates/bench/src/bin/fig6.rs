//! Figure 6 — VQE convergence of the ten-qubit XXZ model (J = 0.25 and
//! J = 1.00) on the `toronto` and `hanoi` noise models.
//!
//! Prints per-method convergence series (device-model energies along the
//! SPSA run) and, for `hanoi`, the "hardware star" evaluations of the
//! initial and final points under the perturbed hardware variant.

use clapton_bench::{Instance, Options};
use clapton_core::ExecutableAnsatz;
use clapton_devices::FakeBackend;
use clapton_models::xxz;
use clapton_vqe::{run_vqe, VqeConfig};

fn main() {
    let options = Options::from_args();
    let backends = match options.effort {
        0 => vec![FakeBackend::toronto()],
        _ => vec![FakeBackend::toronto(), FakeBackend::hanoi()],
    };
    let n = 10;
    for backend in &backends {
        for j in [0.25, 1.0] {
            let name = format!("xxz(J={j:.2})");
            let h = xxz(n, j);
            let instance = Instance::prepare(&name, &h, backend);
            println!(
                "\n## {} on {} (E0 = {:.5})",
                name,
                backend.name(),
                instance.e0
            );
            let outcomes = instance.run_methods(&options);
            let vqe_config = VqeConfig::new(options.vqe_iterations());
            let hardware =
                (backend.name() == "hanoi").then(|| backend.hardware_variant(options.seed));
            for o in &outcomes {
                let trace = run_vqe(&o.vqe_hamiltonian, &instance.exec, &o.theta0, &vqe_config);
                let series: Vec<String> = trace
                    .trace
                    .iter()
                    .map(|(k, e)| format!("({k},{e:.4})"))
                    .collect();
                println!(
                    "{:<8} init(x)={:.5} final(x)={:.5} | series: {}",
                    o.method,
                    trace.initial_energy,
                    trace.final_energy,
                    series.join(" ")
                );
                if let Some(hw) = &hardware {
                    let exec_hw =
                        ExecutableAnsatz::on_device(n, hw.coupling_map(), &hw.noise_model())
                            .expect("hardware variant hosts the chain");
                    let hw_model = exec_hw.noise_model().clone();
                    let e_init_hw =
                        instance.device_energy(&o.vqe_hamiltonian, &o.theta0, Some(&hw_model));
                    let e_final_hw = instance.device_energy(
                        &o.vqe_hamiltonian,
                        &trace.final_theta,
                        Some(&hw_model),
                    );
                    println!(
                        "{:<8} hardware stars: init*={e_init_hw:.5} final*={e_final_hw:.5}",
                        o.method
                    );
                }
            }
        }
    }
}
