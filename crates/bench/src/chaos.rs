//! Seeded chaos schedules over the persistence failpoints.
//!
//! One integer seed expands into a reproducible fault schedule — torn
//! artifact writes, failed renames, lost claim races, dropped heartbeats,
//! optionally process aborts — via `StdRng`, so a chaos run that trips a bug
//! is replayed exactly by rerunning the same seed. [`run_chaos_suite`]
//! drives a sharded suite to completion *under* such a schedule and returns
//! the merged manifest; the chaos tests (and the CI `chaos-smoke` step)
//! assert it is byte-identical to the fault-free reference, turning the
//! determinism contract ("reproduces identically after any interruption")
//! into a property that is searched seed by seed, not sampled by hand-placed
//! kills.

use crate::shard::{
    merge_shards, run_shard_worker, write_queue, MergedManifest, ShardWorkerConfig,
};
use clapton_error::ClaptonError;
use clapton_runtime::failpoint::{self, FailAction, FailRule};
use clapton_runtime::WorkerPool;
use clapton_service::JobSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Expands `seed` into a deterministic fault schedule over the persistence
/// failpoints. Every rule fires on *finite* hit indices, so any run
/// eventually outlives its schedule — injected faults delay completion,
/// they cannot prevent it.
///
/// With `allow_abort` the schedule may include one process abort (for
/// chaos runs whose workers are child processes, like `suite-runner
/// --chaos-seed`); in-process chaos must pass `false`.
pub fn chaos_schedule(seed: u64, allow_abort: bool) -> Vec<FailRule> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0_5c4a_0c4a_05c4);
    let mut rules = Vec::new();
    let hits = |rng: &mut StdRng, max_hit: u64, max_count: usize| -> Vec<u64> {
        let count = rng.gen_range(1..=max_count);
        let mut at: Vec<u64> = (0..count).map(|_| rng.gen_range(1..=max_hit)).collect();
        at.sort_unstable();
        at.dedup();
        at
    };
    // Torn or failed artifact writes: checkpoints, reports, specs.
    if rng.gen_bool(0.9) {
        let action = if rng.gen_bool(0.6) {
            FailAction::Torn(None)
        } else {
            FailAction::Err
        };
        rules.push(FailRule::at(
            "registry.write.flush",
            action,
            &hits(&mut rng, 60, 4),
        ));
    }
    // Renames that never happen (crash between tmp write and commit).
    if rng.gen_bool(0.5) {
        rules.push(FailRule::at(
            "registry.write.rename",
            FailAction::Err,
            &hits(&mut rng, 60, 3),
        ));
    }
    // Lost claim races.
    if rng.gen_bool(0.5) {
        rules.push(FailRule::at(
            "workqueue.claim.hardlink",
            FailAction::Err,
            &hits(&mut rng, 16, 2),
        ));
    }
    // Dropped heartbeats: the owner stands down mid-job and the job is
    // resumed from its checkpoint (by a peer, or by the next sweep).
    if rng.gen_bool(0.5) {
        rules.push(FailRule::at(
            "workqueue.heartbeat",
            FailAction::Err,
            &hits(&mut rng, 24, 2),
        ));
    }
    // Failed queue-record persists (server submissions).
    if rng.gen_bool(0.3) {
        rules.push(FailRule::at(
            "server.queue.persist",
            FailAction::Err,
            &hits(&mut rng, 4, 1),
        ));
    }
    if allow_abort && rng.gen_bool(0.5) {
        rules.push(FailRule::at(
            "registry.write.flush",
            FailAction::Abort,
            &[rng.gen_range(20..=80)],
        ));
    }
    if rules.is_empty() {
        // A seed that sampled nothing still injects *something* — an empty
        // schedule would silently degrade the chaos run to a plain run.
        rules.push(FailRule::at(
            "registry.write.flush",
            FailAction::Torn(None),
            &hits(&mut rng, 40, 2),
        ));
    }
    rules
}

/// Renders a schedule as a `CLAPTON_FAILPOINTS` spec string (the form the
/// `suite-runner` parent passes to its worker children).
pub fn schedule_spec(rules: &[FailRule]) -> String {
    rules
        .iter()
        .map(FailRule::to_spec)
        .collect::<Vec<_>>()
        .join(";")
}

/// Outcome of one in-process chaos run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The merged manifest the run converged to.
    pub manifest: MergedManifest,
    /// Worker sweeps it took to drain the queue under fault injection (1 =
    /// the schedule never interrupted a sweep).
    pub sweeps: usize,
}

/// Runs the given suite as a shard run at `root` *under* the fault schedule
/// for `seed`, sweeping until every job completes, then disarms the
/// failpoints and merges. The returned manifest must be byte-identical to a
/// fault-free run's — that is the property the chaos tests assert.
///
/// In-process: the schedule is installed via [`failpoint::install`] (no
/// aborts — this process is the test), so callers must hold
/// [`failpoint::tests_exclusive`] when running under `cargo test`.
///
/// # Errors
///
/// Spec/IO errors from queue setup or the final merge, or a run that failed
/// to converge within the sweep budget (faults are finite, so this means a
/// real recovery bug).
pub fn run_chaos_suite(
    root: &Path,
    specs: &[JobSpec],
    seed: u64,
    pool_workers: usize,
) -> Result<ChaosOutcome, ClaptonError> {
    write_queue(root, specs)?;
    failpoint::install(chaos_schedule(seed, false));
    let config = ShardWorkerConfig {
        worker_id: Some(format!("chaos-{seed}")),
        poll: Duration::from_millis(10),
        // Terminal failure would poison the manifest; injected faults are
        // finite, so unbounded retry always converges.
        max_job_attempts: usize::MAX,
        ..ShardWorkerConfig::default()
    };
    let mut sweeps = 0;
    const SWEEP_BUDGET: usize = 64;
    let complete = loop {
        sweeps += 1;
        let pool = Arc::new(WorkerPool::with_workers(pool_workers));
        // A sweep may itself die of an injected fault (e.g. during admit);
        // the next sweep resumes from whatever checkpoints survived.
        match run_shard_worker(root, pool, None, &config) {
            Ok(outcome) if outcome.is_complete() => break true,
            Ok(_) | Err(_) => {}
        }
        if sweeps >= SWEEP_BUDGET {
            break false;
        }
    };
    failpoint::clear();
    if !complete {
        return Err(ClaptonError::JobAborted {
            job: format!("chaos suite (seed {seed})"),
            detail: format!("queue did not drain within {SWEEP_BUDGET} sweeps"),
        });
    }
    let manifest = merge_shards(root, specs)?;
    Ok(ChaosOutcome { manifest, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic_and_finite() {
        let a = chaos_schedule(42, true);
        let b = chaos_schedule(42, true);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        let c = chaos_schedule(43, true);
        assert_ne!(
            schedule_spec(&a),
            schedule_spec(&c),
            "different seeds diverge"
        );
        // Every emitted spec parses back through the env grammar.
        for seed in 0..32 {
            let rules = chaos_schedule(seed, seed % 2 == 0);
            let spec = schedule_spec(&rules);
            let _gate = failpoint::tests_exclusive();
            failpoint::configure(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e} ({spec})"));
            failpoint::clear();
            // Finite: no rule may fire on every hit.
            assert!(
                !spec.contains("@*"),
                "seed {seed} emitted an unbounded rule"
            );
        }
    }
}
