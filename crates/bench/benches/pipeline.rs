//! End-to-end pipeline benchmarks: one Clapton loss evaluation (transform +
//! `LN` + `L0`), one full quick optimization — the per-candidate and
//! per-run costs behind Figure 9 — and the dispatch overhead of the
//! `JobSpec`/`ClaptonService` front door.

use clapton_circuits::TransformationAnsatz;
use clapton_core::{
    run_clapton, transform_hamiltonian, ClaptonConfig, EvaluatorKind, ExecutableAnsatz,
    LossFunction,
};
use clapton_models::{ising, molecular, Molecule};
use clapton_noise::NoiseModel;
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, SuiteProblem,
    UniformNoise,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_loss_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_loss_eval");
    let cases = [
        ("ising10", ising(10, 0.25)),
        ("xxz10", clapton_models::xxz(10, 1.0)),
        ("H2O", molecular(Molecule::H2O, 1.0)),
        ("H6", molecular(Molecule::H6, 1.0)),
    ];
    for (name, h) in &cases {
        let n = h.num_qubits();
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let t_ansatz = TransformationAnsatz::new(n);
        let gamma: Vec<u8> = (0..t_ansatz.num_genes()).map(|i| (i % 4) as u8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let transformed = transform_hamiltonian(black_box(h), &t_ansatz.gates(&gamma));
                loss.total(&transformed)
            });
        });
    }
    group.finish();
}

fn bench_full_quick_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_quick_run");
    group.sample_size(10);
    for n in [6usize, 10] {
        let h = ising(n, 0.25);
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_clapton(black_box(&h), &exec, &ClaptonConfig::quick(1)));
        });
    }
    group.finish();
}

/// Pins the cost of the declarative front door: parsing a spec from JSON
/// plus `validate()` (the pure dispatch work every submission pays) against
/// the direct `run_clapton` call it routes to, and the full
/// `ClaptonService::run` of the same job. The headline
/// `dispatch_overhead_pct` row asserts the front door stays off the hot
/// path — parse + validate is microseconds against a run of hundreds of
/// milliseconds.
fn emit_service_dispatch_overhead(_c: &mut Criterion) {
    let n = 6;
    let (p1, p2, readout) = (3e-4, 8e-3, 2e-2);
    let h = ising(n, 0.25);
    let model = NoiseModel::uniform(n, p1, p2, readout);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.25)".to_string(),
        qubits: n,
    }));
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1,
        p2,
        readout,
        t1: None,
    });
    spec.methods = vec![MethodSpec::Clapton];
    spec.engine = EngineSpec::Quick;
    spec.seed = 1;
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");
    let service = ClaptonService::new();

    fn median_ns(samples: &mut [u128]) -> u128 {
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
    fn time(f: &mut dyn FnMut()) -> u128 {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_nanos()
    }

    // Pure dispatch: parse + validate, amortized over many reps per sample.
    const PARSE_REPS: u128 = 200;
    let mut parse_samples: Vec<u128> = (0..12)
        .map(|_| {
            time(&mut || {
                for _ in 0..PARSE_REPS {
                    let parsed: JobSpec =
                        serde_json::from_str(black_box(&spec_json)).expect("parses");
                    black_box(parsed.validate().expect("validates"));
                }
            }) / PARSE_REPS
        })
        .collect();

    // Direct engine call vs the same job through the service, interleaved
    // so clock drift cannot manufacture an overhead.
    let mut direct_samples = Vec::new();
    let mut service_samples = Vec::new();
    black_box(run_clapton(&h, &exec, &ClaptonConfig::quick(1)));
    black_box(service.run(spec.clone()).expect("job converges"));
    for round in 0..4 {
        let run_direct = &mut || {
            black_box(run_clapton(black_box(&h), &exec, &ClaptonConfig::quick(1)));
        };
        let run_service = &mut || {
            let parsed: JobSpec = serde_json::from_str(&spec_json).expect("parses");
            black_box(service.run(parsed).expect("job converges"));
        };
        if round % 2 == 0 {
            direct_samples.push(time(run_direct));
            service_samples.push(time(run_service));
        } else {
            service_samples.push(time(run_service));
            direct_samples.push(time(run_direct));
        }
    }
    let parse_validate = median_ns(&mut parse_samples);
    let direct = median_ns(&mut direct_samples);
    let through_service = median_ns(&mut service_samples);
    let overhead_pct = 100.0 * parse_validate as f64 / direct.max(1) as f64;
    println!(
        "service_dispatch_overhead: parse+validate {parse_validate} ns, direct {direct} ns, \
         via service {through_service} ns ({overhead_pct:.4}% dispatch overhead)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"service_dispatch_overhead\",\"id\":\"ising6_quick\",\
         \"parse_validate_ns\":{parse_validate},\"direct_ns\":{direct},\
         \"service_ns\":{through_service},\"dispatch_overhead_pct\":{overhead_pct:.4}}}"
    ));
}

/// Pins the cost of putting the front door on a socket: the full loopback
/// `POST /v1/jobs` → `202` round trip (HTTP parse, admission control,
/// durable queue record, response) against the in-process
/// `admit()` + `inspect()` the server wraps. The server runs
/// admission-only (`dispatchers: 0`) so no job execution competes with the
/// submissions being timed.
fn emit_server_submit_overhead(_c: &mut Criterion) {
    use clapton_server::client::Client;
    use clapton_server::{AdmissionConfig, Server, ServerConfig};

    fn spec_for(seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
            name: "ising(J=0.25)".to_string(),
            qubits: 6,
        }));
        spec.noise = NoiseSpec::Uniform(UniformNoise {
            p1: 3e-4,
            p2: 8e-3,
            readout: 2e-2,
            t1: None,
        });
        spec.methods = vec![MethodSpec::Clapton];
        spec.engine = EngineSpec::Quick;
        spec.seed = seed;
        spec
    }
    fn median_ns(samples: &mut [u128]) -> u128 {
        samples.sort_unstable();
        samples[samples.len() / 2]
    }

    let root = std::env::temp_dir().join(format!("clapton-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ServerConfig {
        dispatchers: 0,
        pool_workers: 1,
        admission: AdmissionConfig {
            queue_depth: 4096,
            ..AdmissionConfig::default()
        },
        ..ServerConfig::new(&root)
    };
    let server = Server::bind(config).expect("bind benchmark server");
    let handle = server.handle();
    let addr = handle.local_addr().to_string();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));
    let client = Client::new(addr);

    // Warm up the accept path, then time each submission individually
    // (distinct seeds: every submission admits a fresh job rather than
    // short-circuiting on an already-admitted artifact directory).
    for seed in 0..4u64 {
        let json = serde_json::to_string(&spec_for(seed)).expect("spec serializes");
        assert_eq!(client.submit(&json).expect("warmup submit").status, 202);
    }
    let mut submit_samples: Vec<u128> = (100..140u64)
        .map(|seed| {
            let json = serde_json::to_string(&spec_for(seed)).expect("spec serializes");
            let t0 = std::time::Instant::now();
            let response = client.submit(&json).expect("submit");
            let elapsed = t0.elapsed().as_nanos();
            assert_eq!(response.status, 202, "{}", response.body);
            elapsed
        })
        .collect();
    let submit = median_ns(&mut submit_samples);
    handle.drain();
    serve.join().expect("serve thread");

    // The in-process work the server wraps: validate + artifact-directory
    // prepare + artifact inspection, on a fresh service over the same root.
    let service = ClaptonService::new()
        .with_artifacts(root.join("artifacts"))
        .expect("artifact root");
    let mut admit_samples: Vec<u128> = (200..240u64)
        .map(|seed| {
            let spec = spec_for(seed);
            let t0 = std::time::Instant::now();
            let admitted = service.admit(black_box(spec)).expect("admit");
            black_box(service.inspect(&admitted).expect("inspect"));
            t0.elapsed().as_nanos()
        })
        .collect();
    let admit = median_ns(&mut admit_samples);
    let _ = std::fs::remove_dir_all(&root);

    let network_overhead_ns = submit.saturating_sub(admit);
    println!(
        "server_submit_overhead: loopback POST->202 {submit} ns, in-process \
         admit+inspect {admit} ns ({network_overhead_ns} ns HTTP+persist overhead)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"server_submit_overhead\",\"id\":\"ising6_quick_loopback\",\
         \"submit_ns\":{submit},\"admit_ns\":{admit},\
         \"network_overhead_ns\":{network_overhead_ns}}}"
    ));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_loss_evaluation, bench_full_quick_run, emit_service_dispatch_overhead,
        emit_server_submit_overhead
}
criterion_main!(benches);
