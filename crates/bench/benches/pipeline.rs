//! End-to-end pipeline benchmarks: one Clapton loss evaluation (transform +
//! `LN` + `L0`), one full quick optimization — the per-candidate and
//! per-run costs behind Figure 9 — and the dispatch overhead of the
//! `JobSpec`/`ClaptonService` front door.

use clapton_circuits::TransformationAnsatz;
use clapton_core::{
    run_clapton, transform_hamiltonian, ClaptonConfig, EvaluatorKind, ExecutableAnsatz,
    LossFunction,
};
use clapton_models::{ising, molecular, Molecule};
use clapton_noise::NoiseModel;
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, SuiteProblem,
    UniformNoise,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_loss_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_loss_eval");
    let cases = [
        ("ising10", ising(10, 0.25)),
        ("xxz10", clapton_models::xxz(10, 1.0)),
        ("H2O", molecular(Molecule::H2O, 1.0)),
        ("H6", molecular(Molecule::H6, 1.0)),
    ];
    for (name, h) in &cases {
        let n = h.num_qubits();
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let t_ansatz = TransformationAnsatz::new(n);
        let gamma: Vec<u8> = (0..t_ansatz.num_genes()).map(|i| (i % 4) as u8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let transformed = transform_hamiltonian(black_box(h), &t_ansatz.gates(&gamma));
                loss.total(&transformed)
            });
        });
    }
    group.finish();
}

fn bench_full_quick_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_quick_run");
    group.sample_size(10);
    for n in [6usize, 10] {
        let h = ising(n, 0.25);
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_clapton(black_box(&h), &exec, &ClaptonConfig::quick(1)));
        });
    }
    group.finish();
}

/// Pins the cost of the declarative front door: parsing a spec from JSON
/// plus `validate()` (the pure dispatch work every submission pays) against
/// the direct `run_clapton` call it routes to, and the full
/// `ClaptonService::run` of the same job. The headline
/// `dispatch_overhead_pct` row asserts the front door stays off the hot
/// path — parse + validate is microseconds against a run of hundreds of
/// milliseconds.
fn emit_service_dispatch_overhead(_c: &mut Criterion) {
    let n = 6;
    let (p1, p2, readout) = (3e-4, 8e-3, 2e-2);
    let h = ising(n, 0.25);
    let model = NoiseModel::uniform(n, p1, p2, readout);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.25)".to_string(),
        qubits: n,
    }));
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1,
        p2,
        readout,
        t1: None,
    });
    spec.methods = vec![MethodSpec::Clapton];
    spec.engine = EngineSpec::Quick;
    spec.seed = 1;
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");
    let service = ClaptonService::new();

    fn median_ns(samples: &mut [u128]) -> u128 {
        samples.sort_unstable();
        samples[samples.len() / 2]
    }
    fn time(f: &mut dyn FnMut()) -> u128 {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_nanos()
    }

    // Pure dispatch: parse + validate, amortized over many reps per sample.
    const PARSE_REPS: u128 = 200;
    let mut parse_samples: Vec<u128> = (0..12)
        .map(|_| {
            time(&mut || {
                for _ in 0..PARSE_REPS {
                    let parsed: JobSpec =
                        serde_json::from_str(black_box(&spec_json)).expect("parses");
                    black_box(parsed.validate().expect("validates"));
                }
            }) / PARSE_REPS
        })
        .collect();

    // Direct engine call vs the same job through the service, interleaved
    // so clock drift cannot manufacture an overhead.
    let mut direct_samples = Vec::new();
    let mut service_samples = Vec::new();
    black_box(run_clapton(&h, &exec, &ClaptonConfig::quick(1)));
    black_box(service.run(spec.clone()).expect("job converges"));
    for round in 0..4 {
        let run_direct = &mut || {
            black_box(run_clapton(black_box(&h), &exec, &ClaptonConfig::quick(1)));
        };
        let run_service = &mut || {
            let parsed: JobSpec = serde_json::from_str(&spec_json).expect("parses");
            black_box(service.run(parsed).expect("job converges"));
        };
        if round % 2 == 0 {
            direct_samples.push(time(run_direct));
            service_samples.push(time(run_service));
        } else {
            service_samples.push(time(run_service));
            direct_samples.push(time(run_direct));
        }
    }
    let parse_validate = median_ns(&mut parse_samples);
    let direct = median_ns(&mut direct_samples);
    let through_service = median_ns(&mut service_samples);
    let overhead_pct = 100.0 * parse_validate as f64 / direct.max(1) as f64;
    println!(
        "service_dispatch_overhead: parse+validate {parse_validate} ns, direct {direct} ns, \
         via service {through_service} ns ({overhead_pct:.4}% dispatch overhead)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"service_dispatch_overhead\",\"id\":\"ising6_quick\",\
         \"parse_validate_ns\":{parse_validate},\"direct_ns\":{direct},\
         \"service_ns\":{through_service},\"dispatch_overhead_pct\":{overhead_pct:.4}}}"
    ));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_loss_evaluation, bench_full_quick_run, emit_service_dispatch_overhead
}
criterion_main!(benches);
