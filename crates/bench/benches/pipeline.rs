//! End-to-end pipeline benchmarks: one Clapton loss evaluation (transform +
//! `LN` + `L0`) and one full quick optimization — the per-candidate and
//! per-run costs behind Figure 9.

use clapton_circuits::TransformationAnsatz;
use clapton_core::{
    run_clapton, transform_hamiltonian, ClaptonConfig, EvaluatorKind, ExecutableAnsatz,
    LossFunction,
};
use clapton_models::{ising, molecular, Molecule};
use clapton_noise::NoiseModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_loss_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_loss_eval");
    let cases = [
        ("ising10", ising(10, 0.25)),
        ("xxz10", clapton_models::xxz(10, 1.0)),
        ("H2O", molecular(Molecule::H2O, 1.0)),
        ("H6", molecular(Molecule::H6, 1.0)),
    ];
    for (name, h) in &cases {
        let n = h.num_qubits();
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let t_ansatz = TransformationAnsatz::new(n);
        let gamma: Vec<u8> = (0..t_ansatz.num_genes()).map(|i| (i % 4) as u8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let transformed = transform_hamiltonian(black_box(h), &t_ansatz.gates(&gamma));
                loss.total(&transformed)
            });
        });
    }
    group.finish();
}

fn bench_full_quick_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("clapton_quick_run");
    group.sample_size(10);
    for n in [6usize, 10] {
        let h = ising(n, 0.25);
        let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(n, &model);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_clapton(black_box(&h), &exec, &ClaptonConfig::quick(1)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_loss_evaluation, bench_full_quick_run
}
criterion_main!(benches);
