//! Microbenchmarks of the dense simulation substrate (the device-evaluation
//! cost that dominates VQE runs in Figures 5 and 6).

use clapton_circuits::HardwareEfficientAnsatz;
use clapton_models::ising;
use clapton_noise::NoiseModel;
use clapton_sim::{ground_energy, DeviceEvaluator, StateVector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_ansatz");
    for n in [6usize, 8, 10] {
        let ansatz = HardwareEfficientAnsatz::new(n);
        let theta: Vec<f64> = (0..ansatz.num_parameters())
            .map(|i| 0.1 * i as f64)
            .collect();
        let circuit = ansatz.circuit(&theta);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| StateVector::from_circuit(black_box(&circuit)));
        });
    }
    group.finish();
}

fn bench_device_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_evaluation");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let ansatz = HardwareEfficientAnsatz::new(n);
        let theta: Vec<f64> = (0..ansatz.num_parameters())
            .map(|i| 0.2 * i as f64)
            .collect();
        let circuit = ansatz.circuit(&theta);
        let mut model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
        model.set_t1_uniform(100e-6);
        let h = ising(n, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DeviceEvaluator::run(black_box(&circuit), &model).energy(&h));
        });
    }
    group.finish();
}

fn bench_ground_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos_ground_energy");
    group.sample_size(10);
    for n in [8usize, 10, 12] {
        let h = ising(n, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ground_energy(black_box(&h)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_statevector, bench_device_evaluation, bench_ground_energy
}
criterion_main!(benches);
