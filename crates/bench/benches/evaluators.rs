//! Ablation bench (DESIGN.md): exact Pauli back-propagation vs stim-style
//! frame sampling for the noisy loss `LN` — the design choice that makes
//! this reproduction's default loss deterministic — plus the
//! population-batch evaluation paths of the `LossEvaluator` API
//! (sequential vs thread-parallel vs cached).
//!
//! The sampled rows exercise the bit-parallel `FrameBatch` kernel
//! (`ln_sampled_*`), its scalar one-frame-per-shot reference
//! (`ln_sampled_scalar_*`), and emit an explicit batched-vs-scalar speedup
//! record so regressions of the word-level path are visible directly in
//! `BENCH_results.json`.

use clapton_circuits::{HardwareEfficientAnsatz, TransformationAnsatz};
use clapton_core::{
    CachedEvaluator, EvaluatorKind, ExecutableAnsatz, LossEvaluator, ParallelEvaluator,
    PooledEvaluator, TransformLoss, WorkerPool,
};
use clapton_models::{ising, xxz};
use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
use clapton_pauli::{Pauli, PauliString, PauliSum};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn noisy_zero_circuit(n: usize) -> NoisyCircuit {
    let ansatz = HardwareEfficientAnsatz::new(n);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    NoisyCircuit::from_circuit(&ansatz.circuit_at_zero(), &model).expect("Clifford at zero")
}

/// XXZ chain plus transverse Z fields: `4n - 3` terms, so `n = 20` gives a
/// 77-term Hamiltonian — past the 64-lane word boundary of the batched
/// exact path (the `M ≥ 64` regime of molecule-scale problems).
fn xxz_field(n: usize) -> PauliSum {
    let mut h = xxz(n, 1.0);
    for q in 0..n {
        h.push(0.5, PauliString::single(n, q, Pauli::Z));
    }
    h
}

fn bench_exact_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ln_exact");
    for n in [10usize, 20, 40] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let eval = ExactEvaluator::new(&nc);
            b.iter(|| eval.energy(black_box(&h)));
        });
    }
    group.finish();
}

fn bench_exact_batched(c: &mut Criterion) {
    // The bit-parallel batched exact path (64 terms per circuit walk) on
    // Hamiltonians past the 64-lane boundary.
    let mut group = c.benchmark_group("ln_exact_batched");
    for n in [20usize, 40] {
        let h = xxz_field(n);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let eval = ExactEvaluator::new(&nc);
            b.iter(|| eval.energy_batched(black_box(&h)));
        });
    }
    group.finish();
}

/// Measures the batched-vs-scalar *exact* back-propagation speedup directly
/// and appends it to the BENCH results file — same counterbalanced ABBA
/// interleaving as the sampled-path speedup, so row-order clock drift can't
/// manufacture (or hide) the headline ratio.
fn emit_exact_speedup(_c: &mut Criterion) {
    for n in [20usize, 40] {
        let h = xxz_field(n);
        let nc = noisy_zero_circuit(n);
        let eval = ExactEvaluator::new(&nc);
        // One timed sample = REPS full-Hamiltonian energies (single calls
        // are microseconds — too close to timer noise on a shared box).
        const REPS: usize = 24;
        let mut run_batched = || {
            for _ in 0..REPS {
                black_box(eval.energy_batched(black_box(&h)));
            }
        };
        let mut run_scalar = || {
            for _ in 0..REPS {
                black_box(eval.energy_scalar(black_box(&h)));
            }
        };
        let (batched_samples, scalar_samples) =
            counterbalanced_samples(12, &mut run_batched, &mut run_scalar);
        let (batched, scalar) = (
            median(batched_samples) / REPS as u128,
            median(scalar_samples) / REPS as u128,
        );
        let speedup = scalar as f64 / batched.max(1) as f64;
        println!(
            "ln_exact_speedup/{n}: {speedup:.1}x (scalar {scalar} ns / batched {batched} ns, {} terms)",
            h.num_terms()
        );
        criterion::append_line(&format!(
            "{{\"group\":\"ln_exact_speedup\",\"id\":\"{n}\",\"batched_ns\":{batched},\"scalar_ns\":{scalar},\"speedup_x\":{speedup:.2}}}"
        ));
    }
}

fn bench_sampled_energy(c: &mut Criterion) {
    // The bit-parallel default path (64 shots per circuit pass).
    let mut group = c.benchmark_group("ln_sampled_256shots");
    group.sample_size(10);
    for n in [10usize, 20] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sampler = FrameSampler::new(&nc);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| sampler.energy(black_box(&h), 256, &mut rng));
        });
    }
    group.finish();
}

fn bench_sampled_energy_scalar(c: &mut Criterion) {
    // The one-frame-per-shot reference the batch kernel replaced.
    let mut group = c.benchmark_group("ln_sampled_scalar_256shots");
    group.sample_size(10);
    for n in [10usize, 20] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sampler = FrameSampler::new(&nc);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                black_box(&h)
                    .iter()
                    .map(|(coeff, p)| coeff * sampler.expectation_scalar(p, 256, &mut rng))
                    .sum::<f64>()
            });
        });
    }
    group.finish();
}

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The shared counterbalanced interleaving behind every head-to-head
/// measurement: one warmup call each, then `rounds` rounds alternating
/// ABBA / BAAB, so slow clock drift across the bench run (very visible on
/// small containers) cancels instead of systematically penalizing either
/// contender, and neither systematically owns the sequence boundaries.
/// Returns the raw nanosecond samples `(a, b)`.
fn counterbalanced_samples(
    rounds: usize,
    run_a: &mut dyn FnMut(),
    run_b: &mut dyn FnMut(),
) -> (Vec<u128>, Vec<u128>) {
    let mut samples_a = Vec::with_capacity(2 * rounds);
    let mut samples_b = Vec::with_capacity(2 * rounds);
    run_a();
    run_b();
    fn time(f: &mut dyn FnMut()) -> u128 {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_nanos()
    }
    for round in 0..rounds {
        if round % 2 == 0 {
            samples_a.push(time(run_a));
            samples_b.push(time(run_b));
            samples_b.push(time(run_b));
            samples_a.push(time(run_a));
        } else {
            samples_b.push(time(run_b));
            samples_a.push(time(run_a));
            samples_a.push(time(run_a));
            samples_b.push(time(run_b));
        }
    }
    (samples_a, samples_b)
}

/// Times two contenders with [`counterbalanced_samples`] and emits one row
/// per contender in the standard format.
fn bench_head_to_head(
    group: &str,
    (id_a, mut run_a): (&str, impl FnMut()),
    (id_b, mut run_b): (&str, impl FnMut()),
) {
    let (samples_a, samples_b) = counterbalanced_samples(12, &mut run_a, &mut run_b);
    for (id, mut samples) in [(id_a, samples_a), (id_b, samples_b)] {
        samples.sort_unstable();
        let (median, best) = (samples[samples.len() / 2], samples[0]);
        println!(
            "{group}/{id}: median {:.2} ms (best {:.2} ms, {} interleaved samples)",
            median as f64 / 1e6,
            best as f64 / 1e6,
            samples.len()
        );
        criterion::append_record(group, id, median, best, samples.len());
    }
}

/// Measures the batched-vs-scalar sampled-path speedup directly and appends
/// it to the BENCH results file, so a regression of the word-level kernel
/// shows up as a number, not as two rows someone has to divide. Samples are
/// interleaved via [`counterbalanced_samples`] for the same reason as
/// [`bench_head_to_head`]: a ratio of two back-to-back blocks would bake
/// row-order clock drift into the headline metric.
fn emit_sampled_speedup(_c: &mut Criterion) {
    for n in [10usize, 20] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        let sampler = FrameSampler::new(&nc);
        // One RNG stream shared by both contenders (cell-wrapped so each
        // closure can borrow it in turn).
        let rng = std::cell::RefCell::new(StdRng::seed_from_u64(5));
        let mut run_batched = || {
            black_box(sampler.energy(black_box(&h), 256, &mut *rng.borrow_mut()));
        };
        let mut run_scalar = || {
            let rng = &mut *rng.borrow_mut();
            let e: f64 = black_box(&h)
                .iter()
                .map(|(coeff, p)| coeff * sampler.expectation_scalar(p, 256, rng))
                .sum();
            black_box(e);
        };
        let (batched_samples, scalar_samples) =
            counterbalanced_samples(5, &mut run_batched, &mut run_scalar);
        let (batched, scalar) = (median(batched_samples), median(scalar_samples));
        let speedup = scalar as f64 / batched.max(1) as f64;
        println!(
            "ln_sampled_speedup/{n}: {speedup:.1}x (scalar {scalar} ns / batched {batched} ns)"
        );
        criterion::append_line(&format!(
            "{{\"group\":\"ln_sampled_speedup\",\"id\":\"{n}\",\"batched_ns\":{batched},\"scalar_ns\":{scalar},\"speedup_x\":{speedup:.2}}}"
        ));
    }
}

/// Measures the cost of leaving telemetry enabled on the two hot paths the
/// issue budgets (<2% on both): the exact evaluator kernel and the pooled
/// population batch. Enabled-vs-disabled runs are ABBA-interleaved via
/// [`counterbalanced_samples`]; the disabled contender exercises the
/// documented no-op path (one relaxed atomic load per instrument site — the
/// `noop` cargo feature folds even that to a compile-time constant).
fn emit_telemetry_overhead(_c: &mut Criterion) {
    let n = 20;
    let h_exact = ising(n, 0.25);
    let nc = noisy_zero_circuit(n);
    let exact = ExactEvaluator::new(&nc);

    let np = 10;
    let h_pop = ising(np, 0.25);
    let model = NoiseModel::uniform(np, 3e-4, 8e-3, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(np, &model);
    let ansatz = TransformationAnsatz::new(np);
    let loss = TransformLoss::new(&h_pop, &exec, &ansatz, EvaluatorKind::Exact);
    let mut rng = StdRng::seed_from_u64(17);
    let population: Vec<Vec<u8>> = (0..96)
        .map(|_| {
            (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4u8))
                .collect()
        })
        .collect();
    let pool = Arc::new(WorkerPool::new());
    let pooled = PooledEvaluator::new(&loss, pool);

    type Workload<'a> = Box<dyn FnMut() + 'a>;
    let cases: Vec<(&str, Workload)> = vec![
        (
            "ln_exact",
            Box::new(move || {
                for _ in 0..20 {
                    black_box(exact.energy(black_box(&h_exact)));
                }
            }),
        ),
        (
            "population_batch_96",
            Box::new(move || {
                black_box(pooled.evaluate_population(black_box(&population)));
            }),
        ),
    ];
    for (id, run) in cases {
        // Cell-wrapped so the enabled and disabled contenders can borrow
        // the same workload in turn (the interleaving never overlaps them).
        let run = std::cell::RefCell::new(run);
        let mut run_enabled = || {
            clapton_telemetry::set_enabled(true);
            (run.borrow_mut())();
        };
        let mut run_disabled = || {
            clapton_telemetry::set_enabled(false);
            (run.borrow_mut())();
        };
        let (enabled_samples, disabled_samples) =
            counterbalanced_samples(12, &mut run_enabled, &mut run_disabled);
        clapton_telemetry::set_enabled(true);
        let (enabled, disabled) = (median(enabled_samples), median(disabled_samples));
        let overhead_pct = (enabled as f64 - disabled as f64) / disabled.max(1) as f64 * 100.0;
        println!(
            "telemetry_overhead/{id}: {overhead_pct:+.2}% \
             (enabled {enabled} ns / disabled {disabled} ns, budget <2%)"
        );
        criterion::append_line(&format!(
            "{{\"group\":\"telemetry_overhead\",\"id\":\"{id}\",\"enabled_ns\":{enabled},\"disabled_ns\":{disabled},\"overhead_pct\":{overhead_pct:.2}}}"
        ));
    }
}

/// Measures the cost of a *disarmed* failpoint on the exact evaluator
/// kernel (the issue budgets <1%): the instrumented contender pays one
/// `failpoint::check` — a single relaxed atomic load when no schedule is
/// installed — per energy call. ABBA-interleaved, like every head-to-head
/// row, so clock drift cannot manufacture an overhead.
fn emit_failpoint_overhead(_c: &mut Criterion) {
    use clapton_runtime::failpoint;
    let n = 20;
    let h = ising(n, 0.25);
    let nc = noisy_zero_circuit(n);
    let eval = ExactEvaluator::new(&nc);
    assert!(
        !failpoint::armed(),
        "benches must run with no fault schedule"
    );
    const REPS: usize = 20;
    let mut run_probed = || {
        for _ in 0..REPS {
            failpoint::check("bench.probe").expect("disarmed probe never fires");
            black_box(eval.energy(black_box(&h)));
        }
    };
    let mut run_plain = || {
        for _ in 0..REPS {
            black_box(eval.energy(black_box(&h)));
        }
    };
    let (probed_samples, plain_samples) =
        counterbalanced_samples(12, &mut run_probed, &mut run_plain);
    let (probed, plain) = (median(probed_samples), median(plain_samples));
    let overhead_pct = (probed as f64 - plain as f64) / plain.max(1) as f64 * 100.0;
    println!(
        "failpoint_overhead/ln_exact: {overhead_pct:+.2}% \
         (probed {probed} ns / plain {plain} ns, budget <1%)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"failpoint_overhead\",\"id\":\"ln_exact\",\"probed_ns\":{probed},\"plain_ns\":{plain},\"overhead_pct\":{overhead_pct:.2}}}"
    ));
}

/// The persistent result store head-to-head (docs/CACHING.md): a quick
/// Clapton job on the six-qubit Ising benchmark run *cold* (empty store —
/// the full GA search plus write-back) vs *warm* (a pre-warmed store on a
/// fresh artifact root — the report answered from disk at admission).
/// ABBA-interleaved like every head-to-head row; the issue budgets the warm
/// path ≥ 10× faster than cold. Also emits the one-time write-back cost a
/// first run pays for persisting its genomes (the cache-*off* path is the
/// unchanged code every other group measures) and the cross-run hit rate of
/// running a reduced suite twice against one store.
fn emit_loss_cache(_c: &mut Criterion) {
    use clapton_bench::{run_spec_suite_with_cache, Options, SuiteConfig};
    use clapton_service::{
        CacheConfig, CacheStore, ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec,
        ProblemSpec, SuiteProblem, UniformNoise,
    };

    fn quick_spec() -> JobSpec {
        let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
            name: "ising(J=0.50)".to_string(),
            qubits: 6,
        }));
        spec.methods = vec![MethodSpec::Clapton];
        spec.engine = EngineSpec::Quick;
        spec.noise = NoiseSpec::Uniform(UniformNoise {
            p1: 3e-4,
            p2: 8e-3,
            readout: 2e-2,
            t1: None,
        });
        spec.seed = 11;
        spec
    }

    let scratch = std::env::temp_dir().join(format!("clapton-loss-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    // Every run gets its own artifact root so the warm contender can only be
    // answered by the store, never by a leftover report.json.
    let ticket = std::cell::Cell::new(0u64);
    let fresh_root = |tag: &str| {
        let t = ticket.get();
        ticket.set(t + 1);
        scratch.join(format!("{tag}-{t}"))
    };
    let pool = Arc::new(WorkerPool::new());

    // Pre-warm one shared store with the spec's report and genome losses.
    let warm_store = Arc::new(
        CacheStore::open(scratch.join("warm-cache"), CacheConfig::default()).expect("store opens"),
    );
    ClaptonService::with_pool(Arc::clone(&pool))
        .with_artifacts(fresh_root("prewarm"))
        .expect("registry opens")
        .with_cache(Arc::clone(&warm_store))
        .run(quick_spec())
        .expect("pre-warm run");

    let mut run_cold = || {
        let root = fresh_root("cold");
        let service = ClaptonService::with_pool(Arc::clone(&pool))
            .with_artifacts(&root)
            .expect("registry opens")
            .with_cache_under(&root)
            .expect("store opens");
        black_box(service.run(quick_spec()).expect("cold run"));
    };
    let mut run_warm = || {
        let root = fresh_root("warm");
        let service = ClaptonService::with_pool(Arc::clone(&pool))
            .with_artifacts(&root)
            .expect("registry opens")
            .with_cache(Arc::clone(&warm_store));
        black_box(service.run(quick_spec()).expect("warm run"));
    };
    let (cold_samples, warm_samples) = counterbalanced_samples(4, &mut run_cold, &mut run_warm);
    for (id, samples) in [
        ("clapton_quick_cold", &cold_samples),
        ("clapton_quick_warm", &warm_samples),
    ] {
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let (median, best) = (sorted[sorted.len() / 2], sorted[0]);
        println!(
            "loss_cache/{id}: median {:.2} ms (best {:.2} ms, {} interleaved samples)",
            median as f64 / 1e6,
            best as f64 / 1e6,
            sorted.len()
        );
        criterion::append_record("loss_cache", id, median, best, sorted.len());
    }
    let (cold, warm) = (median(cold_samples), median(warm_samples));
    let speedup = cold as f64 / warm.max(1) as f64;
    println!(
        "loss_cache/cold_vs_warm_speedup: {speedup:.1}x \
         (cold {cold} ns / warm {warm} ns, budget ≥10x)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"loss_cache\",\"id\":\"cold_vs_warm_speedup\",\"cold_ns\":{cold},\"warm_ns\":{warm},\"speedup_x\":{speedup:.2}}}"
    ));

    // Cold write-back overhead: what a *first* run pays for persisting every
    // scored genome (the cache-off path is the unchanged code the other
    // groups in this file already measure — `store: None` short-circuits
    // before any cache work). Write-back is a one-time cost the warm-run
    // speedup amortizes across every later run of the same objective.
    let mut run_cache_on = || {
        let root = fresh_root("on");
        let service = ClaptonService::with_pool(Arc::clone(&pool))
            .with_artifacts(&root)
            .expect("registry opens")
            .with_cache_under(&root)
            .expect("store opens");
        black_box(service.run(quick_spec()).expect("cache-on run"));
    };
    let mut run_cache_off = || {
        let root = fresh_root("off");
        let service = ClaptonService::with_pool(Arc::clone(&pool))
            .with_artifacts(&root)
            .expect("registry opens");
        black_box(service.run(quick_spec()).expect("cache-off run"));
    };
    let (on_samples, off_samples) =
        counterbalanced_samples(3, &mut run_cache_on, &mut run_cache_off);
    let (on, off) = (median(on_samples), median(off_samples));
    let overhead_pct = (on as f64 - off as f64) / off.max(1) as f64 * 100.0;
    println!(
        "loss_cache/cold_write_back_overhead: {overhead_pct:+.2}% \
         (store attached {on} ns / detached {off} ns; one-time cost the warm speedup amortizes)"
    );
    criterion::append_line(&format!(
        "{{\"group\":\"loss_cache\",\"id\":\"cold_write_back_overhead\",\"cache_on_ns\":{on},\"cache_off_ns\":{off},\"overhead_pct\":{overhead_pct:.2}}}"
    ));

    // Cross-run hit rate: a reduced quick suite run twice against one store
    // (fresh artifact roots both times). Every second-pass job should be
    // answered at admission — a pure read workload.
    let suite = SuiteConfig {
        options: Options { effort: 0, seed: 9 },
        qubits: 4,
        halt_after_rounds: None,
    };
    let specs: Vec<JobSpec> = suite.specs().into_iter().take(3).collect();
    let cache_dir = scratch.join("suite-cache");
    let first_store =
        Arc::new(CacheStore::open(&cache_dir, CacheConfig::default()).expect("store opens"));
    run_spec_suite_with_cache(
        fresh_root("suite"),
        specs.clone(),
        Arc::clone(&pool),
        None,
        None,
        Some(first_store),
    )
    .expect("first suite pass");
    let second_store =
        Arc::new(CacheStore::open(&cache_dir, CacheConfig::default()).expect("store opens"));
    run_spec_suite_with_cache(
        fresh_root("suite"),
        specs,
        Arc::clone(&pool),
        None,
        None,
        Some(Arc::clone(&second_store)),
    )
    .expect("second suite pass");
    let stats = second_store.stats();
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;
    println!(
        "loss_cache/cross_run_hit_rate: {hit_rate:.2} \
         ({} hits / {} misses on the second pass)",
        stats.hits, stats.misses
    );
    criterion::append_line(&format!(
        "{{\"group\":\"loss_cache\",\"id\":\"cross_run_hit_rate\",\"hits\":{},\"misses\":{},\"hit_rate\":{hit_rate:.2}}}",
        stats.hits, stats.misses
    ));
    let _ = std::fs::remove_dir_all(&scratch);
}

fn bench_dense_hamiltonian(c: &mut Criterion) {
    // Chemistry-scale term counts: the ten-qubit XXZ (27 terms) vs a
    // hundreds-of-terms surrogate workload via repeated evaluation.
    let mut group = c.benchmark_group("ln_exact_xxz10");
    let h = xxz(10, 1.0);
    let nc = noisy_zero_circuit(10);
    group.bench_function("xxz10", |b| {
        let eval = ExactEvaluator::new(&nc);
        b.iter(|| eval.energy(black_box(&h)));
    });
    group.finish();
}

/// Population-batch evaluation of the real Clapton objective: the speedup
/// the `LossEvaluator` redesign exists to deliver.
///
/// * `sequential` — genome-at-a-time `evaluate` calls: what a closure-based
///   GA pays, rebuilding the noisy circuit for every genome.
/// * `parallel` — the legacy `ParallelEvaluator`, spawning scoped threads
///   per batch.
/// * `parallel_pooled` — chunks dispatched onto the persistent shared
///   `WorkerPool`; each chunk runs the batch fast path (backend prepared
///   once per chunk), and on multicore machines chunks execute in parallel
///   with no per-batch spawn cost.
/// * `cached*` — a 50%-duplicate population (the mix-and-restart regime)
///   replayed through the genome → loss memo.
fn bench_population_batch(c: &mut Criterion) {
    let n = 10;
    let h = ising(n, 0.25);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let ansatz = TransformationAnsatz::new(n);
    let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
    let mut rng = StdRng::seed_from_u64(17);
    let population: Vec<Vec<u8>> = (0..96)
        .map(|_| {
            (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4u8))
                .collect()
        })
        .collect();
    // Mix-round regime: half the population are re-submitted known genomes.
    let mut mixed = population.clone();
    for i in 0..mixed.len() / 2 {
        mixed[2 * i + 1] = population[i].clone();
    }

    let mut group = c.benchmark_group("population_batch_96");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(&population)
                .iter()
                .map(|g| loss.evaluate(g))
                .collect::<Vec<f64>>()
        });
    });
    {
        // The pooled-vs-scoped-threads comparison drove the PooledEvaluator
        // chunk tuning; measure it ABBA-interleaved so row-order clock
        // drift cannot manufacture a winner.
        let parallel = ParallelEvaluator::new(&loss);
        let pool = Arc::new(WorkerPool::new());
        let pooled = PooledEvaluator::new(&loss, pool);
        bench_head_to_head(
            "population_batch_96",
            ("parallel", || {
                black_box(parallel.evaluate_population(black_box(&population)));
            }),
            ("parallel_pooled", || {
                black_box(pooled.evaluate_population(black_box(&population)));
            }),
        );
    }
    group.bench_function("cached_mix_round", |b| {
        b.iter(|| {
            // Fresh cache per iteration: first submission pays, the mixed
            // half and the replay hit the memo.
            let cached = CachedEvaluator::new(&loss);
            let first = cached.evaluate_population(black_box(&mixed));
            let replay = cached.evaluate_population(black_box(&mixed));
            black_box((first, replay))
        });
    });
    group.bench_function("parallel_cached_mix_round", |b| {
        b.iter(|| {
            let cached = CachedEvaluator::new(ParallelEvaluator::new(&loss));
            let first = cached.evaluate_population(black_box(&mixed));
            let replay = cached.evaluate_population(black_box(&mixed));
            black_box((first, replay))
        });
    });
    // The sampled (bit-parallel frame) backend through the same pooled
    // batch path: realistic shot budget, term prep cached per batch.
    let sampled_loss = TransformLoss::new(
        &h,
        &exec,
        &ansatz,
        EvaluatorKind::Sampled {
            shots: 256,
            seed: 5,
        },
    );
    group.bench_function("sampled_pooled_256shots", |b| {
        let pool = Arc::new(WorkerPool::new());
        let pooled = PooledEvaluator::new(&sampled_loss, pool);
        b.iter(|| pooled.evaluate_population(black_box(&population)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_exact_energy, bench_exact_batched, emit_exact_speedup,
        bench_sampled_energy, bench_sampled_energy_scalar,
        emit_sampled_speedup, bench_dense_hamiltonian, bench_population_batch,
        emit_telemetry_overhead, emit_failpoint_overhead, emit_loss_cache
}
criterion_main!(benches);
