//! Ablation bench (DESIGN.md): exact Pauli back-propagation vs stim-style
//! frame sampling for the noisy loss `LN` — the design choice that makes
//! this reproduction's default loss deterministic — plus the
//! population-batch evaluation paths of the `LossEvaluator` API
//! (sequential vs thread-parallel vs cached).

use clapton_circuits::{HardwareEfficientAnsatz, TransformationAnsatz};
use clapton_core::{
    CachedEvaluator, EvaluatorKind, ExecutableAnsatz, LossEvaluator, ParallelEvaluator,
    PooledEvaluator, TransformLoss, WorkerPool,
};
use clapton_models::{ising, xxz};
use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn noisy_zero_circuit(n: usize) -> NoisyCircuit {
    let ansatz = HardwareEfficientAnsatz::new(n);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    NoisyCircuit::from_circuit(&ansatz.circuit_at_zero(), &model).expect("Clifford at zero")
}

fn bench_exact_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ln_exact");
    for n in [10usize, 20, 40] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let eval = ExactEvaluator::new(&nc);
            b.iter(|| eval.energy(black_box(&h)));
        });
    }
    group.finish();
}

fn bench_sampled_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ln_sampled_256shots");
    group.sample_size(10);
    for n in [10usize, 20] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sampler = FrameSampler::new(&nc);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| sampler.energy(black_box(&h), 256, &mut rng));
        });
    }
    group.finish();
}

fn bench_dense_hamiltonian(c: &mut Criterion) {
    // Chemistry-scale term counts: the ten-qubit XXZ (27 terms) vs a
    // hundreds-of-terms surrogate workload via repeated evaluation.
    let mut group = c.benchmark_group("ln_exact_xxz10");
    let h = xxz(10, 1.0);
    let nc = noisy_zero_circuit(10);
    group.bench_function("xxz10", |b| {
        let eval = ExactEvaluator::new(&nc);
        b.iter(|| eval.energy(black_box(&h)));
    });
    group.finish();
}

/// Population-batch evaluation of the real Clapton objective: the speedup
/// the `LossEvaluator` redesign exists to deliver.
///
/// * `sequential` — genome-at-a-time `evaluate` calls: what a closure-based
///   GA pays, rebuilding the noisy circuit for every genome.
/// * `parallel` — the legacy `ParallelEvaluator`, spawning scoped threads
///   per batch.
/// * `parallel_pooled` — chunks dispatched onto the persistent shared
///   `WorkerPool`; each chunk runs the batch fast path (backend prepared
///   once per chunk), and on multicore machines chunks execute in parallel
///   with no per-batch spawn cost.
/// * `cached*` — a 50%-duplicate population (the mix-and-restart regime)
///   replayed through the genome → loss memo.
fn bench_population_batch(c: &mut Criterion) {
    let n = 10;
    let h = ising(n, 0.25);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let ansatz = TransformationAnsatz::new(n);
    let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
    let mut rng = StdRng::seed_from_u64(17);
    let population: Vec<Vec<u8>> = (0..96)
        .map(|_| {
            (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4u8))
                .collect()
        })
        .collect();
    // Mix-round regime: half the population are re-submitted known genomes.
    let mut mixed = population.clone();
    for i in 0..mixed.len() / 2 {
        mixed[2 * i + 1] = population[i].clone();
    }

    let mut group = c.benchmark_group("population_batch_96");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(&population)
                .iter()
                .map(|g| loss.evaluate(g))
                .collect::<Vec<f64>>()
        });
    });
    group.bench_function("parallel", |b| {
        let parallel = ParallelEvaluator::new(&loss);
        b.iter(|| parallel.evaluate_population(black_box(&population)));
    });
    group.bench_function("parallel_pooled", |b| {
        let pool = Arc::new(WorkerPool::new());
        let pooled = PooledEvaluator::new(&loss, pool);
        b.iter(|| pooled.evaluate_population(black_box(&population)));
    });
    group.bench_function("cached_mix_round", |b| {
        b.iter(|| {
            // Fresh cache per iteration: first submission pays, the mixed
            // half and the replay hit the memo.
            let cached = CachedEvaluator::new(&loss);
            let first = cached.evaluate_population(black_box(&mixed));
            let replay = cached.evaluate_population(black_box(&mixed));
            black_box((first, replay))
        });
    });
    group.bench_function("parallel_cached_mix_round", |b| {
        b.iter(|| {
            let cached = CachedEvaluator::new(ParallelEvaluator::new(&loss));
            let first = cached.evaluate_population(black_box(&mixed));
            let replay = cached.evaluate_population(black_box(&mixed));
            black_box((first, replay))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_exact_energy, bench_sampled_energy, bench_dense_hamiltonian,
        bench_population_batch
}
criterion_main!(benches);
