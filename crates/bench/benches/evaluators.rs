//! Ablation bench (DESIGN.md): exact Pauli back-propagation vs stim-style
//! frame sampling for the noisy loss `LN` — the design choice that makes
//! this reproduction's default loss deterministic.

use clapton_circuits::HardwareEfficientAnsatz;
use clapton_models::{ising, xxz};
use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn noisy_zero_circuit(n: usize) -> NoisyCircuit {
    let ansatz = HardwareEfficientAnsatz::new(n);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    NoisyCircuit::from_circuit(&ansatz.circuit_at_zero(), &model).expect("Clifford at zero")
}

fn bench_exact_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ln_exact");
    for n in [10usize, 20, 40] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let eval = ExactEvaluator::new(&nc);
            b.iter(|| eval.energy(black_box(&h)));
        });
    }
    group.finish();
}

fn bench_sampled_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ln_sampled_256shots");
    group.sample_size(10);
    for n in [10usize, 20] {
        let h = ising(n, 0.25);
        let nc = noisy_zero_circuit(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let sampler = FrameSampler::new(&nc);
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| sampler.energy(black_box(&h), 256, &mut rng));
        });
    }
    group.finish();
}

fn bench_dense_hamiltonian(c: &mut Criterion) {
    // Chemistry-scale term counts: the ten-qubit XXZ (27 terms) vs a
    // hundreds-of-terms surrogate workload via repeated evaluation.
    let mut group = c.benchmark_group("ln_exact_xxz10");
    let h = xxz(10, 1.0);
    let nc = noisy_zero_circuit(10);
    group.bench_function("xxz10", |b| {
        let eval = ExactEvaluator::new(&nc);
        b.iter(|| eval.energy(black_box(&h)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_exact_energy, bench_sampled_energy, bench_dense_hamiltonian
}
criterion_main!(benches);
