//! Sharded-suite benchmarks: wall-clock scaling of the lease-based work
//! queue with 1/2/4 workers over one small quick suite, and the latency of
//! taking over a dead worker's stale lease.
//!
//! The scaling rows time `run_shard_worker` fleets in-process (threads
//! with distinct worker identities, one compute worker each, so the job is
//! the unit of parallelism — the same shape as `suite-runner --workers N`
//! without fork overhead), ABBA-interleaved across worker counts so clock
//! drift cannot manufacture a speedup.

use clapton_bench::{
    merge_shards, run_shard_worker, write_queue, Options, ShardWorkerConfig, SuiteConfig,
};
use clapton_runtime::{acquire, ClaimOutcome, WorkerPool};
use clapton_service::JobSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-bench-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Four quick jobs at 4 qubits: enough work that workers genuinely
/// interleave, small enough that the ABBA matrix stays fast.
fn bench_specs() -> Vec<JobSpec> {
    let mut specs = SuiteConfig {
        options: Options { effort: 0, seed: 7 },
        qubits: 4,
        halt_after_rounds: None,
    }
    .specs();
    specs.truncate(4);
    specs
}

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One cold shard run: fresh queue directory, `workers` shard threads with
/// distinct identities and one compute worker each, drained and merged.
fn run_fleet(specs: &[JobSpec], workers: usize, tag: &str) -> u128 {
    let root = scratch(tag);
    write_queue(&root, specs).unwrap();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let root = root.clone();
            std::thread::spawn(move || {
                let config = ShardWorkerConfig {
                    worker_id: Some(format!("bench-{i}")),
                    lease_ttl: Duration::from_secs(30),
                    poll: Duration::from_millis(5),
                    ..ShardWorkerConfig::default()
                };
                run_shard_worker(&root, Arc::new(WorkerPool::with_workers(1)), None, &config)
                    .unwrap()
            })
        })
        .collect();
    for handle in handles {
        assert!(handle.join().unwrap().is_complete());
    }
    let merged = merge_shards(&root, specs).unwrap();
    let elapsed = t0.elapsed().as_nanos();
    assert!(merged.is_complete());
    std::fs::remove_dir_all(&root).unwrap();
    elapsed
}

/// `suite_workers_scaling`: the same 4-job quick suite drained by 1, 2,
/// and 4 workers. ABBA interleaving: each round visits the worker counts
/// in alternating order, so slow drift lands evenly on every config.
///
/// On a multi-core host the rows show wall-clock scaling; on a single-core
/// host (CI containers) they instead pin the *coordination overhead* of
/// the lease protocol — extra workers can't speed anything up, so any gap
/// between w1 and w4 is pure claim/heartbeat/sweep traffic, and growth in
/// that gap is a regression.
fn emit_suite_workers_scaling(_c: &mut Criterion) {
    const COUNTS: [usize; 3] = [1, 2, 4];
    const ROUNDS: usize = 4;
    let specs = bench_specs();
    // Warm-up: populate every lazily-built table off the clock.
    run_fleet(&specs, 2, "warmup");
    let mut samples: [Vec<u128>; COUNTS.len()] = [Vec::new(), Vec::new(), Vec::new()];
    for round in 0..ROUNDS {
        let order: Vec<usize> = if round % 2 == 0 {
            (0..COUNTS.len()).collect()
        } else {
            (0..COUNTS.len()).rev().collect()
        };
        for idx in order {
            let tag = format!("w{}-r{round}", COUNTS[idx]);
            samples[idx].push(run_fleet(&specs, COUNTS[idx], &tag));
        }
    }
    for (idx, workers) in COUNTS.iter().enumerate() {
        let best = *samples[idx].iter().min().unwrap();
        let median = median_ns(&mut samples[idx]);
        println!(
            "suite_workers_scaling/quick4_w{workers}: median {:.1} ms, best {:.1} ms",
            median as f64 / 1e6,
            best as f64 / 1e6
        );
        criterion::append_record(
            "suite_workers_scaling",
            &format!("quick4_w{workers}"),
            median,
            best,
            ROUNDS,
        );
    }
}

/// `lease_takeover`: how long a job stays stuck after its owner dies with
/// a 200 ms TTL — from the moment the claim is abandoned to a polling
/// claimant (20 ms sweep, the suite-runner default shape) holding the
/// lease. The floor is TTL + one poll interval.
fn emit_lease_takeover_latency(_c: &mut Criterion) {
    let ttl = Duration::from_millis(200);
    let poll = Duration::from_millis(20);
    let mut samples: Vec<u128> = (0..8)
        .map(|i| {
            let dir = scratch(&format!("takeover-{i}"));
            let ClaimOutcome::Acquired(_abandoned) = acquire(&dir, "dead", ttl).unwrap() else {
                panic!("plant the dead claim");
            };
            let t0 = Instant::now();
            let elapsed = loop {
                match acquire(&dir, "heir", ttl).unwrap() {
                    ClaimOutcome::Acquired(lease) => {
                        let elapsed = t0.elapsed().as_nanos();
                        lease.release().unwrap();
                        break elapsed;
                    }
                    ClaimOutcome::Held { .. } => std::thread::sleep(poll),
                }
            };
            std::fs::remove_dir_all(&dir).unwrap();
            elapsed
        })
        .collect();
    let best = *samples.iter().min().unwrap();
    let count = samples.len();
    let median = median_ns(&mut samples);
    println!(
        "lease_takeover/ttl200ms_poll20ms: median {:.1} ms, best {:.1} ms",
        median as f64 / 1e6,
        best as f64 / 1e6
    );
    criterion::append_record("lease_takeover", "ttl200ms_poll20ms", median, best, count);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = emit_suite_workers_scaling, emit_lease_takeover_latency
}
criterion_main!(benches);
