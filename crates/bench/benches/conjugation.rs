//! Microbenchmarks of the Clifford machinery underlying Figure 9's scaling:
//! tableau construction, Hamiltonian transformation and stabilizer
//! evolution, as a function of qubit count.

use clapton_circuits::TransformationAnsatz;
use clapton_core::transform_hamiltonian;
use clapton_models::ising;
use clapton_stabilizer::{CliffordMap, StabilizerState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn genome_for(ansatz: &TransformationAnsatz, seed: u64) -> Vec<u8> {
    (0..ansatz.num_genes())
        .map(|i| ((seed.wrapping_mul(0x9E3779B97F4A7C15) >> (i % 60)) & 3) as u8)
        .collect()
}

fn bench_tableau_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_build");
    for n in [10usize, 20, 40] {
        let ansatz = TransformationAnsatz::new(n);
        let gates = ansatz.gates(&genome_for(&ansatz, 7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| CliffordMap::anticonjugation(n, black_box(&gates)));
        });
    }
    group.finish();
}

fn bench_hamiltonian_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamiltonian_transform");
    for n in [10usize, 20, 40] {
        let h = ising(n, 0.25);
        let ansatz = TransformationAnsatz::new(n);
        let gates = ansatz.gates(&genome_for(&ansatz, 13));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transform_hamiltonian(black_box(&h), black_box(&gates)));
        });
    }
    group.finish();
}

fn bench_stabilizer_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer_evolution");
    for n in [10usize, 20, 40] {
        let ansatz = TransformationAnsatz::new(n);
        let gates = ansatz.gates(&genome_for(&ansatz, 23));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut st = StabilizerState::new(n);
                st.apply_all(black_box(&gates));
                st
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tableau_build, bench_hamiltonian_transform, bench_stabilizer_evolution
}
criterion_main!(benches);
