//! The spec-driven suite path: `SuiteConfig::specs()` round-trips through
//! JSON, runs end-to-end via `run_spec_suite`, and interrupted runs resume
//! to byte-identical `report.json` artifacts.

use clapton_bench::{run_spec_suite, Options, SuiteConfig};
use clapton_error::ClaptonError;
use clapton_runtime::WorkerPool;
use clapton_service::JobSpec;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-spec-suite-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_config() -> SuiteConfig {
    SuiteConfig {
        options: Options { effort: 0, seed: 7 },
        qubits: 4,
        halt_after_rounds: None,
    }
}

/// A small slice of the suite keeps the test fast while still exercising
/// concurrent jobs.
fn test_specs() -> Vec<JobSpec> {
    let mut specs = quick_config().specs();
    specs.truncate(3);
    // Spec-file round trip: what the CLI writes with --emit-specs is what
    // --specs reads back.
    let json = serde_json::to_string_pretty(&specs).unwrap();
    let reparsed: Vec<JobSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(reparsed, specs);
    specs
}

fn report_files(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(root).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            let report = entry.path().join("report.json");
            assert!(report.is_file(), "missing {}", report.display());
            out.push((
                entry.file_name().to_string_lossy().into_owned(),
                fs::read_to_string(report).unwrap(),
            ));
        }
    }
    out.sort();
    out
}

#[test]
fn spec_suite_resumes_byte_identically_after_interruption() {
    let pool = Arc::new(WorkerPool::with_workers(2));

    // Reference: the spec suite run uninterrupted.
    let reference_root = scratch("reference");
    let outcomes =
        run_spec_suite(&reference_root, test_specs(), Arc::clone(&pool), None, None).unwrap();
    assert_eq!(outcomes.len(), 3);
    for (name, result) in &outcomes {
        let report = result.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&report.name, name);
        assert!(report.clapton.is_some(), "{name}: suite jobs run Clapton");
    }

    // Interrupted: a 2-round budget per invocation, re-run until complete
    // (the deterministic stand-in for `kill -9` + retry).
    let resumed_root = scratch("resumed");
    let mut rounds_of_resume = 0usize;
    loop {
        rounds_of_resume += 1;
        assert!(rounds_of_resume <= 64, "suite did not converge");
        let outcomes = run_spec_suite(
            &resumed_root,
            test_specs(),
            Arc::clone(&pool),
            None,
            Some(2),
        )
        .unwrap();
        let all_done = outcomes.iter().all(|(_, r)| r.is_ok());
        let any_hard_failure = outcomes
            .iter()
            .any(|(_, r)| matches!(r, Err(e) if !matches!(e, ClaptonError::Suspended { .. })));
        assert!(!any_hard_failure, "only suspension is acceptable");
        if all_done {
            break;
        }
    }
    assert!(rounds_of_resume > 1, "the 2-round budget must interrupt");

    // The final artifacts are byte-identical.
    let reference = report_files(&reference_root);
    let resumed = report_files(&resumed_root);
    assert_eq!(reference.len(), resumed.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in reference.iter().zip(&resumed) {
        assert_eq!(name_a, name_b);
        assert_eq!(bytes_a, bytes_b, "{name_a}: reports differ");
    }

    fs::remove_dir_all(&reference_root).unwrap();
    fs::remove_dir_all(&resumed_root).unwrap();
}

#[test]
fn full_suite_specs_cover_the_benchmark_suite_and_validate() {
    let config = SuiteConfig {
        options: Options { effort: 0, seed: 0 },
        qubits: 10,
        halt_after_rounds: None,
    };
    let specs = config.specs();
    assert_eq!(specs.len(), 12, "the paper's full 12-instance suite");
    let mut seeds = Vec::new();
    for spec in &specs {
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.display_name()));
        seeds.push(spec.seed);
    }
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 12, "per-job seeds are decorrelated");
}
