//! Chaos determinism: a sharded suite driven to completion *under* seeded
//! fault schedules (torn writes, failed renames, lost claims, dropped
//! heartbeats) must merge to a `suite_manifest.json` byte-identical to the
//! fault-free reference — the paper's reproducibility contract, searched
//! seed by seed instead of sampled by hand-placed kills.

use clapton_bench::{
    merge_shards, run_chaos_suite, run_shard_worker, write_queue, Options, ShardWorkerConfig,
    SuiteConfig, MERGED_MANIFEST_ARTIFACT,
};
use clapton_runtime::{failpoint, WorkerPool};
use clapton_service::JobSpec;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_specs() -> Vec<JobSpec> {
    let mut specs = SuiteConfig {
        options: Options { effort: 0, seed: 7 },
        qubits: 4,
        halt_after_rounds: None,
    }
    .specs();
    specs.truncate(3);
    specs
}

#[test]
fn chaos_runs_merge_byte_identically_to_the_fault_free_reference() {
    let specs = test_specs();
    // The failpoint table is process-global; serialize against any other
    // test that arms it.
    let _gate = failpoint::tests_exclusive();

    let reference = scratch("ref");
    write_queue(&reference, &specs).unwrap();
    let outcome = run_shard_worker(
        &reference,
        Arc::new(WorkerPool::with_workers(2)),
        None,
        &ShardWorkerConfig {
            worker_id: Some("reference".to_string()),
            poll: Duration::from_millis(10),
            ..ShardWorkerConfig::default()
        },
    )
    .unwrap();
    assert!(outcome.is_complete());
    merge_shards(&reference, &specs).unwrap();
    let reference_bytes = fs::read(reference.join(MERGED_MANIFEST_ARTIFACT)).unwrap();

    for seed in [11u64, 42] {
        let root = scratch(&format!("seed{seed}"));
        let outcome = run_chaos_suite(&root, &specs, seed, 2)
            .unwrap_or_else(|e| panic!("chaos seed {seed}: {e}"));
        assert!(outcome.manifest.is_complete(), "seed {seed} drained");
        assert_eq!(
            fs::read(root.join(MERGED_MANIFEST_ARTIFACT)).unwrap(),
            reference_bytes,
            "seed {seed}: merged manifest diverged from the fault-free run \
             ({} sweeps)",
            outcome.sweeps
        );
        fs::remove_dir_all(&root).unwrap();
    }
    fs::remove_dir_all(&reference).unwrap();
}
