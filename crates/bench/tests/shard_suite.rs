//! Sharded-suite determinism: several in-process workers over one queue
//! directory must merge to the same `suite_manifest.json` bytes as a
//! single worker, and a stale lease left by a dead worker must be taken
//! over and resumed to the same bytes.

use clapton_bench::{
    merge_shards, run_shard_worker, shard_status, write_queue, ShardWorkerConfig,
    MERGED_MANIFEST_ARTIFACT,
};
use clapton_bench::{Options, SuiteConfig};
use clapton_runtime::{acquire, ClaimOutcome, WorkerPool};
use clapton_service::JobSpec;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-shard-suite-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small slice of the quick suite: enough jobs that two workers genuinely
/// interleave, small enough to keep the test fast.
fn test_specs() -> Vec<JobSpec> {
    let mut specs = SuiteConfig {
        options: Options { effort: 0, seed: 7 },
        qubits: 4,
        halt_after_rounds: None,
    }
    .specs();
    specs.truncate(4);
    specs
}

fn worker_config(id: &str, ttl: Duration) -> ShardWorkerConfig {
    ShardWorkerConfig {
        worker_id: Some(id.to_string()),
        lease_ttl: ttl,
        poll: Duration::from_millis(20),
        ..ShardWorkerConfig::default()
    }
}

fn manifest_bytes(root: &Path) -> Vec<u8> {
    fs::read(root.join(MERGED_MANIFEST_ARTIFACT)).expect("merged manifest written")
}

#[test]
fn two_workers_merge_byte_identically_to_one() {
    let specs = test_specs();
    let ttl = Duration::from_secs(30);

    let reference = scratch("merge-ref");
    write_queue(&reference, &specs).unwrap();
    let pool = Arc::new(WorkerPool::with_workers(2));
    let outcome = run_shard_worker(
        &reference,
        Arc::clone(&pool),
        None,
        &worker_config("solo", ttl),
    )
    .unwrap();
    assert!(outcome.is_complete(), "single worker drains the queue");
    merge_shards(&reference, &specs).unwrap();

    let sharded = scratch("merge-2w");
    write_queue(&sharded, &specs).unwrap();
    let handles: Vec<_> = ["left", "right"]
        .into_iter()
        .map(|id| {
            let root = sharded.clone();
            let pool = Arc::new(WorkerPool::with_workers(2));
            std::thread::spawn(move || {
                run_shard_worker(&root, pool, None, &worker_config(id, ttl)).unwrap()
            })
        })
        .collect();
    for handle in handles {
        let outcome = handle.join().unwrap();
        // Each worker exits only once every job is terminal, whoever ran it.
        assert!(outcome.is_complete(), "queue drained when a worker exits");
    }
    let merged = merge_shards(&sharded, &specs).unwrap();
    assert!(merged.is_complete());

    assert_eq!(
        manifest_bytes(&reference),
        manifest_bytes(&sharded),
        "two-worker merge must be byte-identical to the single-worker run"
    );

    // After a clean drain no claims linger, and --status agrees.
    for row in shard_status(&sharded, &specs, ttl).unwrap() {
        assert_eq!(row.state, "done");
        assert_eq!(row.owner, None, "claims released after completion");
        assert!(row.rounds.is_some(), "rounds surfaced from the report");
    }

    fs::remove_dir_all(&reference).unwrap();
    fs::remove_dir_all(&sharded).unwrap();
}

#[test]
fn stale_takeover_resumes_byte_identically() {
    let specs = test_specs();
    let long_ttl = Duration::from_secs(30);
    let short_ttl = Duration::from_millis(80);

    let reference = scratch("steal-ref");
    write_queue(&reference, &specs).unwrap();
    let pool = Arc::new(WorkerPool::with_workers(2));
    run_shard_worker(
        &reference,
        Arc::clone(&pool),
        None,
        &worker_config("solo", long_ttl),
    )
    .unwrap();
    merge_shards(&reference, &specs).unwrap();

    // Interrupted run: one budget-limited sweep banks a checkpoint per job,
    // then a "dead" worker's unheartbeated claim is planted on the first
    // job's directory and left to go stale.
    let stolen = scratch("steal-resume");
    write_queue(&stolen, &specs).unwrap();
    let mut halted = worker_config("first-life", long_ttl);
    halted.halt_after_rounds = Some(1);
    let outcome = run_shard_worker(&stolen, Arc::clone(&pool), None, &halted).unwrap();
    assert!(!outcome.is_complete(), "budget halt leaves work behind");
    assert!(
        outcome.jobs.iter().any(|j| j.state == "suspended"),
        "checkpoints banked for the next life"
    );
    let first_job_dir = stolen.join(&outcome.jobs[0].job);
    let ClaimOutcome::Acquired(_abandoned) =
        acquire(&first_job_dir, "dead-worker", short_ttl).unwrap()
    else {
        panic!("plant the dead worker's claim");
    };
    std::thread::sleep(short_ttl * 3);
    let status = shard_status(&stolen, &specs, short_ttl).unwrap();
    assert_eq!(status[0].owner.as_deref(), Some("dead-worker"));
    assert!(status[0].stale, "unheartbeated claim ages past the TTL");

    // Second life with a short TTL: steals the stale claim, resumes every
    // job from its checkpoint, and the merge converges to the same bytes.
    let second = run_shard_worker(
        &stolen,
        Arc::clone(&pool),
        None,
        &worker_config("second-life", short_ttl),
    )
    .unwrap();
    assert!(second.is_complete(), "takeover finishes the queue");
    merge_shards(&stolen, &specs).unwrap();
    assert_eq!(
        manifest_bytes(&reference),
        manifest_bytes(&stolen),
        "a stolen, checkpoint-resumed run must merge to the reference bytes"
    );

    fs::remove_dir_all(&reference).unwrap();
    fs::remove_dir_all(&stolen).unwrap();
}
