//! Integration tests of the suite orchestrator: interrupted runs resume
//! bit-identically, seeds reproduce exactly, and mismatched configurations
//! are refused.
//!
//! Uses the 6-instance `N = 4` physics suite at quick effort so each full
//! suite run stays in test-friendly wall-clock territory; the 12-instance
//! `N = 10` suite exercises the identical code path (see the CI smoke job).

use clapton_bench::{run_suite, Options, SuiteConfig};
use clapton_runtime::{artifact_slug, RunRegistry, WorkerPool};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-suite-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_config(seed: u64) -> SuiteConfig {
    SuiteConfig {
        options: Options { effort: 0, seed },
        qubits: 4,
        halt_after_rounds: None,
    }
}

/// Reads every result artifact of a run as raw bytes, keyed by job name.
fn result_bytes(registry: &RunRegistry, run: &str, config: &SuiteConfig) -> Vec<(String, Vec<u8>)> {
    let dir = registry.run(run).unwrap();
    config
        .manifest()
        .jobs
        .iter()
        .map(|job| {
            let path = dir
                .path()
                .join(format!("{}.result.json", artifact_slug(job)));
            (job.clone(), fs::read(path).expect("result artifact"))
        })
        .collect()
}

#[test]
fn interrupted_suite_resumes_bit_identically_and_seeds_reproduce() {
    let registry = RunRegistry::open(scratch("resume")).unwrap();
    let config = quick_config(11);
    let pool = Arc::new(WorkerPool::with_workers(2));

    // Reference: one uninterrupted run.
    let reference = registry.run("reference").unwrap();
    let outcome = run_suite(&reference, &config, Arc::clone(&pool), None).unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.jobs.len(), 6, "N=4 physics suite");
    let reference_bytes = result_bytes(&registry, "reference", &config);

    // Interrupted: a 3-round budget per invocation, resumed until done.
    let interrupted = registry.run("interrupted").unwrap();
    let budgeted = SuiteConfig {
        halt_after_rounds: Some(3),
        ..config
    };
    let mut invocations = 0;
    loop {
        invocations += 1;
        assert!(invocations < 100, "suite never converged under interrupts");
        let outcome = run_suite(&interrupted, &budgeted, Arc::clone(&pool), None).unwrap();
        if outcome.is_complete() {
            break;
        }
        // Suspended jobs must have left resumable checkpoints or untouched
        // starts, never partial results.
        for job in outcome.jobs.iter().filter(|j| !j.completed) {
            let slug = artifact_slug(&job.name);
            assert!(!interrupted.exists(&format!("{slug}.result.json")));
        }
    }
    assert!(
        invocations > 2,
        "the budget must actually interrupt the suite"
    );
    assert_eq!(
        result_bytes(&registry, "interrupted", &config),
        reference_bytes,
        "interrupted + resumed artifacts must be byte-identical"
    );

    // Seed hygiene: the same seed reproduces byte-identical artifacts...
    let replay = registry.run("replay").unwrap();
    run_suite(&replay, &config, Arc::clone(&pool), None).unwrap();
    assert_eq!(result_bytes(&registry, "replay", &config), reference_bytes);

    // ...and a different seed produces different search results.
    let other = quick_config(12);
    let other_dir = registry.run("other-seed").unwrap();
    run_suite(&other_dir, &other, Arc::clone(&pool), None).unwrap();
    let other_bytes = result_bytes(&registry, "other-seed", &other);
    assert_ne!(other_bytes, reference_bytes, "seed must steer the search");

    // Re-running a complete suite is a cheap no-op that changes nothing.
    let outcome = run_suite(&reference, &config, pool, None).unwrap();
    assert!(outcome.is_complete());
    assert!(outcome.jobs.iter().all(|j| j.skipped));
    assert_eq!(
        result_bytes(&registry, "reference", &config),
        reference_bytes
    );

    fs::remove_dir_all(registry.path()).unwrap();
}

#[test]
fn resuming_with_mismatched_configuration_is_refused() {
    let registry = RunRegistry::open(scratch("mismatch")).unwrap();
    let pool = Arc::new(WorkerPool::with_workers(0));
    let dir = registry.run("run").unwrap();
    let config = SuiteConfig {
        halt_after_rounds: Some(1),
        ..quick_config(3)
    };
    run_suite(&dir, &config, Arc::clone(&pool), None).unwrap();

    // Different seed → refuse.
    let reseeded = SuiteConfig {
        options: Options { effort: 0, seed: 4 },
        ..config
    };
    let err = run_suite(&dir, &reseeded, Arc::clone(&pool), None).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // Different suite shape → refuse.
    let resized = SuiteConfig {
        qubits: 5,
        ..config
    };
    let err = run_suite(&dir, &resized, pool, None).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    fs::remove_dir_all(registry.path()).unwrap();
}
