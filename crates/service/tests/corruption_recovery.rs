//! Crash-consistency under artifact corruption: a torn or garbled
//! `checkpoint.json`, `report.json`, or `spec.json` must be quarantined
//! (never parsed, never trusted) and the job must recover — losing at most
//! one GA round via the rotated `checkpoint.prev.json`, never the job —
//! with final artifacts byte-identical to an undisturbed run.

use clapton_runtime::WorkerPool;
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, NoiseSpec, ProblemSpec, Report, SuiteProblem, UniformNoise,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-corrupt-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

fn service(root: &Path) -> ClaptonService {
    ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(2)))
        .with_artifacts(root)
        .unwrap()
}

/// Overwrites the middle of a file with garbage, keeping its length — the
/// envelope checksum must catch it (the length check alone would not).
fn garble(path: &Path) {
    let mut bytes = fs::read(path).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 16).min(bytes.len());
    for byte in &mut bytes[mid..end] {
        *byte ^= 0x5a;
    }
    fs::write(path, bytes).unwrap();
}

/// The quarantine files (`<name>.corrupt-<unix-ms>`) present for `name`.
fn quarantined(dir: &Path, name: &str) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&format!("{name}.corrupt-")))
        })
        .collect()
}

fn corrupt_counter(artifact: &str) -> u64 {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_artifacts_corrupt_total",
            "Artifacts that failed integrity verification and were quarantined.",
            &[("artifact", artifact)],
        )
        .get()
}

#[test]
fn garbled_report_is_quarantined_and_recomputed_byte_identically() {
    let reference_root = scratch("report-ref");
    let reference = service(&reference_root).run(quick_spec(23)).unwrap();
    let reference_bytes = fs::read(
        reference_root
            .join("ising-J-0.50-seed23")
            .join("report.json"),
    )
    .unwrap();

    let root = scratch("report-garbled");
    let svc = service(&root);
    let first = svc.run(quick_spec(23)).unwrap();
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
    let dir = root.join("ising-J-0.50-seed23");
    // Completion rotated the checkpoint instead of deleting it — the fuel
    // for recomputing a lost report.
    assert!(dir.join("checkpoint.prev.json").is_file());

    let before = corrupt_counter("report.json");
    garble(&dir.join("report.json"));
    let again = svc.run(quick_spec(23)).unwrap();
    assert_eq!(
        serde_json::to_string(&again).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "recovered report matches the undisturbed run"
    );
    assert_eq!(quarantined(&dir, "report.json").len(), 1);
    assert_eq!(
        fs::read(dir.join("report.json")).unwrap(),
        reference_bytes,
        "rewritten artifact is byte-identical to the reference"
    );
    assert_eq!(corrupt_counter("report.json"), before + 1);

    let _ = fs::remove_dir_all(&reference_root);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn garbled_checkpoint_falls_back_to_the_previous_round() {
    let reference_root = scratch("ckpt-ref");
    let reference = service(&reference_root).run(quick_spec(29)).unwrap();

    let root = scratch("ckpt-garbled");
    let svc = service(&root);
    let mut budgeted = quick_spec(29);
    budgeted.budget = Some(1);
    // Two one-round suspensions bank checkpoint.json (round N) and, rotated
    // beneath it, checkpoint.prev.json (round N-1).
    for _ in 0..2 {
        match svc.submit(budgeted.clone()).unwrap().wait() {
            Err(clapton_error::ClaptonError::Suspended { .. }) => {}
            other => panic!("expected a one-round suspension, got {other:?}"),
        }
    }
    let dir = root.join("ising-J-0.50-seed29");
    assert!(dir.join("checkpoint.prev.json").is_file(), "rotation ran");

    garble(&dir.join("checkpoint.json"));
    let report = svc.run(quick_spec(29)).unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "one lost round is replayed, not the whole job"
    );
    assert_eq!(quarantined(&dir, "checkpoint.json").len(), 1);

    let _ = fs::remove_dir_all(&reference_root);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn truncated_spec_is_quarantined_and_rewritten() {
    let root = scratch("spec-truncated");
    let svc = service(&root);
    let spec = quick_spec(31);
    let first: Report = svc.run(spec.clone()).unwrap();
    let dir = root.join("ising-J-0.50-seed31");

    // Truncation (a torn write that survived a crash) rather than garbling:
    // the envelope's length check catches it before the checksum runs.
    let bytes = fs::read(dir.join("spec.json")).unwrap();
    fs::write(dir.join("spec.json"), &bytes[..bytes.len() / 2]).unwrap();

    let again = svc.run(spec).unwrap();
    assert_eq!(
        serde_json::to_string(&again).unwrap(),
        serde_json::to_string(&first).unwrap()
    );
    assert_eq!(quarantined(&dir, "spec.json").len(), 1);
    let rewritten: JobSpec = clapton_runtime::RunDirectory::create(&dir)
        .unwrap()
        .read_json("spec.json")
        .unwrap()
        .unwrap();
    assert_eq!(
        rewritten,
        quick_spec(31),
        "spec re-persisted after quarantine"
    );

    let _ = fs::remove_dir_all(&root);
}
