//! End-to-end service behavior: background submission with streamed events,
//! per-job artifact directories (spec + checkpoints + report), budget
//! suspension, and bit-identical resume.

use clapton_error::ClaptonError;
use clapton_runtime::{EventKind, WorkerPool};
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, Report, SuiteProblem,
    UniformNoise,
};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-service-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

#[test]
fn submit_streams_events_and_returns_the_report() {
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(2)));
    let handle = service.submit(quick_spec(7)).unwrap();
    assert_eq!(handle.name(), "ising(J=0.50)");
    let report = handle.wait().unwrap();
    assert_eq!(report.name, "ising(J=0.50)");
    assert!(report.cafqa.is_some() && report.clapton.is_some());
    assert!(report.ncafqa.is_none(), "not requested");
    // Clapton's initial point beats CAFQA's under noise on this model.
    let clapton = report.clapton_initial_energy.unwrap();
    let cafqa = report.cafqa_initial_energy.unwrap();
    assert!(
        clapton <= cafqa + 1e-9,
        "clapton {clapton} vs cafqa {cafqa}"
    );
    assert!(report.eta_initial.unwrap() >= 0.9);
    assert_eq!(report.best_energy(), Some(clapton.min(cafqa)));
}

#[test]
fn submit_rejects_invalid_specs_synchronously() {
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(1)));
    let mut spec = quick_spec(1);
    spec.methods = vec![];
    match service.submit(spec) {
        Err(ClaptonError::Spec(_)) => {}
        other => panic!("expected spec rejection, got {other:?}"),
    }
}

#[test]
fn budget_without_artifacts_is_rejected_not_looped() {
    // Without an artifact root there is nowhere to persist the checkpoint a
    // suspension leaves behind — resubmissions would restart from round 0
    // forever, so the combination is refused up front.
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(1)));
    let mut spec = quick_spec(1);
    spec.budget = Some(1);
    for result in [
        service.submit(spec.clone()).map(|_| ()),
        service.run(spec).map(|_| ()),
    ] {
        match result {
            Err(ClaptonError::Spec(e)) => {
                assert!(e.to_string().contains("artifact root"), "{e}")
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
    }
}

#[test]
fn run_all_rejects_batch_duplicates_that_share_an_artifact_directory() {
    let root = scratch("dup-batch");
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(1)))
        .with_artifacts(&root)
        .unwrap();
    let spec = quick_spec(4);
    match service.run_all(vec![spec.clone(), spec], None) {
        Err(ClaptonError::Spec(e)) => {
            assert!(e.to_string().contains("same artifact directory"), "{e}")
        }
        other => panic!("expected duplicate rejection, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn artifacts_persist_spec_and_report_and_answer_resubmissions() {
    let root = scratch("artifacts");
    let pool = Arc::new(WorkerPool::with_workers(2));
    let service = ClaptonService::with_pool(Arc::clone(&pool))
        .with_artifacts(&root)
        .unwrap();
    let spec = quick_spec(11);
    let report = service.run(spec.clone()).unwrap();
    let dir = root.join("ising-J-0.50-seed11");
    assert!(dir.join("spec.json").is_file(), "spec persisted");
    assert!(dir.join("manifest.json").is_file(), "manifest persisted");
    assert!(dir.join("report.json").is_file(), "report persisted");
    assert!(
        !dir.join("checkpoint.json").exists(),
        "checkpoint cleaned up"
    );
    // The persisted spec is the submitted spec (read back through the
    // integrity envelope every artifact is wrapped in).
    let persisted: JobSpec = clapton_runtime::RunDirectory::create(&dir)
        .unwrap()
        .read_json("spec.json")
        .unwrap()
        .unwrap();
    assert_eq!(persisted, spec);
    // Resubmitting the same spec answers from the persisted report.
    let cached = service.run(spec.clone()).unwrap();
    assert_eq!(cached, report);
    // A different spec under the same name+seed is refused, not mixed in.
    let mut conflicting = spec;
    conflicting.noise = NoiseSpec::Noiseless;
    match service.run(conflicting) {
        Err(ClaptonError::Conflict { run }) => {
            assert!(run.contains("ising-J-0.50-seed11"), "{run}")
        }
        other => panic!("expected artifact conflict, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// A spec whose Clapton search cannot converge early (`max_retry_rounds`
/// higher than `max_rounds`), so it reliably spans many round boundaries —
/// the window cooperative cancellation needs.
fn long_spec(seed: u64) -> JobSpec {
    let mut spec = quick_spec(seed);
    spec.engine = EngineSpec::Custom(clapton_ga::MultiGaConfig {
        instances: 2,
        top_k: 4,
        max_retry_rounds: 200,
        max_rounds: 120,
        pool_fraction: 0.5,
        parallel: false,
        ga: clapton_ga::GaConfig {
            population_size: 24,
            generations: 12,
            ..clapton_ga::GaConfig::default()
        },
    });
    spec.methods = vec![MethodSpec::Clapton];
    spec
}

#[test]
fn cancel_stops_at_a_round_boundary_and_is_sticky() {
    let root = scratch("cancel");
    let pool = Arc::new(WorkerPool::with_workers(2));
    let service = ClaptonService::with_pool(Arc::clone(&pool))
        .with_artifacts(&root)
        .unwrap();
    let spec = long_spec(13);
    let handle = service.submit(spec.clone()).unwrap();
    // Wait for the first persisted checkpoint, then request cancellation.
    for event in handle.events() {
        if matches!(event.kind, EventKind::Checkpointed(_)) {
            break;
        }
    }
    handle.cancel();
    let rounds = match handle.wait() {
        Err(ClaptonError::Cancelled { rounds }) => rounds,
        other => panic!("expected cancellation, got {other:?}"),
    };
    assert!(rounds >= 1, "cancelled after a completed round");
    assert!(
        rounds < 120,
        "cancellation must interrupt the search, not wait for max_rounds"
    );
    let dir = root.join("ising-J-0.50-seed13");
    assert!(dir.join("state.json").is_file(), "terminal state persisted");
    assert!(
        dir.join("checkpoint.json").is_file(),
        "last round checkpoint retained"
    );
    // Sticky: resubmitting the cancelled spec reports the cancellation
    // instead of restarting the search.
    match service.run(spec) {
        Err(ClaptonError::Cancelled { rounds: again }) => assert_eq!(again, rounds),
        other => panic!("expected sticky cancellation, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn budget_suspends_and_resubmission_resumes_bit_identically() {
    // Reference: the same job run to convergence with no artifacts.
    let pool = Arc::new(WorkerPool::with_workers(2));
    let reference = ClaptonService::with_pool(Arc::clone(&pool))
        .run(quick_spec(9))
        .unwrap();

    let root = scratch("budget");
    let service = ClaptonService::with_pool(pool)
        .with_artifacts(&root)
        .unwrap();
    let mut spec = quick_spec(9);
    spec.budget = Some(1);
    let mut resumed: Option<Report> = None;
    let mut suspensions = 0usize;
    for _ in 0..64 {
        match service.submit(spec.clone()).unwrap().wait() {
            Ok(report) => {
                resumed = Some(report);
                break;
            }
            Err(ClaptonError::Suspended { rounds }) => {
                suspensions += 1;
                assert!(rounds >= suspensions, "rounds advance monotonically");
                assert!(
                    root.join("ising-J-0.50-seed9")
                        .join("checkpoint.json")
                        .is_file(),
                    "suspension leaves a checkpoint"
                );
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    let resumed = resumed.expect("budgeted run converges within 64 submissions");
    assert!(
        suspensions > 0,
        "budget of 1 round must suspend at least once"
    );
    assert_eq!(
        resumed, reference,
        "one-round-at-a-time resume must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn run_all_interleaves_jobs_and_streams_events() {
    let service = ClaptonService::with_pool(Arc::new(WorkerPool::with_workers(2)));
    let specs: Vec<JobSpec> = [3u64, 5].iter().map(|&s| quick_spec(s)).collect();
    let (tx, rx) = std::sync::mpsc::channel();
    let results = service.run_all(specs, Some(tx)).unwrap();
    assert_eq!(results.len(), 2);
    let reports: Vec<Report> = results.into_iter().map(|r| r.unwrap()).collect();
    // Different seeds, same problem: both finish, independently seeded.
    assert_eq!(reports[0].name, reports[1].name);
    let events: Vec<_> = rx.try_iter().collect();
    let started = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Started))
        .count();
    let finished = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Finished(_)))
        .count();
    assert_eq!(started, 2);
    assert_eq!(finished, 2);
    // Ncafqa rides the same front door.
    let mut spec = quick_spec(2);
    spec.methods = vec![MethodSpec::Ncafqa];
    let report = service.run(spec).unwrap();
    assert!(report.ncafqa.is_some());
    assert!(report.clapton.is_none());
    assert!(report.ncafqa_initial_energy.is_some());
    assert!(report.eta_initial.is_none(), "no Clapton to compare");
}
