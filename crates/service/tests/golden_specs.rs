//! Golden spec fixtures: committed JSON documents that must keep parsing,
//! validating, and round-tripping — the wire-format compatibility contract
//! of the `JobSpec` front door.

use clapton_core::EvaluatorKind;
use clapton_service::{
    BackendSpec, EngineSpec, JobSpec, MethodSpec, NamedBackend, NoiseSpec, ProblemSpec,
    SuiteProblem, TermsProblem, UniformNoise, VqeRefineSpec, SPEC_VERSION,
};

const MINIMAL: &str = include_str!("fixtures/minimal.json");
const FULL: &str = include_str!("fixtures/full.json");
const NAMED_BACKEND: &str = include_str!("fixtures/named_backend.json");
const FORWARD_COMPAT: &str = include_str!("fixtures/forward_compat.json");

fn fixtures() -> Vec<(&'static str, &'static str)> {
    vec![
        ("minimal", MINIMAL),
        ("full", FULL),
        ("named_backend", NAMED_BACKEND),
        ("forward_compat", FORWARD_COMPAT),
    ]
}

#[test]
fn minimal_fixture_parses_to_pure_defaults() {
    let spec: JobSpec = serde_json::from_str(MINIMAL).unwrap();
    let expected = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.25)".to_string(),
        qubits: 4,
    }));
    assert_eq!(spec, expected);
    assert_eq!(spec.version, SPEC_VERSION);
    assert_eq!(spec.display_name(), "ising(J=0.25)");
    assert_eq!(
        spec.methods,
        vec![MethodSpec::Cafqa, MethodSpec::Clapton],
        "default method pairing is the Pipeline pairing"
    );
}

#[test]
fn full_fixture_parses_every_field_explicitly() {
    let spec: JobSpec = serde_json::from_str(FULL).unwrap();
    let mut expected = JobSpec::new(ProblemSpec::Terms(TermsProblem {
        qubits: 2,
        terms: vec![(1.0, "ZI".to_string()), (0.5, "XX".to_string())],
    }));
    expected.name = "full-example".to_string();
    expected.backend = BackendSpec::Logical;
    expected.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 0.001,
        p2: 0.01,
        readout: 0.02,
        t1: Some(0.0001),
    });
    expected.methods = vec![
        MethodSpec::Cafqa,
        MethodSpec::Ncafqa,
        MethodSpec::Clapton,
        MethodSpec::VqeRefine(VqeRefineSpec { iterations: 25 }),
    ];
    expected.engine = EngineSpec::Quick;
    expected.evaluator = EvaluatorKind::Sampled {
        shots: 256,
        seed: 5,
    };
    expected.seed = 42;
    expected.budget = Some(6);
    assert_eq!(spec, expected);
    let resolved = spec.validate().unwrap();
    assert_eq!(resolved.hamiltonian.num_terms(), 2);
    assert_eq!(resolved.vqe_iterations(), Some(25));
}

#[test]
fn named_backend_fixture_resolves_the_device_registry() {
    let spec: JobSpec = serde_json::from_str(NAMED_BACKEND).unwrap();
    assert_eq!(
        spec.backend,
        BackendSpec::Named(NamedBackend {
            name: "nairobi".to_string()
        })
    );
    assert_eq!(spec.noise, NoiseSpec::Backend);
    let resolved = spec.validate().unwrap();
    assert_eq!(resolved.backend.as_ref().unwrap().name(), "nairobi");
    assert_eq!(resolved.hamiltonian.num_qubits(), 5);
    // The executable carries the backend-derived (restricted) noise model.
    assert!(resolved.exec.noise_model().has_pauli_noise());
}

#[test]
fn forward_compat_fixture_ignores_unknown_fields() {
    // A spec written by a newer (same-major) writer carries fields this
    // build has never heard of, at the top level and nested — they must be
    // ignored, not fatal.
    let spec: JobSpec = serde_json::from_str(FORWARD_COMPAT).unwrap();
    assert_eq!(spec.version, SPEC_VERSION);
    assert_eq!(spec.seed, 1);
    assert_eq!(
        spec.problem,
        ProblemSpec::Suite(SuiteProblem {
            name: "ising(J=1.00)".to_string(),
            qubits: 3,
        })
    );
    spec.validate().unwrap();
}

#[test]
fn every_fixture_validates_and_round_trips_bit_identically() {
    for (name, text) in fixtures() {
        let spec: JobSpec = serde_json::from_str(text)
            .unwrap_or_else(|e| panic!("fixture {name} does not parse: {e}"));
        spec.validate()
            .unwrap_or_else(|e| panic!("fixture {name} does not validate: {e}"));
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let reparsed: JobSpec = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("fixture {name} does not re-parse: {e}"));
        assert_eq!(reparsed, spec, "fixture {name} round-trip changed the spec");
        // Serialization is canonical: a second pass is byte-identical.
        assert_eq!(serde_json::to_string_pretty(&reparsed).unwrap(), json);
    }
}

#[test]
fn version_newer_than_supported_is_rejected() {
    let json = r#"{
        "version": 99,
        "problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}}
    }"#;
    let spec: JobSpec = serde_json::from_str(json).unwrap();
    let err = spec.validate().unwrap_err();
    assert!(
        err.to_string().contains("version 99"),
        "unexpected error: {err}"
    );
}
