//! The `validate()` rejection table: every malformed spec is refused with a
//! typed, self-explanatory `SpecError` — no panics, no stringly errors.

use clapton_service::{JobSpec, SpecError};

/// Parses a spec JSON (which must parse) and returns its validation error
/// (which must exist).
fn reject(json: &str) -> SpecError {
    let spec: JobSpec = serde_json::from_str(json).unwrap_or_else(|e| {
        panic!("spec should parse (rejection happens in validate): {e}\n{json}")
    });
    spec.validate().expect_err("spec should fail validation")
}

#[test]
fn rejection_table() {
    // (case, spec JSON, check on the typed error)
    type Check = Box<dyn Fn(&SpecError) -> bool>;
    let table: Vec<(&str, &str, Check)> = vec![
        (
            "bad problem name",
            r#"{"problem": {"Suite": {"name": "isig(J=0.25)", "qubits": 4}}}"#,
            Box::new(|e| {
                matches!(e, SpecError::UnknownProblem { name, available }
                    if name == "isig(J=0.25)" && !available.is_empty())
            }),
        ),
        (
            "chemistry benchmark at the wrong register size",
            r#"{"problem": {"Suite": {"name": "H2O(l=1.0)", "qubits": 7}}}"#,
            Box::new(|e| matches!(e, SpecError::UnknownProblem { .. })),
        ),
        (
            "zero-qubit register",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 0}}}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidField { field, .. } if field == "problem.qubits"),
            ),
        ),
        (
            "empty term list",
            r#"{"problem": {"Terms": {"qubits": 2, "terms": []}}}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidField { field, .. } if field == "problem.terms"),
            ),
        ),
        (
            "malformed Pauli word",
            r#"{"problem": {"Terms": {"qubits": 2, "terms": [[1.0, "ZQ"]]}}}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidField { field, .. } if field == "problem.terms"),
            ),
        ),
        (
            "term register mismatch",
            r#"{"problem": {"Terms": {"qubits": 2, "terms": [[1.0, "ZZZ"]]}}}"#,
            Box::new(|e| {
                matches!(
                    e,
                    SpecError::QubitMismatch {
                        needed: 2,
                        provided: 3,
                        ..
                    }
                )
            }),
        ),
        (
            "unknown backend",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "backend": {"Named": {"name": "almaden"}}}"#,
            Box::new(|e| {
                matches!(e, SpecError::UnknownBackend { name, available }
                    if name == "almaden" && available.len() == 4)
            }),
        ),
        (
            "backend/problem qubit mismatch",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 12}},
                "backend": {"Named": {"name": "nairobi"}}}"#,
            Box::new(|e| {
                matches!(
                    e,
                    SpecError::QubitMismatch {
                        needed: 12,
                        provided: 7,
                        ..
                    }
                )
            }),
        ),
        (
            "backend-derived noise without a backend",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "noise": "Backend"}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "noise")),
        ),
        (
            "out-of-range uniform probability",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "noise": {"Uniform": {"p1": 0.001, "p2": 1.5, "readout": 0.02, "t1": null}}}"#,
            Box::new(|e| {
                matches!(e, SpecError::InvalidProbability { context, value }
                    if context == "noise.p2" && *value == 1.5)
            }),
        ),
        (
            "negative explicit readout",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 2}},
                "noise": {"Explicit": {"p1": [0.0, 0.0], "p2": 0.01,
                                       "readout": [0.02, -0.3], "t1": null}}}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidProbability { value, .. } if *value == -0.3),
            ),
        ),
        (
            "explicit noise register mismatch",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 3}},
                "noise": {"Explicit": {"p1": [0.0], "p2": 0.01,
                                       "readout": [0.0, 0.0, 0.0], "t1": null}}}"#,
            Box::new(|e| {
                matches!(
                    e,
                    SpecError::QubitMismatch {
                        needed: 3,
                        provided: 1,
                        ..
                    }
                )
            }),
        ),
        (
            "non-positive T1",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "noise": {"Uniform": {"p1": 0.0, "p2": 0.0, "readout": 0.0, "t1": 0.0}}}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "noise.t1")),
        ),
        (
            "zero shots",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "evaluator": {"Sampled": {"shots": 0, "seed": 1}}}"#,
            Box::new(|e| matches!(e, SpecError::ZeroShots)),
        ),
        (
            "empty method set",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "methods": []}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "methods")),
        ),
        (
            "duplicate method",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "methods": ["Clapton", "Clapton"]}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "methods")),
        ),
        (
            "VQE refinement with nothing to refine",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "methods": [{"VqeRefine": {"iterations": 10}}]}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "methods")),
        ),
        (
            "a second VqeRefine stage (different iterations, so not an exact duplicate)",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "methods": ["Clapton", {"VqeRefine": {"iterations": 10}},
                            {"VqeRefine": {"iterations": 500}}]}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "methods")),
        ),
        (
            "zero VQE iterations",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "methods": ["Clapton", {"VqeRefine": {"iterations": 0}}]}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidField { field, .. } if field == "methods.VqeRefine.iterations"),
            ),
        ),
        (
            "zero-size engine",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "engine": {"Custom": {"instances": 0, "top_k": 1, "max_retry_rounds": 1,
                    "max_rounds": 1, "pool_fraction": 0.5, "parallel": false,
                    "ga": {"population_size": 10, "generations": 5, "tournament_size": 3,
                           "crossover_rate": 0.9, "mutation_rate": 0.1, "elite": 2}}}}"#,
            Box::new(
                |e| matches!(e, SpecError::InvalidField { field, .. } if field == "engine.instances"),
            ),
        ),
        (
            "zero round budget",
            r#"{"problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}},
                "budget": 0}"#,
            Box::new(|e| matches!(e, SpecError::InvalidField { field, .. } if field == "budget")),
        ),
        (
            "unsupported version",
            r#"{"version": 2, "problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 4}}}"#,
            Box::new(|e| {
                matches!(
                    e,
                    SpecError::UnsupportedVersion {
                        version: 2,
                        supported: 1
                    }
                )
            }),
        ),
    ];
    for (case, json, check) in table {
        let err = reject(json);
        assert!(check(&err), "{case}: wrong error {err:?}");
        // Every rejection renders a non-empty human-readable message.
        assert!(!err.to_string().is_empty(), "{case}");
    }
}

#[test]
fn snapshot_backend_with_inconsistent_register_fails_at_parse() {
    // An inline snapshot whose coupling map and calibration disagree cannot
    // even construct a FakeBackend — the parse layer rejects it.
    let json = r#"{
        "problem": {"Suite": {"name": "ising(J=0.25)", "qubits": 2}},
        "backend": {"Snapshot": {
            "name": "broken",
            "coupling": {"num_qubits": 3, "edges": [[0, 1], [1, 2]]},
            "calibration": {"t1": [1e-4], "p1": [1e-4], "p2": [], "readout": [0.01]}
        }}
    }"#;
    assert!(serde_json::from_str::<JobSpec>(json).is_err());
}
