//! The persistent result store through the service: cold-vs-warm report
//! identity across fresh processes (modeled as fresh `CacheStore` handles),
//! warm admission, and determinism of the reported statistics.

use clapton_runtime::WorkerPool;
use clapton_service::{
    CacheConfig, CacheStore, ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec,
    ProblemSpec, SuiteProblem, UniformNoise,
};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-cache-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

fn service_with(root: &PathBuf, pool: &Arc<WorkerPool>) -> ClaptonService {
    let cache = CacheStore::open_under_registry(root, CacheConfig::default()).unwrap();
    ClaptonService::with_pool(Arc::clone(pool))
        .with_artifacts(root)
        .unwrap()
        .with_cache(Arc::new(cache))
}

#[test]
fn warm_report_is_byte_identical_across_a_fresh_process() {
    let root = scratch("warm-report");
    let pool = Arc::new(WorkerPool::with_workers(2));

    // Cold: compute, persist, and cache the report.
    let cold_service = service_with(&root, &pool);
    let cold = cold_service.run(quick_spec(3)).unwrap();
    let job_dir = root.join("ising-J-0.50-seed3");
    let cold_report_bytes = std::fs::read(job_dir.join("report.json")).unwrap();
    drop(cold_service);

    // Simulate a fresh process: delete the job's artifacts (so the
    // persisted-report fast path cannot answer) and open brand-new service
    // and store handles over the same registry root.
    std::fs::remove_dir_all(&job_dir).unwrap();
    let warm_service = service_with(&root, &pool);
    let warm = warm_service.run(quick_spec(3)).unwrap();

    // The report — values, statistics, and its persisted bytes — is
    // identical, and it came from the store, not a re-run.
    assert_eq!(warm, cold);
    let warm_report_bytes = std::fs::read(job_dir.join("report.json")).unwrap();
    assert_eq!(warm_report_bytes, cold_report_bytes);
    let stats = warm_service.cache().unwrap().stats();
    assert!(
        stats.hits > 0,
        "warm run answered from the store: {stats:?}"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn loss_tier_answers_across_distinct_specs_sharing_the_objective() {
    // Two specs that differ in their method list have different report
    // identities, but their Clapton searches walk the same genome sequence
    // over the same objective — so the second spec's losses all answer from
    // the first one's loss namespace, and the result is bit-identical to a
    // cache-less run.
    let root = scratch("loss-tier");
    let pool = Arc::new(WorkerPool::with_workers(2));
    let mut clapton_only = quick_spec(5);
    clapton_only.methods = vec![MethodSpec::Clapton];
    let reference = ClaptonService::with_pool(Arc::clone(&pool))
        .run(quick_spec(5))
        .unwrap();

    // The warm-up service persists no artifacts (the two specs share a job
    // slug) — the store alone carries the losses across.
    let seeded = ClaptonService::with_pool(Arc::clone(&pool)).with_cache(Arc::new(
        CacheStore::open_under_registry(&root, CacheConfig::default()).unwrap(),
    ));
    seeded.run(clapton_only).unwrap();
    let warm = service_with(&root, &pool);
    let cached = warm.run(quick_spec(5)).unwrap();
    assert_eq!(cached, reference, "the store never changes results");
    let stats = warm.cache().unwrap().stats();
    assert!(
        stats.hits > 0,
        "the full run reused the clapton-only run's losses: {stats:?}"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn answer_from_cache_materializes_the_report_for_admission() {
    let root = scratch("admission");
    let pool = Arc::new(WorkerPool::with_workers(2));
    let service = service_with(&root, &pool);

    let admitted = service.admit(quick_spec(9)).unwrap();
    assert!(
        service.answer_from_cache(&admitted).unwrap().is_none(),
        "nothing cached yet"
    );
    let cold = service.run(quick_spec(9)).unwrap();

    // A fresh handle over the same store answers the admission fast path
    // even after the artifacts are gone.
    let job_dir = root.join("ising-J-0.50-seed9");
    std::fs::remove_dir_all(&job_dir).unwrap();
    let warm_service = service_with(&root, &pool);
    let admitted = warm_service.admit(quick_spec(9)).unwrap();
    let answered = warm_service.answer_from_cache(&admitted).unwrap();
    assert_eq!(answered, Some(cold));
    assert!(
        job_dir.join("report.json").exists(),
        "warm admission persists the report artifact"
    );
    std::fs::remove_dir_all(&root).unwrap();
}
