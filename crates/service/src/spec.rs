//! The declarative job description: one serializable, versioned request
//! type every entry point compiles down to.
//!
//! A [`JobSpec`] names *what* to run — a problem (by registry name or as
//! explicit Pauli terms), a backend (by registry name or the plain logical
//! register), a noise environment, the method set, the engine effort, a
//! seed, and an optional round budget. It deliberately contains no closures,
//! no trait objects, and no live handles: a spec round-trips through JSON
//! unchanged, so a job can come from a builder, a CLI flag, a checkpoint
//! directory, or (eventually) a network request and mean exactly the same
//! run.
//!
//! [`JobSpec::validate`] is the single gate between the serialized world
//! and the execution engine: it resolves every registry name, checks every
//! invariant that used to be a scattered panic or stringly error, and
//! returns a [`ResolvedJob`] that the service layer can execute without
//! further failure modes besides I/O.
//!
//! Unknown JSON fields are ignored on parse (forward compatibility: a newer
//! writer may add fields), while a `version` newer than [`SPEC_VERSION`]
//! is rejected (the semantics of existing fields may have changed).

use clapton_core::{ClaptonConfig, EvaluatorKind, ExecutableAnsatz};
use clapton_devices::FakeBackend;
use clapton_error::SpecError;
use clapton_ga::MultiGaConfig;
use clapton_models::benchmark_by_name;
use clapton_noise::NoiseModel;
use clapton_pauli::{PauliString, PauliSum};
use serde::{Deserialize, Serialize};

/// The newest spec version this build understands.
pub const SPEC_VERSION: u32 = 1;

/// A problem drawn from the benchmark registry
/// ([`clapton_models::benchmark_by_name`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteProblem {
    /// Registry name, e.g. `"ising(J=0.25)"` or `"H2O(l=1.0)"`.
    pub name: String,
    /// Register size the physics benchmarks are instantiated at (chemistry
    /// benchmarks are fixed at 10 qubits and only resolve there).
    pub qubits: usize,
}

/// An explicit problem: Pauli terms spelled out in the spec itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermsProblem {
    /// Register size.
    pub qubits: usize,
    /// `(coefficient, Pauli word)` pairs, e.g. `(0.5, "ZZII")`.
    pub terms: Vec<(f64, String)>,
}

/// What Hamiltonian the job optimizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// A named benchmark from the suite registry.
    Suite(SuiteProblem),
    /// Explicit Pauli terms.
    Terms(TermsProblem),
}

/// A device from the backend registry ([`FakeBackend::by_name`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedBackend {
    /// Registry name (`"nairobi"`, `"toronto"`, `"mumbai"`, `"hanoi"`),
    /// optionally with a `-hw:<seed>` suffix for the perturbed
    /// hardware variant.
    pub name: String,
}

/// Where the ansatz executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// No device: the logical register, untranspiled (noise comes entirely
    /// from the [`NoiseSpec`]).
    Logical,
    /// A registry device: the ansatz is transpiled onto its topology.
    Named(NamedBackend),
    /// A full inline backend snapshot (topology + calibration) — the spec
    /// stays self-contained for archived or perturbed devices that have no
    /// registry name.
    Snapshot(FakeBackend),
}

/// A spatially uniform noise environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformNoise {
    /// Single-qubit depolarizing rate.
    pub p1: f64,
    /// Two-qubit depolarizing rate.
    pub p2: f64,
    /// Readout misassignment rate.
    pub readout: f64,
    /// Uniform T1 relaxation time in seconds (`null` = no relaxation).
    pub t1: Option<f64>,
}

/// Fully explicit per-qubit rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplicitNoise {
    /// Per-qubit single-qubit rates (length = register size).
    pub p1: Vec<f64>,
    /// Two-qubit rate applied to every pair.
    pub p2: f64,
    /// Per-qubit readout rates (length = register size).
    pub readout: Vec<f64>,
    /// Uniform T1 relaxation time in seconds (`null` = no relaxation).
    pub t1: Option<f64>,
}

/// The noise environment the loss optimizes against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoiseSpec {
    /// Derive the model from the named backend's calibration snapshot
    /// (requires [`BackendSpec::Named`]).
    Backend,
    /// No noise at all.
    Noiseless,
    /// Uniform rates on every qubit/pair.
    Uniform(UniformNoise),
    /// Explicit per-qubit rates.
    Explicit(ExplicitNoise),
}

/// A follow-up VQE refinement stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VqeRefineSpec {
    /// SPSA iterations.
    pub iterations: usize,
}

/// One initialization / refinement method of the paper's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// CAFQA: noiseless Clifford search over ansatz angles (prior art).
    Cafqa,
    /// Noise-aware CAFQA (§5.2).
    Ncafqa,
    /// Clapton: the Hamiltonian transformation search (§4).
    Clapton,
    /// VQE (SPSA) from every search method's initial point.
    VqeRefine(VqeRefineSpec),
}

/// The multi-GA engine effort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// Reduced settings for tests and demos ([`MultiGaConfig::quick`]).
    Quick,
    /// The paper's hyper-parameters ([`MultiGaConfig::paper`]).
    Paper,
    /// Explicit engine hyper-parameters.
    Custom(MultiGaConfig),
}

impl EngineSpec {
    /// The engine configuration this effort level resolves to.
    pub fn resolve(&self) -> MultiGaConfig {
        match self {
            EngineSpec::Quick => MultiGaConfig::quick(),
            EngineSpec::Paper => MultiGaConfig::paper(),
            EngineSpec::Custom(config) => *config,
        }
    }

    /// Compiles a concrete engine configuration to the most compact spec:
    /// the named effort levels when the settings match them exactly, the
    /// explicit configuration otherwise.
    pub fn from_config(config: MultiGaConfig) -> EngineSpec {
        if config == MultiGaConfig::quick() {
            EngineSpec::Quick
        } else if config == MultiGaConfig::paper() {
            EngineSpec::Paper
        } else {
            EngineSpec::Custom(config)
        }
    }
}

/// A fully serializable, versioned Clapton job description — the one
/// request type behind every entry point.
///
/// # Example
///
/// ```
/// use clapton_service::{JobSpec, ProblemSpec, SuiteProblem};
///
/// let json = r#"{
///     "problem": {"Suite": {"name": "ising(J=0.50)", "qubits": 4}},
///     "engine": "Quick",
///     "seed": 7
/// }"#;
/// let spec: JobSpec = serde_json::from_str(json).unwrap();
/// assert_eq!(spec.version, clapton_service::SPEC_VERSION);
/// assert_eq!(
///     spec.problem,
///     ProblemSpec::Suite(SuiteProblem { name: "ising(J=0.50)".into(), qubits: 4 })
/// );
/// let resolved = spec.validate().unwrap();
/// assert_eq!(resolved.hamiltonian.num_qubits(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Spec format version (defaults to [`SPEC_VERSION`]; versions newer
    /// than this build rejects).
    pub version: u32,
    /// Display name; empty = derived from the problem.
    pub name: String,
    /// What to optimize.
    pub problem: ProblemSpec,
    /// Where to execute (default: the plain logical register).
    pub backend: BackendSpec,
    /// The noise environment (default: noiseless).
    pub noise: NoiseSpec,
    /// Which methods to run (default: CAFQA + Clapton, the [`Pipeline`]
    /// pairing).
    pub methods: Vec<MethodSpec>,
    /// Engine effort (default: the paper's settings).
    pub engine: EngineSpec,
    /// How the noisy loss `LN` is evaluated (default: exact).
    pub evaluator: EvaluatorKind,
    /// Base seed of every search the job runs.
    pub seed: u64,
    /// Ablation switch for the two-qubit transformation slots (default on).
    pub two_qubit_slots: bool,
    /// Optional Clapton round budget: after this many GA rounds the search
    /// suspends at a checkpoint instead of converging (resubmit to resume).
    pub budget: Option<u64>,
}

impl JobSpec {
    /// A spec for `problem` with every other field at its default.
    pub fn new(problem: ProblemSpec) -> JobSpec {
        JobSpec {
            version: SPEC_VERSION,
            name: String::new(),
            problem,
            backend: BackendSpec::Logical,
            noise: NoiseSpec::Noiseless,
            methods: vec![MethodSpec::Cafqa, MethodSpec::Clapton],
            engine: EngineSpec::Paper,
            evaluator: EvaluatorKind::Exact,
            seed: 0,
            two_qubit_slots: true,
            budget: None,
        }
    }

    /// The job's display name: the explicit `name` when set, otherwise a
    /// name derived from the problem.
    pub fn display_name(&self) -> String {
        if !self.name.is_empty() {
            return self.name.clone();
        }
        match &self.problem {
            ProblemSpec::Suite(p) => p.name.clone(),
            ProblemSpec::Terms(p) => format!("terms-{}q-{}t", p.qubits, p.terms.len()),
        }
    }

    /// Validates the spec and resolves every registry name, returning the
    /// executable form.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming exactly what is wrong: unknown problem or
    /// backend names (with the available registry listed), qubit mismatches,
    /// probabilities outside `[0, 1]`, zero shot budgets, empty or
    /// inconsistent method sets, and unsupported spec versions.
    pub fn validate(&self) -> Result<ResolvedJob, SpecError> {
        if self.version > SPEC_VERSION {
            return Err(SpecError::UnsupportedVersion {
                version: self.version,
                supported: SPEC_VERSION,
            });
        }
        let hamiltonian = self.resolve_problem()?;
        let n = hamiltonian.num_qubits();
        let backend = match &self.backend {
            BackendSpec::Logical => None,
            BackendSpec::Named(named) => Some(FakeBackend::by_name(&named.name)?),
            BackendSpec::Snapshot(backend) => Some(backend.clone()),
        };
        if let Some(b) = &backend {
            if b.num_qubits() < n {
                return Err(SpecError::QubitMismatch {
                    context: format!("problem on backend {:?}", b.name()),
                    needed: n,
                    provided: b.num_qubits(),
                });
            }
        }
        let register = backend.as_ref().map_or(n, FakeBackend::num_qubits);
        let noise = self.resolve_noise(backend.as_ref(), register)?;
        let exec = match &backend {
            Some(b) => ExecutableAnsatz::on_device(n, b.coupling_map(), &noise).map_err(|e| {
                SpecError::InvalidField {
                    field: "backend".to_string(),
                    reason: e.to_string(),
                }
            })?,
            None => ExecutableAnsatz::untranspiled(n, &noise),
        };
        self.validate_methods()?;
        self.validate_evaluator()?;
        self.validate_engine()?;
        if self.budget == Some(0) {
            return Err(SpecError::InvalidField {
                field: "budget".to_string(),
                reason: "a zero round budget can never make progress".to_string(),
            });
        }
        Ok(ResolvedJob {
            name: self.display_name(),
            hamiltonian,
            backend,
            exec,
            config: ClaptonConfig {
                engine: self.engine.resolve(),
                evaluator: self.evaluator,
                seed: self.seed,
                two_qubit_slots: self.two_qubit_slots,
            },
            methods: self.methods.clone(),
            budget: self.budget,
            spec: self.clone(),
        })
    }

    fn resolve_problem(&self) -> Result<PauliSum, SpecError> {
        match &self.problem {
            ProblemSpec::Suite(p) => {
                if p.qubits == 0 {
                    return Err(SpecError::InvalidField {
                        field: "problem.qubits".to_string(),
                        reason: "register must have at least one qubit".to_string(),
                    });
                }
                Ok(benchmark_by_name(&p.name, p.qubits)?.hamiltonian)
            }
            ProblemSpec::Terms(p) => {
                if p.qubits == 0 {
                    return Err(SpecError::InvalidField {
                        field: "problem.qubits".to_string(),
                        reason: "register must have at least one qubit".to_string(),
                    });
                }
                if p.terms.is_empty() {
                    return Err(SpecError::InvalidField {
                        field: "problem.terms".to_string(),
                        reason: "a problem needs at least one Pauli term".to_string(),
                    });
                }
                let mut h = PauliSum::new(p.qubits);
                for (coeff, word) in &p.terms {
                    let pauli: PauliString = word.parse().map_err(|e| SpecError::InvalidField {
                        field: "problem.terms".to_string(),
                        reason: format!("{word:?}: {e}"),
                    })?;
                    if pauli.num_qubits() != p.qubits {
                        return Err(SpecError::QubitMismatch {
                            context: format!("term {word:?}"),
                            needed: p.qubits,
                            provided: pauli.num_qubits(),
                        });
                    }
                    h.push(*coeff, pauli);
                }
                Ok(h)
            }
        }
    }

    fn resolve_noise(
        &self,
        backend: Option<&FakeBackend>,
        register: usize,
    ) -> Result<NoiseModel, SpecError> {
        let check = |context: &str, p: f64| -> Result<f64, SpecError> {
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(SpecError::InvalidProbability {
                    context: context.to_string(),
                    value: p,
                })
            }
        };
        let check_t1 = |t1: Option<f64>| -> Result<Option<f64>, SpecError> {
            match t1 {
                Some(t) if t.is_nan() || t <= 0.0 => Err(SpecError::InvalidField {
                    field: "noise.t1".to_string(),
                    reason: format!("{t} is not a positive relaxation time"),
                }),
                other => Ok(other),
            }
        };
        match &self.noise {
            NoiseSpec::Backend => match backend {
                Some(b) => Ok(b.noise_model()),
                None => Err(SpecError::InvalidField {
                    field: "noise".to_string(),
                    reason: "Backend-derived noise needs a Named backend".to_string(),
                }),
            },
            NoiseSpec::Noiseless => Ok(NoiseModel::noiseless(register)),
            NoiseSpec::Uniform(u) => {
                let mut model = NoiseModel::uniform(
                    register,
                    check("noise.p1", u.p1)?,
                    check("noise.p2", u.p2)?,
                    check("noise.readout", u.readout)?,
                );
                if let Some(t1) = check_t1(u.t1)? {
                    model.set_t1_uniform(t1);
                }
                Ok(model)
            }
            NoiseSpec::Explicit(e) => {
                for (field, values) in [("p1", &e.p1), ("readout", &e.readout)] {
                    if values.len() != register {
                        return Err(SpecError::QubitMismatch {
                            context: format!("noise.{field}"),
                            needed: register,
                            provided: values.len(),
                        });
                    }
                }
                let mut model = NoiseModel::noiseless(register);
                for (q, &p) in e.p1.iter().enumerate() {
                    model.set_p1(q, check(&format!("noise.p1[{q}]"), p)?);
                }
                for (q, &p) in e.readout.iter().enumerate() {
                    model.set_readout(q, check(&format!("noise.readout[{q}]"), p)?);
                }
                model.set_p2_default(check("noise.p2", e.p2)?);
                if let Some(t1) = check_t1(e.t1)? {
                    model.set_t1_uniform(t1);
                }
                Ok(model)
            }
        }
    }

    fn validate_methods(&self) -> Result<(), SpecError> {
        if self.methods.is_empty() {
            return Err(SpecError::InvalidField {
                field: "methods".to_string(),
                reason: "a job must run at least one method".to_string(),
            });
        }
        let mut search_methods = 0usize;
        let mut vqe_stages = 0usize;
        for (i, method) in self.methods.iter().enumerate() {
            if self.methods[..i].contains(method) {
                return Err(SpecError::InvalidField {
                    field: "methods".to_string(),
                    reason: format!("duplicate method {method:?}"),
                });
            }
            match method {
                MethodSpec::Cafqa | MethodSpec::Ncafqa | MethodSpec::Clapton => search_methods += 1,
                MethodSpec::VqeRefine(v) => {
                    // Only the first VqeRefine would ever run, so a second
                    // one (even with different iterations) is a mistake,
                    // not a request.
                    vqe_stages += 1;
                    if vqe_stages > 1 {
                        return Err(SpecError::InvalidField {
                            field: "methods".to_string(),
                            reason: "at most one VqeRefine stage per job".to_string(),
                        });
                    }
                    if v.iterations == 0 {
                        return Err(SpecError::InvalidField {
                            field: "methods.VqeRefine.iterations".to_string(),
                            reason: "zero iterations refine nothing".to_string(),
                        });
                    }
                }
            }
        }
        if search_methods == 0 {
            return Err(SpecError::InvalidField {
                field: "methods".to_string(),
                reason: "VqeRefine needs a search method (Cafqa, Ncafqa, or Clapton) to start from"
                    .to_string(),
            });
        }
        Ok(())
    }

    fn validate_evaluator(&self) -> Result<(), SpecError> {
        if let EvaluatorKind::Sampled { shots: 0, .. } = self.evaluator {
            return Err(SpecError::ZeroShots);
        }
        Ok(())
    }

    fn validate_engine(&self) -> Result<(), SpecError> {
        let engine = self.engine.resolve();
        for (field, value) in [
            ("engine.instances", engine.instances),
            ("engine.top_k", engine.top_k),
            ("engine.max_rounds", engine.max_rounds),
            ("engine.ga.population_size", engine.ga.population_size),
            ("engine.ga.generations", engine.ga.generations),
        ] {
            if value == 0 {
                return Err(SpecError::InvalidField {
                    field: field.to_string(),
                    reason: "must be non-zero".to_string(),
                });
            }
        }
        Ok(())
    }
}

// Hand-written serde impls: the vendored derive cannot express per-field
// defaults, and a spec file should not have to spell out every knob. Every
// field except `problem` is optional on the wire; unknown fields are
// ignored (forward compatibility), and the field order below is the
// canonical serialized order.
impl Serialize for JobSpec {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::Value;
        serializer.serialize_value(Value::Map(vec![
            ("version".to_string(), serde::to_value(&self.version)),
            ("name".to_string(), serde::to_value(&self.name)),
            ("problem".to_string(), serde::to_value(&self.problem)),
            ("backend".to_string(), serde::to_value(&self.backend)),
            ("noise".to_string(), serde::to_value(&self.noise)),
            ("methods".to_string(), serde::to_value(&self.methods)),
            ("engine".to_string(), serde::to_value(&self.engine)),
            ("evaluator".to_string(), serde::to_value(&self.evaluator)),
            ("seed".to_string(), serde::to_value(&self.seed)),
            (
                "two_qubit_slots".to_string(),
                serde::to_value(&self.two_qubit_slots),
            ),
            ("budget".to_string(), serde::to_value(&self.budget)),
        ]))
    }
}

impl<'de> Deserialize<'de> for JobSpec {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        use serde::Value;
        let mut map = match deserializer.take_value()? {
            Value::Map(m) => m,
            other => {
                return Err(D::Error::custom(format!(
                    "expected map for JobSpec, found {other:?}"
                )))
            }
        };
        // A missing optional field gets its default; `null` also means
        // "default" for non-Option fields so hand-edited specs can blank a
        // knob without deleting the line.
        fn opt<T: serde::de::DeserializeOwned, E: serde::de::Error>(
            map: &mut Vec<(String, Value)>,
            name: &str,
            default: T,
        ) -> Result<T, E> {
            match map.iter().position(|(k, _)| k == name) {
                Some(at) => {
                    let (_, v) = map.remove(at);
                    if v == Value::Null {
                        return Ok(default);
                    }
                    serde::from_value(v).map_err(|e| E::custom(format!("field `{name}`: {e}")))
                }
                None => Ok(default),
            }
        }
        let problem = serde::take_field(&mut map, "problem").map_err(D::Error::custom)?;
        let defaults = JobSpec::new(ProblemSpec::Terms(TermsProblem {
            qubits: 1,
            terms: Vec::new(),
        }));
        Ok(JobSpec {
            version: opt(&mut map, "version", SPEC_VERSION)?,
            name: opt(&mut map, "name", String::new())?,
            problem,
            backend: opt(&mut map, "backend", defaults.backend)?,
            noise: opt(&mut map, "noise", defaults.noise)?,
            methods: opt(&mut map, "methods", defaults.methods)?,
            engine: opt(&mut map, "engine", defaults.engine)?,
            evaluator: opt(&mut map, "evaluator", defaults.evaluator)?,
            seed: opt(&mut map, "seed", defaults.seed)?,
            two_qubit_slots: opt(&mut map, "two_qubit_slots", defaults.two_qubit_slots)?,
            budget: opt(&mut map, "budget", None)?,
        })
    }
}

/// The validated, executable form of a [`JobSpec`]: every registry name
/// resolved, every invariant checked. Produced only by
/// [`JobSpec::validate`].
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// Display name.
    pub name: String,
    /// The problem Hamiltonian.
    pub hamiltonian: PauliSum,
    /// The resolved backend, when one was named.
    pub backend: Option<FakeBackend>,
    /// The transpiled (or untranspiled) executable ansatz carrying the
    /// resolved noise model.
    pub exec: ExecutableAnsatz,
    /// The Clapton engine configuration (engine + evaluator + seed +
    /// ablation switch).
    pub config: ClaptonConfig,
    /// Methods to run, in spec order.
    pub methods: Vec<MethodSpec>,
    /// Clapton round budget (None = run to convergence).
    pub budget: Option<u64>,
    /// The spec this job resolved from (persisted next to run artifacts so
    /// any run is reproducible from its spec alone).
    pub spec: JobSpec,
}

impl ResolvedJob {
    /// Whether `method` is part of this job.
    pub fn runs(&self, method: &MethodSpec) -> bool {
        self.methods.contains(method)
    }

    /// The VQE refinement iterations, when requested.
    pub fn vqe_iterations(&self) -> Option<usize> {
        self.methods.iter().find_map(|m| match m {
            MethodSpec::VqeRefine(v) => Some(v.iterations),
            _ => None,
        })
    }
}
