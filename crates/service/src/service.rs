//! [`ClaptonService`]: submit validated [`JobSpec`]s onto the shared
//! runtime substrate.

use crate::{JobSpec, MethodSpec, Report, ResolvedJob};
use clapton_core::{run_cafqa, run_clapton_resumable, run_ncafqa};
use clapton_error::{ClaptonError, SpecError};
use clapton_ga::EngineState;
use clapton_pauli::PauliSum;
use clapton_runtime::{
    artifact_slug, EventKind, JobContext, JobScheduler, RunDirectory, RunEvent, RunManifest,
    RunRegistry, ScheduledJob, WorkerPool,
};
use clapton_sim::{ground_energy, DeviceEvaluator};
use clapton_vqe::{run_vqe, VqeConfig};
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Artifact names inside a job's run directory.
const SPEC_ARTIFACT: &str = "spec.json";
const CHECKPOINT_ARTIFACT: &str = "checkpoint.json";
const REPORT_ARTIFACT: &str = "report.json";

/// The artifact-directory name a job owns under the service's root.
fn job_slug(job: &ResolvedJob) -> String {
    artifact_slug(&format!("{}-seed{}", job.name, job.config.seed))
}

/// The service front door: one `submit` for every caller.
///
/// A service owns (or shares) a persistent [`WorkerPool`]; every submitted
/// job runs through the [`JobScheduler`] on that pool, so concurrent jobs
/// interleave their population batches fairly instead of queueing behind
/// each other. With an artifact root attached
/// ([`ClaptonService::with_artifacts`]), each job gets its own
/// [`RunDirectory`] holding the submitted spec (`spec.json`), atomic
/// per-round checkpoints, and the final `report.json` — making every run
/// resumable and reproducible from its spec alone, and resubmissions of a
/// completed spec answer from the persisted report.
///
/// # Example
///
/// ```
/// use clapton_service::{ClaptonService, EngineSpec, JobSpec, ProblemSpec, SuiteProblem};
///
/// let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
///     name: "ising(J=0.50)".into(),
///     qubits: 4,
/// }));
/// spec.engine = EngineSpec::Quick;
/// spec.seed = 7;
/// let report = ClaptonService::new().run(spec).unwrap();
/// assert!(report.clapton.is_some() && report.cafqa.is_some());
/// ```
#[derive(Debug)]
pub struct ClaptonService {
    pool: Arc<WorkerPool>,
    artifacts: Option<RunRegistry>,
}

impl Default for ClaptonService {
    fn default() -> ClaptonService {
        ClaptonService::new()
    }
}

impl ClaptonService {
    /// A service with its own worker pool sized to the machine.
    pub fn new() -> ClaptonService {
        ClaptonService::with_pool(Arc::new(WorkerPool::new()))
    }

    /// A service sharing an existing pool (e.g. with a suite run or other
    /// services in the same process).
    pub fn with_pool(pool: Arc<WorkerPool>) -> ClaptonService {
        ClaptonService {
            pool,
            artifacts: None,
        }
    }

    /// Attaches a persistent artifact root: every job gets a run directory
    /// under it, keyed by job name and seed.
    ///
    /// # Errors
    ///
    /// Fails if the root cannot be created.
    pub fn with_artifacts(
        mut self,
        root: impl Into<PathBuf>,
    ) -> Result<ClaptonService, ClaptonError> {
        self.artifacts = Some(RunRegistry::open(root)?);
        Ok(self)
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Validates and runs one job synchronously on the calling thread (the
    /// pool still executes the population batches).
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Spec`] on an invalid spec, [`ClaptonError::Io`] on
    /// artifact failures, [`ClaptonError::Suspended`] when a round budget
    /// halted the search before convergence.
    pub fn run(&self, spec: JobSpec) -> Result<Report, ClaptonError> {
        let mut results = self.run_all(vec![spec], None)?;
        results.pop().expect("one job submitted")
    }

    /// Validates and submits one job, returning a [`JobHandle`] streaming
    /// [`RunEvent`]s while the job runs in the background.
    ///
    /// Validation (and the artifact-conflict check) happens synchronously —
    /// a handle is only returned for a job that will actually execute.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Spec`] on an invalid spec, [`ClaptonError::Io`] when
    /// the artifact directory exists but belongs to a different spec.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ClaptonError> {
        let job = spec.validate()?;
        self.check_budget_checkpointable(&job)?;
        let dir = self.prepare_dir(&job)?;
        let name = job.name.clone();
        let pool = Arc::clone(&self.pool);
        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::channel();
        let thread = std::thread::spawn(move || {
            let scheduler = JobScheduler::new(pool);
            let jobs = vec![ScheduledJob::new(job.name.clone(), |ctx: &JobContext| {
                execute(&job, ctx, dir.as_ref())
            })];
            let mut results = scheduler.run_all(jobs, Some(event_tx));
            let _ = result_tx.send(results.pop().expect("one job scheduled"));
        });
        Ok(JobHandle {
            name,
            events: event_rx,
            result: result_rx,
            thread,
        })
    }

    /// Validates and runs a batch of jobs concurrently on the shared pool
    /// with fair interleaving, streaming progress to `events`.
    ///
    /// Validation is all-or-nothing: if any spec is invalid, nothing runs.
    /// Per-job execution failures (I/O, budget suspension) come back in the
    /// per-job `Result`s, in submission order.
    ///
    /// # Errors
    ///
    /// The first invalid spec, or an artifact-directory conflict.
    pub fn run_all(
        &self,
        specs: Vec<JobSpec>,
        events: Option<Sender<RunEvent>>,
    ) -> Result<Vec<Result<Report, ClaptonError>>, ClaptonError> {
        let jobs = specs
            .into_iter()
            .map(|spec| spec.validate().map_err(ClaptonError::from))
            .collect::<Result<Vec<ResolvedJob>, ClaptonError>>()?;
        for job in &jobs {
            self.check_budget_checkpointable(job)?;
        }
        // Two jobs in one batch sharing an artifact directory would race on
        // its checkpoint/report files (identical specs pass the resubmission
        // check), so duplicates are rejected up front.
        if self.artifacts.is_some() {
            let mut slugs: Vec<String> = jobs.iter().map(job_slug).collect();
            slugs.sort_unstable();
            if let Some(dup) = slugs.windows(2).find(|w| w[0] == w[1]) {
                return Err(SpecError::InvalidField {
                    field: "specs".to_string(),
                    reason: format!(
                        "two jobs in this batch map to the same artifact directory {:?}; \
                         give them distinct names or seeds",
                        dup[0]
                    ),
                }
                .into());
            }
        }
        let dirs = jobs
            .iter()
            .map(|job| self.prepare_dir(job))
            .collect::<Result<Vec<Option<RunDirectory>>, ClaptonError>>()?;
        let scheduler = JobScheduler::new(Arc::clone(&self.pool));
        let scheduled: Vec<ScheduledJob<'_, Result<Report, ClaptonError>>> = jobs
            .iter()
            .zip(&dirs)
            .map(|(job, dir)| {
                ScheduledJob::new(job.name.clone(), move |ctx: &JobContext| {
                    execute(job, ctx, dir.as_ref())
                })
            })
            .collect();
        Ok(scheduler.run_all(scheduled, events))
    }

    /// A round budget only makes sense when there is somewhere to persist
    /// the checkpoint: without an artifact root, a suspended search would be
    /// dropped and every resubmission would restart from round 0 — an
    /// infinite suspend loop, not a resume.
    fn check_budget_checkpointable(&self, job: &ResolvedJob) -> Result<(), ClaptonError> {
        if job.budget.is_some() && self.artifacts.is_none() {
            return Err(SpecError::InvalidField {
                field: "budget".to_string(),
                reason: "a round budget needs an artifact root to checkpoint into; attach one \
                         with ClaptonService::with_artifacts"
                    .to_string(),
            }
            .into());
        }
        Ok(())
    }

    /// Opens (or verifies) the job's run directory: the submitted spec is
    /// persisted on first contact; a resubmission must match it exactly.
    fn prepare_dir(&self, job: &ResolvedJob) -> Result<Option<RunDirectory>, ClaptonError> {
        let Some(registry) = &self.artifacts else {
            return Ok(None);
        };
        let slug = job_slug(job);
        let dir = registry.run(&slug)?;
        // The round budget is execution *policy*, not job identity: a run
        // suspended under `--halt-after-rounds` may be finished by a
        // resubmission with a different (or no) budget, so it is excluded
        // from the conflict check.
        let identity = |spec: &JobSpec| {
            let mut spec = spec.clone();
            spec.budget = None;
            spec
        };
        match dir.read_json::<JobSpec>(SPEC_ARTIFACT)? {
            Some(existing) if identity(&existing) != identity(&job.spec) => {
                return Err(ClaptonError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "run directory {} was created from a different spec; refusing to mix \
                         artifacts (submit under a different name or seed)",
                        dir.path().display()
                    ),
                )));
            }
            Some(_) => {}
            None => {
                dir.write_json(SPEC_ARTIFACT, &job.spec)?;
                dir.write_manifest(&RunManifest {
                    jobs: vec![job.name.clone()],
                    seed: job.config.seed,
                    profile: format!("service-v{}", job.spec.version),
                })?;
            }
        }
        Ok(Some(dir))
    }
}

/// A submitted background job: stream its events, then wait for the report.
#[derive(Debug)]
pub struct JobHandle {
    name: String,
    events: Receiver<RunEvent>,
    result: Receiver<Result<Report, ClaptonError>>,
    thread: JoinHandle<()>,
}

impl JobHandle {
    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live event stream (disconnects when the job finishes).
    pub fn events(&self) -> &Receiver<RunEvent> {
        &self.events
    }

    /// Blocks until the job finishes and returns its report.
    ///
    /// # Errors
    ///
    /// Whatever the job failed with — including
    /// [`ClaptonError::Suspended`] when a round budget halted it.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the job body.
    pub fn wait(self) -> Result<Report, ClaptonError> {
        match self.thread.join() {
            Ok(()) => {}
            Err(panic) => std::panic::resume_unwind(panic),
        }
        self.result.recv().expect("job thread sent its result")
    }
}

/// Runs one resolved job on the scheduler-provided context — the shared
/// execution body behind [`ClaptonService::run`], [`ClaptonService::submit`]
/// and the spec-driven suite runner.
///
/// Replicates the legacy `Pipeline::run` evaluation order exactly (every
/// search is deterministic given its seed, so a spec-driven run is
/// bit-identical to the builder path it replaced).
pub(crate) fn execute(
    job: &ResolvedJob,
    ctx: &JobContext,
    dir: Option<&RunDirectory>,
) -> Result<Report, ClaptonError> {
    if let Some(dir) = dir {
        if let Some(report) = dir.read_json::<Report>(REPORT_ARTIFACT)? {
            ctx.emit(EventKind::Finished(
                "already complete (answered from persisted report)".to_string(),
            ));
            return Ok(report);
        }
    }
    let h = &job.hamiltonian;
    let exec = &job.exec;
    let config = &job.config;
    let e0 = ground_energy(h);
    let cafqa = job
        .runs(&MethodSpec::Cafqa)
        .then(|| run_cafqa(h, exec, &config.engine, config.seed));
    let ncafqa = job
        .runs(&MethodSpec::Ncafqa)
        .then(|| run_ncafqa(h, exec, &config.engine, config.evaluator, config.seed));
    let clapton = if job.runs(&MethodSpec::Clapton) {
        let resume = match dir {
            Some(dir) => dir.read_json::<EngineState>(CHECKPOINT_ARTIFACT)?,
            None => None,
        };
        // The budget counts rounds per submission (matching the suite
        // runner's `--halt-after-rounds` semantics): each resubmission gets
        // a fresh allowance and continues from the persisted checkpoint.
        let mut remaining = job.budget.map(|b| b as i64);
        let mut checkpoint_error: Option<io::Error> = None;
        let (state, result) =
            run_clapton_resumable(h, exec, config, Some(ctx.pool()), resume, &mut |state| {
                if let Some(dir) = dir {
                    if let Err(e) = dir.write_json(CHECKPOINT_ARTIFACT, state) {
                        checkpoint_error = Some(e);
                        return false;
                    }
                    ctx.emit(EventKind::Checkpointed(state.rounds()));
                }
                if let Some(best) = &state.global_best {
                    ctx.emit(EventKind::Round(state.rounds(), best.loss));
                }
                match &mut remaining {
                    Some(r) => {
                        *r -= 1;
                        *r > 0
                    }
                    None => true,
                }
            });
        if let Some(e) = checkpoint_error {
            return Err(e.into());
        }
        match result {
            Some(clapton) => Some(clapton),
            None => {
                ctx.emit(EventKind::Suspended(state.rounds()));
                return Err(ClaptonError::Suspended {
                    rounds: state.rounds(),
                });
            }
        }
    } else {
        None
    };
    let device_energy = |h: &PauliSum, theta: &[f64]| {
        DeviceEvaluator::run(&exec.circuit(theta), exec.noise_model())
            .energy(&exec.map_hamiltonian(h))
    };
    let zeros = vec![0.0; exec.ansatz().num_parameters()];
    let cafqa_initial_energy = cafqa.as_ref().map(|c| device_energy(h, &c.theta));
    let ncafqa_initial_energy = ncafqa.as_ref().map(|c| device_energy(h, &c.theta));
    let clapton_initial_energy = clapton
        .as_ref()
        .map(|c| device_energy(&c.transformation.transformed, &zeros));
    let baseline = cafqa_initial_energy.or(ncafqa_initial_energy);
    let eta_initial = match (baseline, clapton_initial_energy) {
        (Some(base), Some(init)) => Some(clapton_core::relative_improvement(e0, base, init)),
        _ => None,
    };
    let (clapton_vqe, cafqa_vqe, ncafqa_vqe) = match job.vqe_iterations() {
        Some(iters) => {
            let vqe_config = VqeConfig::new(iters);
            (
                clapton
                    .as_ref()
                    .map(|c| run_vqe(&c.transformation.transformed, exec, &zeros, &vqe_config)),
                cafqa
                    .as_ref()
                    .map(|c| run_vqe(h, exec, &c.theta, &vqe_config)),
                ncafqa
                    .as_ref()
                    .map(|c| run_vqe(h, exec, &c.theta, &vqe_config)),
            )
        }
        None => (None, None, None),
    };
    let report = Report {
        name: job.name.clone(),
        e0,
        cafqa,
        ncafqa,
        clapton,
        cafqa_initial_energy,
        ncafqa_initial_energy,
        clapton_initial_energy,
        eta_initial,
        clapton_vqe,
        cafqa_vqe,
        ncafqa_vqe,
    };
    if let Some(dir) = dir {
        dir.write_json(REPORT_ARTIFACT, &report)?;
        dir.remove(CHECKPOINT_ARTIFACT)?;
    }
    ctx.emit(EventKind::Finished(match &report.clapton {
        Some(c) => format!("clapton loss {:.6} in {} rounds", c.loss, c.rounds),
        None => "complete".to_string(),
    }));
    Ok(report)
}
