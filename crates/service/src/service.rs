//! [`ClaptonService`]: submit validated [`JobSpec`]s onto the shared
//! runtime substrate.

use crate::{JobSpec, MethodSpec, Report, ResolvedJob};
use clapton_cache::{CacheConfig, CacheStore};
use clapton_core::{run_cafqa, run_clapton_resumable_with_store, run_ncafqa, LossStore};
use clapton_error::{ClaptonError, SpecError};
use clapton_ga::EngineState;
use clapton_pauli::PauliSum;
use clapton_runtime::{
    artifact_slug, Artifact, CancelToken, ClaimOutcome, EventKind, Interrupt, JobContext,
    JobScheduler, LeaseKeeper, RunDirectory, RunEvent, RunManifest, RunRegistry, ScheduledJob,
    WorkerPool,
};
use clapton_sim::{ground_energy, DeviceEvaluator};
use clapton_vqe::{run_vqe, VqeConfig};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Artifact names inside a job's run directory.
const SPEC_ARTIFACT: &str = "spec.json";
const CHECKPOINT_ARTIFACT: &str = "checkpoint.json";
/// The previous round's checkpoint, kept one generation behind
/// [`CHECKPOINT_ARTIFACT`]: if the current checkpoint is torn by a crash
/// mid-write, recovery falls back here and loses at most that one round.
/// On completion the final checkpoint rotates into this slot (instead of
/// being deleted), so even a corrupted `report.json` recovers by replaying
/// from the final round state — bit-identically, since rounds are
/// deterministic.
const CHECKPOINT_PREV_ARTIFACT: &str = "checkpoint.prev.json";
const REPORT_ARTIFACT: &str = "report.json";
const STATE_ARTIFACT: &str = "state.json";

/// Span-log artifact written next to a job's checkpoints: one
/// [`clapton_telemetry::SpanRecord`] JSON object per line, covering the
/// job's whole execution trace. Public so artifact consumers (the server's
/// trace endpoint, post-hoc tooling) share the name.
pub const TELEMETRY_ARTIFACT: &str = "telemetry.jsonl";

/// A persisted terminal state beside a job's artifacts: a job that ended
/// without a report (`cancelled`, or a server-recorded `failed`) leaves this
/// marker so resubmissions and crash-recovery scans see the outcome instead
/// of silently re-running the job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerminalState {
    /// `"cancelled"` or `"failed"`.
    pub state: String,
    /// GA rounds completed before the job ended.
    pub rounds: usize,
    /// Human-readable detail (empty for cancellations).
    pub detail: String,
}

/// The artifact-directory name a job owns under the service's root.
fn job_slug(job: &ResolvedJob) -> String {
    artifact_slug(&format!("{}-seed{}", job.name, job.config.seed))
}

/// The persistent-cache namespace terminal reports are stored under:
/// FNV-1a 64 of a versioned tag, bumped whenever the report schema or the
/// spec-identity serialization changes incompatibly.
fn report_namespace() -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in b"clapton-report-v1" {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The report-tier cache key: the job's spec identity — the canonical spec
/// JSON with the budget cleared, exactly the identity [`prepare_dir`]'s
/// resubmission conflict check compares. Everything that shapes the report
/// (problem, backend, noise, methods, engine, evaluator, seed, VQE refine)
/// is in here; execution policy is not.
fn report_key(job: &ResolvedJob) -> Vec<u8> {
    let mut spec = job.spec.clone();
    spec.budget = None;
    serde_json::to_string(&spec)
        .expect("spec serializes")
        .into_bytes()
}

/// The service front door: one `submit` for every caller.
///
/// A service owns (or shares) a persistent [`WorkerPool`]; every submitted
/// job runs through the [`JobScheduler`] on that pool, so concurrent jobs
/// interleave their population batches fairly instead of queueing behind
/// each other. With an artifact root attached
/// ([`ClaptonService::with_artifacts`]), each job gets its own
/// [`RunDirectory`] holding the submitted spec (`spec.json`), atomic
/// per-round checkpoints, and the final `report.json` — making every run
/// resumable and reproducible from its spec alone, and resubmissions of a
/// completed spec answer from the persisted report.
///
/// # Example
///
/// ```
/// use clapton_service::{ClaptonService, EngineSpec, JobSpec, ProblemSpec, SuiteProblem};
///
/// let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
///     name: "ising(J=0.50)".into(),
///     qubits: 4,
/// }));
/// spec.engine = EngineSpec::Quick;
/// spec.seed = 7;
/// let report = ClaptonService::new().run(spec).unwrap();
/// assert!(report.clapton.is_some() && report.cafqa.is_some());
/// ```
#[derive(Debug)]
pub struct ClaptonService {
    pool: Arc<WorkerPool>,
    artifacts: Option<RunRegistry>,
    cache: Option<Arc<CacheStore>>,
    worker_id: String,
    lease_ttl: Duration,
}

/// The lease parameters an execution path claims job directories with —
/// cloned out of the service so job closures can outlive `&self`.
#[derive(Debug, Clone)]
pub(crate) struct LeasePolicy {
    owner: String,
    ttl: Duration,
}

impl Default for ClaptonService {
    fn default() -> ClaptonService {
        ClaptonService::new()
    }
}

impl ClaptonService {
    /// A service with its own worker pool sized to the machine.
    pub fn new() -> ClaptonService {
        ClaptonService::with_pool(Arc::new(WorkerPool::new()))
    }

    /// A service sharing an existing pool (e.g. with a suite run or other
    /// services in the same process).
    pub fn with_pool(pool: Arc<WorkerPool>) -> ClaptonService {
        ClaptonService {
            pool,
            artifacts: None,
            cache: None,
            worker_id: clapton_runtime::default_worker_id().to_string(),
            lease_ttl: clapton_runtime::DEFAULT_LEASE_TTL,
        }
    }

    /// Overrides the worker identity this service claims job directories
    /// under (default: a per-process id). All services in one process should
    /// share an identity so their leases are re-entrant with each other.
    pub fn with_worker_id(mut self, worker_id: impl Into<String>) -> ClaptonService {
        self.worker_id = worker_id.into();
        self
    }

    /// Overrides the lease TTL (default 30 s): how stale a peer's heartbeat
    /// must be before this service takes its job over.
    pub fn with_lease_ttl(mut self, ttl: Duration) -> ClaptonService {
        self.lease_ttl = ttl;
        self
    }

    /// The worker identity this service claims job directories under.
    pub fn worker_id(&self) -> &str {
        &self.worker_id
    }

    fn lease_policy(&self) -> LeasePolicy {
        LeasePolicy {
            owner: self.worker_id.clone(),
            ttl: self.lease_ttl,
        }
    }

    /// Attaches a persistent artifact root: every job gets a run directory
    /// under it, keyed by job name and seed.
    ///
    /// # Errors
    ///
    /// Fails if the root cannot be created.
    pub fn with_artifacts(
        mut self,
        root: impl Into<PathBuf>,
    ) -> Result<ClaptonService, ClaptonError> {
        self.artifacts = Some(RunRegistry::open(root)?);
        Ok(self)
    }

    /// Attaches a shared persistent result store ([`CacheStore`]): memo
    /// misses in every job's loss evaluation consult it before computing,
    /// computed losses are written back, and completed reports are stored
    /// so an identical spec — resubmitted, or submitted in a later process
    /// — answers without running the search. Results and all reported
    /// statistics are bit-identical with or without the store.
    pub fn with_cache(mut self, cache: Arc<CacheStore>) -> ClaptonService {
        self.cache = Some(cache);
        self
    }

    /// [`ClaptonService::with_cache`] opening the store at the conventional
    /// location under `registry_root` (`<registry_root>/.cache`, which run
    /// listings skip) with default sizing.
    ///
    /// # Errors
    ///
    /// Fails if the store directory cannot be created or scanned.
    pub fn with_cache_under(
        self,
        registry_root: impl AsRef<std::path::Path>,
    ) -> Result<ClaptonService, ClaptonError> {
        let store = CacheStore::open_under_registry(registry_root, CacheConfig::default())?;
        Ok(self.with_cache(Arc::new(store)))
    }

    /// The attached persistent result store, if any.
    pub fn cache(&self) -> Option<&Arc<CacheStore>> {
        self.cache.as_ref()
    }

    /// The shared worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Validates and runs one job synchronously on the calling thread (the
    /// pool still executes the population batches).
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Spec`] on an invalid spec, [`ClaptonError::Io`] on
    /// artifact failures, [`ClaptonError::Suspended`] when a round budget
    /// halted the search before convergence.
    pub fn run(&self, spec: JobSpec) -> Result<Report, ClaptonError> {
        let mut results = self.run_all(vec![spec], None)?;
        results.pop().expect("one job submitted")
    }

    /// Validates and submits one job, returning a [`JobHandle`] streaming
    /// [`RunEvent`]s while the job runs in the background.
    ///
    /// Validation (and the artifact-conflict check) happens synchronously —
    /// a handle is only returned for a job that will actually execute.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Spec`] on an invalid spec, [`ClaptonError::Io`] when
    /// the artifact directory exists but belongs to a different spec.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, ClaptonError> {
        let admitted = self.admit(spec)?;
        let AdmittedJob { job, dir } = admitted;
        let name = job.name.clone();
        let name_for_abort = name.clone();
        let cancel = CancelToken::new();
        let job_cancel = cancel.clone();
        let pool = Arc::clone(&self.pool);
        let lease = self.lease_policy();
        let cache = self.cache.clone();
        let (event_tx, event_rx) = mpsc::channel();
        let (result_tx, result_rx) = mpsc::channel();
        let thread = std::thread::spawn(move || {
            let scheduler = JobScheduler::new(pool);
            let jobs = vec![ScheduledJob::with_cancel(
                job.name.clone(),
                job_cancel,
                |ctx: &JobContext| execute(&job, ctx, dir.as_ref(), &lease, cache.as_ref()),
            )];
            let (mut results, panic) = scheduler.try_run_all(jobs, Some(event_tx));
            let result = results.pop().flatten().unwrap_or_else(|| {
                Err(ClaptonError::JobAborted {
                    job: name_for_abort,
                    detail: panic_text(panic),
                })
            });
            let _ = result_tx.send(result);
        });
        Ok(JobHandle {
            name,
            events: event_rx,
            result: result_rx,
            cancel,
            thread,
        })
    }

    /// Validates `spec` and durably records it (when an artifact root is
    /// attached) *without running anything* — the admission half of
    /// [`ClaptonService::submit`], split out for front ends that queue
    /// admitted jobs and execute them later (the `clapton-server` admission
    /// queue acknowledges a submission only after this returns).
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Spec`] on an invalid spec, [`ClaptonError::Conflict`]
    /// when the job's artifact directory is owned by a different spec.
    pub fn admit(&self, spec: JobSpec) -> Result<AdmittedJob, ClaptonError> {
        let job = spec.validate()?;
        self.check_budget_checkpointable(&job)?;
        let dir = self.prepare_dir(&job)?;
        Ok(AdmittedJob { job, dir })
    }

    /// Runs an admitted job to completion on the calling thread (population
    /// batches still fan out on the shared pool), streaming progress to
    /// `events` and honoring `cancel` at every round boundary.
    ///
    /// # Errors
    ///
    /// Everything [`ClaptonService::run`] can return, plus
    /// [`ClaptonError::Cancelled`] when `cancel` fired and
    /// [`ClaptonError::JobAborted`] when the job body died.
    pub fn execute_admitted(
        &self,
        admitted: &AdmittedJob,
        events: Option<Sender<RunEvent>>,
        cancel: CancelToken,
    ) -> Result<Report, ClaptonError> {
        let AdmittedJob { job, dir } = admitted;
        let lease = self.lease_policy();
        let scheduler = JobScheduler::new(Arc::clone(&self.pool));
        let jobs = vec![ScheduledJob::with_cancel(
            job.name.clone(),
            cancel,
            |ctx: &JobContext| execute(job, ctx, dir.as_ref(), &lease, self.cache.as_ref()),
        )];
        let (mut results, panic) = scheduler.try_run_all(jobs, events);
        match results.pop().flatten() {
            Some(result) => result,
            None => Err(ClaptonError::JobAborted {
                job: job.name.clone(),
                detail: panic_text(panic),
            }),
        }
    }

    /// What the artifact store knows about an admitted job — the queue
    /// introspection hook crash-recovering front ends scan on startup to
    /// decide which persisted jobs still need work. Without an artifact
    /// root every job is [`JobArtifactState::Fresh`].
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Io`] when the artifacts exist but cannot be read.
    pub fn inspect(&self, admitted: &AdmittedJob) -> Result<JobArtifactState, ClaptonError> {
        let Some(dir) = &admitted.dir else {
            return Ok(JobArtifactState::Fresh);
        };
        // Corrupt artifacts are quarantined by `load` and treated as absent
        // here: the scan falls through to the next recovery source instead
        // of failing the whole startup sweep over one torn file.
        if let Artifact::Valid(state) = dir.load::<TerminalState>(STATE_ARTIFACT)? {
            return Ok(match state.state.as_str() {
                "cancelled" => JobArtifactState::Cancelled {
                    rounds: state.rounds,
                },
                _ => JobArtifactState::Failed {
                    detail: state.detail,
                },
            });
        }
        if let Artifact::Valid(report) = dir.load::<Report>(REPORT_ARTIFACT)? {
            return Ok(JobArtifactState::Done(Box::new(report)));
        }
        if dir.exists(CHECKPOINT_ARTIFACT) || dir.exists(CHECKPOINT_PREV_ARTIFACT) {
            return Ok(JobArtifactState::InFlight);
        }
        Ok(JobArtifactState::Fresh)
    }

    /// Persists a terminal `failed` state beside the job's artifacts, so a
    /// later [`ClaptonService::inspect`] (e.g. after a server restart) sees
    /// the failure instead of silently re-running the job. A no-op without
    /// an artifact root.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Io`] when the marker cannot be written.
    pub fn mark_failed(&self, admitted: &AdmittedJob, detail: &str) -> Result<(), ClaptonError> {
        if let Some(dir) = &admitted.dir {
            dir.write_json(
                STATE_ARTIFACT,
                &TerminalState {
                    state: "failed".to_string(),
                    rounds: 0,
                    detail: detail.to_string(),
                },
            )?;
        }
        Ok(())
    }

    /// Answers an admitted job from the persistent result store without
    /// executing anything: a report cached under the job's spec identity
    /// (by this process or any earlier one sharing the store) is
    /// materialized into the job's artifact directory — so `inspect` and
    /// resubmissions see a completed job — and returned. `None` on a cache
    /// miss or without an attached store.
    ///
    /// This is the warm-admission fast path front ends take before
    /// dispatching to the pool.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Io`] when the cached report cannot be persisted.
    pub fn answer_from_cache(
        &self,
        admitted: &AdmittedJob,
    ) -> Result<Option<Report>, ClaptonError> {
        let Some(cache) = &self.cache else {
            return Ok(None);
        };
        let Some(report) = cache.get_json::<Report>(report_namespace(), &report_key(&admitted.job))
        else {
            return Ok(None);
        };
        if let Some(dir) = &admitted.dir {
            // Atomic and value-identical to what any racing worker would
            // write, so no lease is needed for this single artifact.
            dir.write_json(REPORT_ARTIFACT, &report)?;
        }
        Ok(Some(report))
    }

    /// What the shared work queue knows about an admitted job: who (if
    /// anyone) holds its lease, how fresh their heartbeat is, and how many
    /// GA rounds are already banked — the operator-facing status surfaced
    /// by `clapton-client queue` and `suite-runner --status`.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Io`] when the claim or checkpoint cannot be read.
    pub fn lease_view(&self, admitted: &AdmittedJob) -> Result<JobLeaseView, ClaptonError> {
        let Some(dir) = &admitted.dir else {
            return Ok(JobLeaseView::default());
        };
        let lease = clapton_runtime::lease_state(dir.path(), self.lease_ttl)?;
        let (rounds, cache_hits) = match load_checkpoint(dir)? {
            Some(state) => (Some(state.rounds()), Some(state.cache_stats.hits)),
            None => match dir.load::<Report>(REPORT_ARTIFACT)?.valid() {
                Some(report) => (
                    report.clapton.as_ref().map(|c| c.rounds),
                    report.clapton.as_ref().map(|c| c.cache_hits),
                ),
                None => (None, None),
            },
        };
        Ok(JobLeaseView {
            owner: lease.as_ref().map(|s| s.owner.clone()),
            heartbeat_age_ms: lease.as_ref().map(|s| s.heartbeat_age.as_millis() as u64),
            stale: lease.as_ref().map(|s| s.stale),
            rounds,
            cache_hits,
        })
    }

    /// The live peer (a *different* worker with a fresh heartbeat) currently
    /// leasing the job's directory, if any — the check a crash-recovery scan
    /// makes before re-admitting persisted work: a job leased by a live peer
    /// is that peer's to finish.
    ///
    /// # Errors
    ///
    /// [`ClaptonError::Io`] when the claim cannot be read.
    pub fn leased_by_peer(&self, admitted: &AdmittedJob) -> Result<Option<String>, ClaptonError> {
        let Some(dir) = &admitted.dir else {
            return Ok(None);
        };
        Ok(clapton_runtime::lease_state(dir.path(), self.lease_ttl)?
            .filter(|state| !state.stale && state.owner != self.worker_id)
            .map(|state| state.owner))
    }

    /// Validates and runs a batch of jobs concurrently on the shared pool
    /// with fair interleaving, streaming progress to `events`.
    ///
    /// Validation is all-or-nothing: if any spec is invalid, nothing runs.
    /// Per-job execution failures (I/O, budget suspension) come back in the
    /// per-job `Result`s, in submission order.
    ///
    /// # Errors
    ///
    /// The first invalid spec, or an artifact-directory conflict.
    pub fn run_all(
        &self,
        specs: Vec<JobSpec>,
        events: Option<Sender<RunEvent>>,
    ) -> Result<Vec<Result<Report, ClaptonError>>, ClaptonError> {
        let jobs = specs
            .into_iter()
            .map(|spec| spec.validate().map_err(ClaptonError::from))
            .collect::<Result<Vec<ResolvedJob>, ClaptonError>>()?;
        for job in &jobs {
            self.check_budget_checkpointable(job)?;
        }
        // Two jobs in one batch sharing an artifact directory would race on
        // its checkpoint/report files (identical specs pass the resubmission
        // check), so duplicates are rejected up front.
        if self.artifacts.is_some() {
            let mut slugs: Vec<String> = jobs.iter().map(job_slug).collect();
            slugs.sort_unstable();
            if let Some(dup) = slugs.windows(2).find(|w| w[0] == w[1]) {
                return Err(SpecError::InvalidField {
                    field: "specs".to_string(),
                    reason: format!(
                        "two jobs in this batch map to the same artifact directory {:?}; \
                         give them distinct names or seeds",
                        dup[0]
                    ),
                }
                .into());
            }
        }
        let dirs = jobs
            .iter()
            .map(|job| self.prepare_dir(job))
            .collect::<Result<Vec<Option<RunDirectory>>, ClaptonError>>()?;
        let scheduler = JobScheduler::new(Arc::clone(&self.pool));
        let lease = self.lease_policy();
        let scheduled: Vec<ScheduledJob<'_, Result<Report, ClaptonError>>> = jobs
            .iter()
            .zip(&dirs)
            .map(|(job, dir)| {
                let lease = &lease;
                let cache = self.cache.as_ref();
                ScheduledJob::new(job.name.clone(), move |ctx: &JobContext| {
                    execute(job, ctx, dir.as_ref(), lease, cache)
                })
            })
            .collect();
        Ok(scheduler.run_all(scheduled, events))
    }

    /// A round budget only makes sense when there is somewhere to persist
    /// the checkpoint: without an artifact root, a suspended search would be
    /// dropped and every resubmission would restart from round 0 — an
    /// infinite suspend loop, not a resume.
    fn check_budget_checkpointable(&self, job: &ResolvedJob) -> Result<(), ClaptonError> {
        if job.budget.is_some() && self.artifacts.is_none() {
            return Err(SpecError::InvalidField {
                field: "budget".to_string(),
                reason: "a round budget needs an artifact root to checkpoint into; attach one \
                         with ClaptonService::with_artifacts"
                    .to_string(),
            }
            .into());
        }
        Ok(())
    }

    /// Opens (or verifies) the job's run directory: the submitted spec is
    /// persisted on first contact; a resubmission must match it exactly.
    fn prepare_dir(&self, job: &ResolvedJob) -> Result<Option<RunDirectory>, ClaptonError> {
        let Some(registry) = &self.artifacts else {
            return Ok(None);
        };
        let slug = job_slug(job);
        let dir = registry.run(&slug)?;
        // The round budget is execution *policy*, not job identity: a run
        // suspended under `--halt-after-rounds` may be finished by a
        // resubmission with a different (or no) budget, so it is excluded
        // from the conflict check.
        let identity = |spec: &JobSpec| {
            let mut spec = spec.clone();
            spec.budget = None;
            spec
        };
        // A corrupt persisted spec is quarantined and rewritten from the
        // submission: the conflict check cannot be made against garbage,
        // and the round checkpoints (which carry the actual search state)
        // remain authoritative either way.
        match dir.load::<JobSpec>(SPEC_ARTIFACT)? {
            Artifact::Valid(existing) if identity(&existing) != identity(&job.spec) => {
                return Err(ClaptonError::Conflict {
                    run: dir.path().display().to_string(),
                });
            }
            Artifact::Valid(_) => {}
            Artifact::Missing | Artifact::Corrupt { .. } => {
                dir.write_json(SPEC_ARTIFACT, &job.spec)?;
                dir.write_manifest(&RunManifest {
                    jobs: vec![job.name.clone()],
                    seed: job.config.seed,
                    profile: format!("service-v{}", job.spec.version),
                })?;
            }
        }
        Ok(Some(dir))
    }
}

/// A job that passed validation and admission (its spec durably recorded
/// when the service has an artifact root) but has not necessarily run yet.
///
/// Produced by [`ClaptonService::admit`]; consumed by
/// [`ClaptonService::execute_admitted`] / [`ClaptonService::inspect`].
#[derive(Debug)]
pub struct AdmittedJob {
    job: ResolvedJob,
    dir: Option<RunDirectory>,
}

impl AdmittedJob {
    /// The resolved job.
    pub fn job(&self) -> &ResolvedJob {
        &self.job
    }

    /// The job's artifact directory, when the service persists artifacts.
    pub fn artifact_dir(&self) -> Option<&std::path::Path> {
        self.dir.as_ref().map(RunDirectory::path)
    }
}

/// Per-job lease status for operators (see [`ClaptonService::lease_view`]):
/// all fields `None` for an unleased job without banked rounds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobLeaseView {
    /// Worker currently holding the job's lease.
    pub owner: Option<String>,
    /// Milliseconds since the holder's last heartbeat.
    pub heartbeat_age_ms: Option<u64>,
    /// Whether the holder's heartbeat is older than the lease TTL.
    pub stale: Option<bool>,
    /// GA rounds banked in the job's checkpoint (or final report).
    pub rounds: Option<usize>,
    /// Fitness requests the genome → loss memo answered so far (from the
    /// checkpoint while running, the final report once done).
    pub cache_hits: Option<u64>,
}

/// What a job's persisted artifacts say about it (see
/// [`ClaptonService::inspect`]).
#[derive(Debug)]
pub enum JobArtifactState {
    /// No artifacts yet (or no artifact root): the job has all its work
    /// ahead of it.
    Fresh,
    /// A round checkpoint exists but no terminal artifact: the job was
    /// interrupted mid-run and will resume from the checkpoint.
    InFlight,
    /// The job completed; the persisted report.
    Done(Box<Report>),
    /// The job was cancelled after `rounds` rounds (terminal).
    Cancelled {
        /// GA rounds completed before cancellation.
        rounds: usize,
    },
    /// A front end recorded a terminal failure (see
    /// [`ClaptonService::mark_failed`]).
    Failed {
        /// The recorded failure detail.
        detail: String,
    },
}

/// Renders a captured panic payload as text for [`ClaptonError::JobAborted`].
fn panic_text(payload: Option<Box<dyn std::any::Any + Send>>) -> String {
    let Some(payload) = payload else {
        return "job thread died without a panic payload".to_string();
    };
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "job thread panicked (non-string payload)".to_string())
}

/// A submitted background job: stream its events, then wait for the report.
#[derive(Debug)]
pub struct JobHandle {
    name: String,
    events: Receiver<RunEvent>,
    result: Receiver<Result<Report, ClaptonError>>,
    cancel: CancelToken,
    thread: JoinHandle<()>,
}

impl JobHandle {
    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live event stream (disconnects when the job finishes).
    pub fn events(&self) -> &Receiver<RunEvent> {
        &self.events
    }

    /// Requests cooperative cancellation: the job stops at its next round
    /// boundary, persists a terminal `cancelled` state (with an artifact
    /// root), and [`JobHandle::wait`] returns [`ClaptonError::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The job's cancellation token (cloneable, e.g. for a signal handler).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Blocks until the job finishes and returns its report.
    ///
    /// # Errors
    ///
    /// Whatever the job failed with — including [`ClaptonError::Suspended`]
    /// when a round budget halted it, [`ClaptonError::Cancelled`] after
    /// [`JobHandle::cancel`], and [`ClaptonError::JobAborted`] when the job
    /// body died (panicked) before producing a result.
    pub fn wait(self) -> Result<Report, ClaptonError> {
        let died = |detail: String| ClaptonError::JobAborted {
            job: self.name.clone(),
            detail,
        };
        match self.thread.join() {
            Ok(()) => {}
            Err(panic) => return Err(died(panic_text(Some(panic)))),
        }
        match self.result.recv() {
            Ok(result) => result,
            Err(_) => Err(died(
                "job thread exited without sending a result".to_string(),
            )),
        }
    }
}

/// Runs one resolved job on the scheduler-provided context — the shared
/// execution body behind [`ClaptonService::run`], [`ClaptonService::submit`]
/// and the spec-driven suite runner.
///
/// Replicates the legacy `Pipeline::run` evaluation order exactly (every
/// search is deterministic given its seed, so a spec-driven run is
/// bit-identical to the builder path it replaced).
pub(crate) fn execute(
    job: &ResolvedJob,
    ctx: &JobContext,
    dir: Option<&RunDirectory>,
    lease: &LeasePolicy,
    cache: Option<&Arc<CacheStore>>,
) -> Result<Report, ClaptonError> {
    // The job directory is the unit of ownership in the shared work queue:
    // claim it before reading or writing anything inside, so concurrent
    // services (other processes, other hosts) on one registry can never
    // interleave artifact writes. Single-process behavior is unchanged —
    // the claim is always uncontended there.
    let keeper = match dir {
        Some(dir) => match clapton_runtime::acquire(dir.path(), &lease.owner, lease.ttl)? {
            ClaimOutcome::Acquired(held) => Some(LeaseKeeper::spawn(held, lease.ttl / 4)),
            ClaimOutcome::Held {
                owner,
                heartbeat_age,
            } => {
                return Err(ClaptonError::Leased {
                    run: dir.path().display().to_string(),
                    owner,
                    heartbeat_age_ms: heartbeat_age.as_millis() as u64,
                })
            }
        },
        None => None,
    };
    let trace = clapton_telemetry::Trace::begin();
    let result = {
        let _trace_ctx = clapton_telemetry::push_context(trace.context());
        let _job_span = clapton_telemetry::span("job");
        execute_inner(job, ctx, dir, keeper.as_ref(), cache)
    };
    let records = trace.finish();
    if let Some(dir) = dir {
        // Persist the span log beside the job's other artifacts so the
        // trace survives the process (and the server's trace endpoint reads
        // the same tree). A resubmission answered from the persisted report
        // yields only the root span — keep the original run's trace then.
        // Telemetry persistence must never fail a finished job.
        if !records.is_empty() && (records.len() > 1 || !dir.exists(TELEMETRY_ARTIFACT)) {
            let _ = dir.write_text(TELEMETRY_ARTIFACT, &clapton_telemetry::to_jsonl(&records));
        }
    }
    if let Some(keeper) = keeper {
        let _ = keeper.release();
    }
    result
}

/// Loads the newest valid round checkpoint: the current generation when it
/// verifies, else the previous one (current is quarantined by the failed
/// load), else `None` — corruption costs at most one round, and a job with
/// neither checkpoint simply starts from round 0.
fn load_checkpoint(dir: &RunDirectory) -> io::Result<Option<EngineState>> {
    if let Some(state) = dir.load::<EngineState>(CHECKPOINT_ARTIFACT)?.valid() {
        return Ok(Some(state));
    }
    Ok(dir.load::<EngineState>(CHECKPOINT_PREV_ARTIFACT)?.valid())
}

/// The actual job body behind [`execute`], which wraps it in a telemetry
/// trace and persists the span log.
fn execute_inner(
    job: &ResolvedJob,
    ctx: &JobContext,
    dir: Option<&RunDirectory>,
    keeper: Option<&LeaseKeeper>,
    cache: Option<&Arc<CacheStore>>,
) -> Result<Report, ClaptonError> {
    if let Some(dir) = dir {
        // A corrupt report is quarantined and the job falls through to the
        // resume path below: completion rotated the final checkpoint into
        // the `prev` slot, so replaying from it reproduces the report
        // bit-identically.
        if let Artifact::Valid(report) = dir.load::<Report>(REPORT_ARTIFACT)? {
            ctx.emit(EventKind::Finished(
                "already complete (answered from persisted report)".to_string(),
            ));
            return Ok(report);
        }
        // Cancellation is terminal and sticky: a resubmission of a cancelled
        // spec reports the cancellation instead of silently restarting the
        // search (remove the run directory to truly start over).
        if let Artifact::Valid(state) = dir.load::<TerminalState>(STATE_ARTIFACT)? {
            if state.state == "cancelled" {
                ctx.emit(EventKind::Cancelled(state.rounds));
                return Err(ClaptonError::Cancelled {
                    rounds: state.rounds,
                });
            }
        }
    }
    // The report tier of the persistent store: a spec already solved — by
    // this process or any earlier one sharing the store — answers without
    // running anything. Persisting the report into the job's directory
    // keeps artifacts consistent with a computed run.
    if let Some(cache) = cache {
        if let Some(report) = cache.get_json::<Report>(report_namespace(), &report_key(job)) {
            if let Some(dir) = dir {
                dir.write_json(REPORT_ARTIFACT, &report)?;
            }
            ctx.emit(EventKind::Finished(
                "already solved (answered from persistent cache)".to_string(),
            ));
            return Ok(report);
        }
    }
    let h = &job.hamiltonian;
    let exec = &job.exec;
    let config = &job.config;
    let e0 = ground_energy(h);
    let cafqa = job.runs(&MethodSpec::Cafqa).then(|| {
        let _span = clapton_telemetry::span("cafqa");
        run_cafqa(h, exec, &config.engine, config.seed)
    });
    let ncafqa = job.runs(&MethodSpec::Ncafqa).then(|| {
        let _span = clapton_telemetry::span("ncafqa");
        run_ncafqa(h, exec, &config.engine, config.evaluator, config.seed)
    });
    let clapton = if job.runs(&MethodSpec::Clapton) {
        let resume = match dir {
            Some(dir) => load_checkpoint(dir)?,
            None => None,
        };
        // The budget counts rounds per submission (matching the suite
        // runner's `--halt-after-rounds` semantics): each resubmission gets
        // a fresh allowance and continues from the persisted checkpoint.
        let mut remaining = job.budget.map(|b| b as i64);
        let mut checkpoint_error: Option<io::Error> = None;
        let mut cancelled = false;
        let _clapton_span = clapton_telemetry::span("clapton");
        let mut round_started = clapton_telemetry::mono_ns();
        // The loss tier of the persistent store: memo misses inside the GA
        // consult it before computing, and computed losses are written back
        // — so even a *partially* overlapping search (different seed or
        // engine effort over the same objective) answers from disk.
        let store = cache.map(|c| Arc::clone(c) as Arc<dyn LossStore>);
        let (state, result) = run_clapton_resumable_with_store(
            h,
            exec,
            config,
            Some(ctx.pool()),
            store,
            resume,
            &mut |state| {
                let round_ended = clapton_telemetry::mono_ns();
                clapton_telemetry::record_complete("round", round_started, round_ended);
                round_started = round_ended;
                if let Some(dir) = dir {
                    // Rotating keeps the previous round's checkpoint valid
                    // while this one is in flight: a torn write costs one
                    // round, never the run.
                    if let Err(e) = dir.write_json_rotating(
                        CHECKPOINT_ARTIFACT,
                        CHECKPOINT_PREV_ARTIFACT,
                        state,
                    ) {
                        checkpoint_error = Some(e);
                        return false;
                    }
                    ctx.emit(EventKind::Checkpointed(state.rounds()));
                }
                if let Some(best) = &state.global_best {
                    ctx.emit(EventKind::Round(state.rounds(), best.loss));
                }
                // The cooperative interruption point: the round's checkpoint
                // is already durable, so stopping here either suspends
                // resumably or cancels terminally — never mid-round.
                match ctx.interrupt() {
                    Interrupt::Cancel => {
                        cancelled = true;
                        if let Some(dir) = dir {
                            if let Err(e) = dir.write_json(
                                STATE_ARTIFACT,
                                &TerminalState {
                                    state: "cancelled".to_string(),
                                    rounds: state.rounds(),
                                    detail: String::new(),
                                },
                            ) {
                                checkpoint_error = Some(e);
                            }
                        }
                        return false;
                    }
                    Interrupt::Suspend => return false,
                    Interrupt::None => {}
                }
                // A peer judged us dead and stole the lease: stop writing
                // into a directory we no longer own. The round checkpoint
                // just written is byte-identical to what the thief resumes
                // from, so standing down loses nothing.
                if keeper.is_some_and(LeaseKeeper::lost) {
                    return false;
                }
                match &mut remaining {
                    Some(r) => {
                        *r -= 1;
                        *r > 0
                    }
                    None => true,
                }
            },
        );
        if let Some(e) = checkpoint_error {
            return Err(e.into());
        }
        match result {
            Some(clapton) => Some(clapton),
            None if cancelled => {
                ctx.emit(EventKind::Cancelled(state.rounds()));
                return Err(ClaptonError::Cancelled {
                    rounds: state.rounds(),
                });
            }
            None => {
                ctx.emit(EventKind::Suspended(state.rounds()));
                return Err(ClaptonError::Suspended {
                    rounds: state.rounds(),
                });
            }
        }
    } else {
        None
    };
    let device_energy = |h: &PauliSum, theta: &[f64]| {
        DeviceEvaluator::run(&exec.circuit(theta), exec.noise_model())
            .energy(&exec.map_hamiltonian(h))
    };
    let zeros = vec![0.0; exec.ansatz().num_parameters()];
    let cafqa_initial_energy = cafqa.as_ref().map(|c| device_energy(h, &c.theta));
    let ncafqa_initial_energy = ncafqa.as_ref().map(|c| device_energy(h, &c.theta));
    let clapton_initial_energy = clapton
        .as_ref()
        .map(|c| device_energy(&c.transformation.transformed, &zeros));
    let baseline = cafqa_initial_energy.or(ncafqa_initial_energy);
    let eta_initial = match (baseline, clapton_initial_energy) {
        (Some(base), Some(init)) => Some(clapton_core::relative_improvement(e0, base, init)),
        _ => None,
    };
    let (clapton_vqe, cafqa_vqe, ncafqa_vqe) = match job.vqe_iterations() {
        Some(iters) => {
            let _span = clapton_telemetry::span("vqe");
            let vqe_config = VqeConfig::new(iters);
            (
                clapton
                    .as_ref()
                    .map(|c| run_vqe(&c.transformation.transformed, exec, &zeros, &vqe_config)),
                cafqa
                    .as_ref()
                    .map(|c| run_vqe(h, exec, &c.theta, &vqe_config)),
                ncafqa
                    .as_ref()
                    .map(|c| run_vqe(h, exec, &c.theta, &vqe_config)),
            )
        }
        None => (None, None, None),
    };
    let report = Report {
        name: job.name.clone(),
        e0,
        cafqa,
        ncafqa,
        clapton,
        cafqa_initial_energy,
        ncafqa_initial_energy,
        clapton_initial_energy,
        eta_initial,
        clapton_vqe,
        cafqa_vqe,
        ncafqa_vqe,
    };
    if let Some(dir) = dir {
        dir.write_json(REPORT_ARTIFACT, &report)?;
        // The final checkpoint rotates into the `prev` slot instead of being
        // deleted: if the report is ever torn or garbled, recovery replays
        // from the final round state and reproduces it bit-identically.
        dir.rotate(CHECKPOINT_ARTIFACT, CHECKPOINT_PREV_ARTIFACT)?;
    }
    if let Some(cache) = cache {
        // Terminal reports enter the store, and everything buffered (this
        // report plus the job's computed losses) goes durable in one flush.
        cache.put_json(report_namespace(), &report_key(job), &report);
        cache.flush().map_err(ClaptonError::from)?;
    }
    ctx.emit(EventKind::Finished(match &report.clapton {
        Some(c) => format!("clapton loss {:.6} in {} rounds", c.loss, c.rounds),
        None => "complete".to_string(),
    }));
    Ok(report)
}
