//! The unified, serializable result of a service job.

use clapton_core::{CafqaResult, ClaptonResult};
use clapton_vqe::VqeTrace;
use serde::{Deserialize, Serialize};

/// Everything one job produced, across all four methods — the single result
/// shape every entry point (builder, CLI, artifact directory) reads back.
///
/// Sections for methods the spec did not request are `None`; requested
/// sections are always populated. The whole report round-trips through JSON
/// bit-identically, so `report.json` artifacts are as authoritative as the
/// in-memory value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The job's display name (from the spec).
    pub name: String,
    /// Exact ground energy `E0` of the problem.
    pub e0: f64,
    /// CAFQA baseline search result.
    pub cafqa: Option<CafqaResult>,
    /// Noise-aware CAFQA search result.
    pub ncafqa: Option<CafqaResult>,
    /// Clapton search result (transformation included).
    pub clapton: Option<ClaptonResult>,
    /// Device-model energy of the CAFQA initial point.
    pub cafqa_initial_energy: Option<f64>,
    /// Device-model energy of the nCAFQA initial point.
    pub ncafqa_initial_energy: Option<f64>,
    /// Device-model energy of the Clapton initial point (θ = 0 on `Ĥ`).
    pub clapton_initial_energy: Option<f64>,
    /// η of Clapton over the CAFQA-family baseline at the initial point
    /// (Eq. 14; CAFQA when run, else nCAFQA).
    pub eta_initial: Option<f64>,
    /// VQE trace from the Clapton start (when `VqeRefine` was requested).
    pub clapton_vqe: Option<VqeTrace>,
    /// VQE trace from the CAFQA start (when `VqeRefine` was requested).
    pub cafqa_vqe: Option<VqeTrace>,
    /// VQE trace from the nCAFQA start (when `VqeRefine` was requested).
    pub ncafqa_vqe: Option<VqeTrace>,
}

impl Report {
    /// The best device-model energy any requested method reached at its
    /// initial point (VQE refinement endpoints included when present).
    pub fn best_energy(&self) -> Option<f64> {
        [
            self.cafqa_initial_energy,
            self.ncafqa_initial_energy,
            self.clapton_initial_energy,
            self.clapton_vqe.as_ref().map(|t| t.final_energy),
            self.cafqa_vqe.as_ref().map(|t| t.final_energy),
            self.ncafqa_vqe.as_ref().map(|t| t.final_energy),
        ]
        .into_iter()
        .flatten()
        .fold(None, |best: Option<f64>, e| {
            Some(best.map_or(e, |b| b.min(e)))
        })
    }
}
