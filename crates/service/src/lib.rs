//! The declarative front door of the Clapton stack: [`JobSpec`] +
//! [`ClaptonService`].
//!
//! Before this layer, there were three divergent ways into the engine — the
//! `Pipeline` builder, the free functions (`run_clapton` / `run_cafqa` /
//! `run_ncafqa` / `run_vqe`), and the suite-runner CLI — each hand-wiring
//! backends, noise models, and engine configs, with panics and
//! `Result<_, String>` at the edges. Following the declarative tradition of
//! answer-set front ends (a serializable problem statement, fully decoupled
//! from the solver), this crate makes one validated, serde-round-trippable
//! request type the API every caller compiles down to:
//!
//! * [`JobSpec`] — problem (registry name or explicit terms), backend
//!   (registry name or logical), noise, methods, engine effort, evaluator,
//!   seed, and budget. Versioned; unknown JSON fields are ignored.
//! * [`JobSpec::validate`] — the single gate turning a spec into a
//!   [`ResolvedJob`], replacing scattered panics with typed
//!   [`SpecError`]s.
//! * [`ClaptonService`] — `submit(JobSpec) -> JobHandle` on the shared
//!   [`WorkerPool`](clapton_runtime::WorkerPool)/`JobScheduler`, with
//!   streamed [`RunEvent`](clapton_runtime::RunEvent)s, per-job run
//!   directories (the spec persisted beside the artifacts, checkpoints
//!   every round), and a unified serializable [`Report`].
//!
//! A spec JSON as small as
//!
//! ```json
//! {"problem": {"Suite": {"name": "ising(J=0.50)", "qubits": 10}}, "seed": 7}
//! ```
//!
//! is a complete job; everything else defaults. The `Pipeline` builder and
//! the suite-runner CLI are now thin layers that compile to this type.

mod report;
mod service;
mod spec;

pub use clapton_cache::{CacheConfig, CacheStore, CacheStoreStats, CACHE_DIR_NAME};
pub use clapton_error::{ClaptonError, SpecError};
pub use report::Report;
pub use service::{
    AdmittedJob, ClaptonService, JobArtifactState, JobHandle, JobLeaseView, TerminalState,
    TELEMETRY_ARTIFACT,
};
pub use spec::{
    BackendSpec, EngineSpec, ExplicitNoise, JobSpec, MethodSpec, NamedBackend, NoiseSpec,
    ProblemSpec, ResolvedJob, SuiteProblem, TermsProblem, UniformNoise, VqeRefineSpec,
    SPEC_VERSION,
};
