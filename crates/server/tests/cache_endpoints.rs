//! The persistent result store over the wire: `GET`/`DELETE /v1/cache`,
//! warm admission answering a solved spec across a server restart without
//! touching the pool, and the cache metrics on `/metrics`.

use clapton_server::client::Client;
use clapton_server::{Server, ServerConfig, ServerHandle};
use clapton_service::{EngineSpec, JobSpec, NoiseSpec, ProblemSpec, SuiteProblem, UniformNoise};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-cache-srv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind server");
    let handle = server.handle();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));
    (handle, serve)
}

fn stop(handle: ServerHandle, serve: std::thread::JoinHandle<()>) {
    handle.drain();
    serve.join().expect("serve thread");
}

#[test]
fn warm_admission_answers_across_restart_and_flush_forgets() {
    let root = scratch("warm");

    // Life 1: solve the spec cold; its report and losses enter the store.
    let (handle, serve) = start(ServerConfig::new(&root));
    let client = Client::new(handle.local_addr().to_string());
    let submitted = client.submit(&spec_json(&quick_spec(21))).expect("submit");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = submitted.job().unwrap().id;
    let done = client.wait(&id, Duration::from_secs(120)).expect("done");
    let cold_report = done.report.expect("report");
    let stats = client.cache_stats().expect("cache stats");
    assert!(
        stats.entries > 0,
        "solved spec entered the store: {stats:?}"
    );
    stop(handle, serve);

    // Delete the job's artifacts: only the store remembers the answer now.
    let job_dir = root.join("artifacts").join("ising-J-0.50-seed21");
    std::fs::remove_dir_all(&job_dir).expect("remove job artifacts");

    // Life 2: the same spec answers 200 immediately — warm admission, no
    // queue slot, no dispatcher time.
    let (handle, serve) = start(ServerConfig::new(&root));
    let client = Client::new(handle.local_addr().to_string());
    let warm = client.submit(&spec_json(&quick_spec(21))).expect("submit");
    assert_eq!(
        warm.status, 200,
        "warm spec answers at admission: {}",
        warm.body
    );
    let warm_body = warm.job().unwrap();
    assert_eq!(warm_body.state, "done");
    assert_eq!(warm_body.report.expect("warm report"), cold_report);
    let stats = client.cache_stats().expect("cache stats");
    assert!(stats.hits > 0, "warm admission hit the store: {stats:?}");

    // The cache counters are on the exposition surface.
    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("clapton_cache_hits_total"),
        "cache counters exported"
    );

    // Flush: the store forgets, and a resubmission (artifacts gone too)
    // queues for real work again.
    let cleared = client.cache_flush().expect("flush");
    assert!(cleared > 0, "flush reported dropped entries");
    assert_eq!(client.cache_stats().expect("stats").entries, 0);
    std::fs::remove_dir_all(&job_dir).expect("remove rematerialized artifacts");
    let cold_again = client.submit(&spec_json(&quick_spec(21))).expect("submit");
    assert_eq!(cold_again.status, 202, "{}", cold_again.body);
    let id = cold_again.job().unwrap().id;
    let redone = client.wait(&id, Duration::from_secs(120)).expect("done");
    assert_eq!(
        redone.report.expect("recomputed report"),
        cold_report,
        "recomputation is bit-identical"
    );

    // Method checks: cache path rejects what it should.
    let bad = client.request("POST", "/v1/cache", None).expect("request");
    assert_eq!(bad.status, 405);

    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}
