//! Robustness surface of the HTTP layer: socket timeouts (408), liveness /
//! readiness over a drain, client retry with backoff, and recovery from a
//! corrupted durable queue record.

use clapton_server::client::Client;
use clapton_server::{Server, ServerConfig, ServerHandle};
use clapton_service::{EngineSpec, JobSpec, NoiseSpec, ProblemSpec, SuiteProblem, UniformNoise};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-robust-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind server");
    let handle = server.handle();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));
    (handle, serve)
}

fn stop(handle: ServerHandle, serve: std::thread::JoinHandle<()>) {
    handle.drain();
    serve.join().expect("serve thread");
}

#[test]
fn stalled_connections_time_out_with_408() {
    let root = scratch("stall");
    let mut config = ServerConfig::new(&root);
    config.request_timeout = Duration::from_millis(200);
    let (handle, serve) = start(config);

    // A slow-loris peer: opens the connection, sends half a request line,
    // and stalls. The server must answer 408 instead of pinning the
    // connection thread forever.
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(b"GET /healthz HTT").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "expected a request timeout, got {response:?}"
    );

    // The same server still answers a well-formed request afterwards.
    let health = Client::new(handle.local_addr().to_string())
        .health()
        .unwrap();
    assert!(health.ok && health.ready);
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn healthz_reports_ready_until_a_drain_begins() {
    let root = scratch("healthz");
    let (handle, serve) = start(ServerConfig::new(&root));
    let client = Client::new(handle.local_addr().to_string());

    let health = client.health().unwrap();
    assert!(health.ok && health.ready, "fresh server is live and ready");
    let response = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(response.status, 200);

    // Readiness flips the moment shutdown begins, while the socket keeps
    // answering — a load balancer sees 503 and stops routing, but nothing
    // in flight is cut off.
    handle.begin_shutdown();
    let health = client.health().unwrap();
    assert!(health.ok, "still live during the drain");
    assert!(!health.ready, "not ready during the drain");
    let response = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(response.status, 503);

    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn client_retries_ride_out_a_late_binding_server() {
    let root = scratch("retry");
    // Reserve a port, release it, and bind the real server there shortly
    // after the client has started retrying into the refused connection.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");

    let eager = Client::new(&addr);
    assert!(
        eager.health().is_err(),
        "without retries a refused connection fails immediately"
    );

    let root_clone = root.clone();
    let addr_clone = addr.clone();
    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let mut config = ServerConfig::new(&root_clone);
        config.addr = addr_clone;
        start(config)
    });

    let patient = Client::new(&addr).with_retries(8, Duration::from_millis(50));
    let health = patient
        .health()
        .expect("retries outlast the refused window");
    assert!(health.ok && health.ready);

    let (handle, serve) = server.join().unwrap();
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_queue_record_is_quarantined_and_the_job_survives_in_artifacts() {
    let root = scratch("queue-corrupt");
    let (handle, serve) = start(ServerConfig::new(&root));
    let client = Client::new(handle.local_addr().to_string());
    let spec_json = serde_json::to_string(&quick_spec(41)).unwrap();
    let submitted = client.submit(&spec_json).unwrap();
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = submitted.job().unwrap().id;
    let first = client.wait(&id, Duration::from_secs(120)).unwrap();
    let first_report = serde_json::to_string(&first.report.expect("report")).unwrap();
    stop(handle, serve);

    // Garble the durable queue record in place (length preserved — only
    // the envelope checksum can catch it).
    let record = root.join("queue").join(format!("{id}.json"));
    let mut bytes = std::fs::read(&record).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 8).min(bytes.len());
    for byte in &mut bytes[mid..end] {
        *byte ^= 0x5a;
    }
    std::fs::write(&record, bytes).unwrap();

    // The next life starts cleanly: the bad record is quarantined, not
    // parsed, and the job's artifacts still answer a resubmission with the
    // identical report.
    let (handle, serve) = start(ServerConfig::new(&root));
    let quarantines = std::fs::read_dir(root.join("queue"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.contains(".corrupt-"))
        })
        .count();
    assert_eq!(quarantines, 1, "corrupt record quarantined on recovery");

    let client = Client::new(handle.local_addr().to_string());
    let resubmitted = client.submit(&spec_json).unwrap();
    // 200, not 202: the persisted report answers the resubmission
    // synchronously — the corrupt queue record cost nothing but itself.
    assert_eq!(resubmitted.status, 200, "{}", resubmitted.body);
    let again = resubmitted.job().unwrap();
    assert_eq!(
        serde_json::to_string(&again.report.expect("report")).unwrap(),
        first_report,
        "artifacts answered the resubmission byte-identically"
    );
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}
