//! Out-of-process durability tests against the real `clapton-server`
//! binary: a SIGKILL'd server restarted on the same root re-admits its
//! queue and resumes in-flight jobs from their round checkpoints; a
//! SIGTERM'd server drains gracefully and exits 0. In both lives, the
//! report the client finally receives must be byte-identical to an
//! uninterrupted in-process `ClaptonService::run` of the same spec.

use clapton_server::client::Client;
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, SuiteProblem,
    UniformNoise,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clapton-crash-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Long enough to survive a mid-run kill (many round boundaries), short
/// enough to finish in a few seconds: `max_retry_rounds > max_rounds`
/// prevents early convergence, so the search runs all 20 rounds.
fn medium_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec.engine = EngineSpec::Custom(clapton_ga::MultiGaConfig {
        instances: 2,
        top_k: 4,
        max_retry_rounds: 200,
        max_rounds: 20,
        pool_fraction: 0.5,
        parallel: false,
        ga: clapton_ga::GaConfig {
            population_size: 24,
            generations: 12,
            ..clapton_ga::GaConfig::default()
        },
    });
    spec.methods = vec![MethodSpec::Clapton];
    spec
}

fn spawn_server(root: &Path, port_file: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_clapton-server"))
        .args([
            "--root",
            root.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--dispatchers",
            "1",
            "--pool-workers",
            "2",
            "--drain-timeout",
            "0",
            // Short lease TTL: a SIGKILL'd life cannot release its claim,
            // so the restarted server must wait out the TTL before taking
            // the job over — keep that wait to seconds, not the default 30.
            "--lease-ttl",
            "2",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn clapton-server")
}

fn await_port(port_file: &Path) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never wrote {port_file:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn await_file(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !path.is_file() {
        assert!(Instant::now() < deadline, "{path:?} never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn await_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(Instant::now() < deadline, "server did not exit");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_restart_resumes_bit_identically() {
    let spec = medium_spec(31);
    let reference = ClaptonService::new().run(spec.clone()).expect("reference");
    let root = scratch("sigkill");
    std::fs::create_dir_all(&root).unwrap();

    // First life: accept the job, checkpoint at least one round, die hard.
    let port_file = root.join("port-1");
    let mut first = spawn_server(&root, &port_file);
    let client = Client::new(format!("127.0.0.1:{}", await_port(&port_file))).with_tenant("t");
    let submitted = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect("submit");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = submitted.job().unwrap().id;
    await_file(
        &root
            .join("artifacts")
            .join("ising-J-0.50-seed31")
            .join("checkpoint.json"),
    );
    first.kill().expect("SIGKILL");
    let _ = first.wait();

    // The durable queue record survived the kill.
    assert!(
        root.join("queue").join(format!("{id}.json")).is_file(),
        "queue record survives SIGKILL"
    );

    // Second life: same root, fresh port. Recovery must re-admit the job
    // under its original id and resume from the checkpoint.
    let port_file = root.join("port-2");
    let mut second = spawn_server(&root, &port_file);
    let client = Client::new(format!("127.0.0.1:{}", await_port(&port_file))).with_tenant("t");
    let job = client.wait(&id, Duration::from_secs(300)).expect("resumed");
    assert_eq!(job.state, "done", "{job:?}");
    let served = job.report.expect("done jobs carry the report");
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "report after kill + restart + resume must be byte-identical to an \
         uninterrupted run"
    );

    // Terminate the second life politely; it has nothing in flight.
    send_sigterm(&second);
    assert!(await_exit(&mut second).success(), "clean drain exits 0");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sigterm_drains_suspends_and_next_life_finishes_the_job() {
    let spec = medium_spec(37);
    let reference = ClaptonService::new().run(spec.clone()).expect("reference");
    let root = scratch("sigterm");
    std::fs::create_dir_all(&root).unwrap();

    // First life: job checkpoints, then SIGTERM. --drain-timeout 0 means
    // the drain suspends the job at its next round boundary instead of
    // waiting for completion — and still exits 0.
    let port_file = root.join("port-1");
    let mut first = spawn_server(&root, &port_file);
    let client = Client::new(format!("127.0.0.1:{}", await_port(&port_file))).with_tenant("t");
    let submitted = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect("submit");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = submitted.job().unwrap().id;
    await_file(
        &root
            .join("artifacts")
            .join("ising-J-0.50-seed37")
            .join("checkpoint.json"),
    );
    send_sigterm(&first);
    let status = await_exit(&mut first);
    assert!(status.success(), "graceful drain exits 0, got {status:?}");

    // No terminal artifact was written: the job is suspended, not dead.
    let dir = root.join("artifacts").join("ising-J-0.50-seed37");
    assert!(!dir.join("report.json").exists(), "job did not finish");
    assert!(
        !dir.join("state.json").exists(),
        "suspension is not terminal"
    );
    assert!(dir.join("checkpoint.json").is_file(), "checkpoint retained");

    // Second life: the job resumes and completes bit-identically.
    let port_file = root.join("port-2");
    let mut second = spawn_server(&root, &port_file);
    let client = Client::new(format!("127.0.0.1:{}", await_port(&port_file))).with_tenant("t");
    let job = client.wait(&id, Duration::from_secs(300)).expect("resumed");
    assert_eq!(job.state, "done", "{job:?}");
    assert_eq!(
        serde_json::to_string(&job.report.unwrap()).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "suspend-at-drain + resume must be byte-identical to an uninterrupted run"
    );
    send_sigterm(&second);
    assert!(await_exit(&mut second).success());
    let _ = std::fs::remove_dir_all(&root);
}

fn send_sigterm(child: &Child) {
    let delivered = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(delivered, "SIGTERM delivered");
}
