//! In-process loopback tests: real sockets, real dispatchers, one process.
//!
//! Covers the admission-control contract (fair-share dispatch order,
//! bounded-queue and rate-limit shedding with `Retry-After`), mid-run
//! cooperative cancellation, idempotent resubmission, and the served
//! report's byte-identity with an in-process `ClaptonService::run`.

use clapton_server::client::Client;
use clapton_server::{AdmissionConfig, Server, ServerConfig, ServerHandle};
use clapton_service::{
    ClaptonService, EngineSpec, JobSpec, MethodSpec, NoiseSpec, ProblemSpec, SuiteProblem,
    UniformNoise,
};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

/// A spec that reliably spans many GA round boundaries (cannot converge
/// before `max_rounds`), giving cancellation and crash tests their window.
fn long_spec(seed: u64) -> JobSpec {
    let mut spec = quick_spec(seed);
    spec.engine = EngineSpec::Custom(clapton_ga::MultiGaConfig {
        instances: 2,
        top_k: 4,
        max_retry_rounds: 200,
        max_rounds: 120,
        pool_fraction: 0.5,
        parallel: false,
        ga: clapton_ga::GaConfig {
            population_size: 24,
            generations: 12,
            ..clapton_ga::GaConfig::default()
        },
    });
    spec.methods = vec![MethodSpec::Clapton];
    spec
}

fn spec_json(spec: &JobSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

/// Starts a server on a loopback port and returns (handle, serve-thread).
fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind server");
    let handle = server.handle();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));
    (handle, serve)
}

fn stop(handle: ServerHandle, serve: std::thread::JoinHandle<()>) {
    handle.drain();
    serve.join().expect("serve thread");
}

#[test]
fn fair_share_interleaves_two_tenants_bursts() {
    let root = scratch("fair-share");
    let mut config = ServerConfig::new(&root);
    config.dispatchers = 1;
    let (handle, serve) = start(config);
    let addr = handle.local_addr().to_string();
    let alice = Client::new(&addr).with_tenant("alice");
    let bob = Client::new(&addr).with_tenant("bob");

    // A plug job occupies the single dispatcher so the whole two-tenant
    // burst is queued before fair-share ordering gets to act on it.
    let plug = alice
        .submit(&spec_json(&long_spec(99)))
        .expect("submit plug");
    assert_eq!(plug.status, 202);
    let plug_id = plug.job().unwrap().id;

    // alice dumps her burst first, bob second — FIFO would run all of
    // alice's jobs before bob's.
    let mut ids: Vec<(String, String)> = Vec::new();
    for seed in 0..3 {
        let r = alice.submit(&spec_json(&quick_spec(seed))).expect("submit");
        assert_eq!(r.status, 202, "{}", r.body);
        ids.push(("alice".to_string(), r.job().unwrap().id));
    }
    for seed in 10..13 {
        let r = bob.submit(&spec_json(&quick_spec(seed))).expect("submit");
        assert_eq!(r.status, 202, "{}", r.body);
        ids.push(("bob".to_string(), r.job().unwrap().id));
    }
    // Unplug: cancel the long job; the dispatcher then drains the burst.
    alice.cancel(&plug_id).expect("cancel plug");
    for (_, id) in &ids {
        alice.wait(id, Duration::from_secs(120)).expect("job done");
    }
    // Dispatch order alternates tenants: alice, bob, alice, bob, …
    let mut order: Vec<(u64, String)> = ids
        .iter()
        .map(|(tenant, id)| {
            let job = alice.status(id).unwrap().job().unwrap();
            (job.dispatch_seq.expect("dispatched"), tenant.clone())
        })
        .collect();
    order.sort();
    let tenants: Vec<&str> = order.iter().map(|(_, t)| t.as_str()).collect();
    // The plug already advanced alice's virtual time, so bob leads; from
    // there equal weights alternate strictly. Plain FIFO would have run
    // alice's entire burst first.
    assert_eq!(
        tenants,
        vec!["bob", "alice", "bob", "alice", "bob", "alice"],
        "equal-weight tenants alternate in dispatch order: {order:?}"
    );

    // The queue endpoint accounts for both tenants.
    let queue = alice.queue().expect("queue stats");
    assert_eq!(queue.depth, 0);
    assert!(queue.accepting);
    let by_name: Vec<(&str, u64)> = queue
        .tenants
        .iter()
        .map(|t| (t.tenant.as_str(), t.completed))
        .collect();
    assert_eq!(
        by_name,
        vec![("alice", 4), ("bob", 3)],
        "{:?}",
        queue.tenants
    );
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn full_queue_and_rate_limits_shed_with_retry_after() {
    let root = scratch("shed");
    let mut config = ServerConfig::new(&root);
    config.dispatchers = 0; // admission-only: nothing ever leaves the queue
    config.admission = AdmissionConfig {
        queue_depth: 2,
        ..AdmissionConfig::default()
    };
    let (handle, serve) = start(config);
    let client = Client::new(handle.local_addr().to_string()).with_tenant("t");
    for seed in 0..2 {
        let r = client.submit(&spec_json(&quick_spec(seed))).unwrap();
        assert_eq!(r.status, 202, "{}", r.body);
    }
    let full = client.submit(&spec_json(&quick_spec(2))).unwrap();
    assert_eq!(full.status, 429);
    assert!(
        full.header("retry-after").is_some(),
        "429 carries Retry-After: {:?}",
        full.headers
    );
    assert!(full.error().unwrap().contains("queue full"));
    // The two accepted jobs are still visible and queued.
    let queue = client.queue().unwrap();
    assert_eq!((queue.depth, queue.capacity), (2, 2));
    stop(handle, serve);

    // A separate server with a dry token bucket sheds by tenant.
    let root2 = scratch("rate");
    let mut config = ServerConfig::new(&root2);
    config.dispatchers = 0;
    config.admission = AdmissionConfig {
        rate: 0.01,
        burst: 1.0,
        ..AdmissionConfig::default()
    };
    let (handle, serve) = start(config);
    let addr = handle.local_addr().to_string();
    let greedy = Client::new(&addr).with_tenant("greedy");
    let polite = Client::new(&addr).with_tenant("polite");
    assert_eq!(
        greedy.submit(&spec_json(&quick_spec(0))).unwrap().status,
        202
    );
    let limited = greedy.submit(&spec_json(&quick_spec(1))).unwrap();
    assert_eq!(limited.status, 429);
    let retry_after: u64 = limited
        .header("retry-after")
        .expect("Retry-After present")
        .parse()
        .expect("Retry-After is seconds");
    assert!(retry_after >= 1, "bucket refills at 0.01/s");
    // The bucket is per tenant: another tenant is unaffected.
    assert_eq!(
        polite.submit(&spec_json(&quick_spec(2))).unwrap().status,
        202
    );
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&root2);
}

#[test]
fn cancel_mid_run_persists_and_stops_checkpointing() {
    let root = scratch("cancel");
    let mut config = ServerConfig::new(&root);
    config.dispatchers = 1;
    let (handle, serve) = start(config);
    let client = Client::new(handle.local_addr().to_string()).with_tenant("t");
    let spec = long_spec(13);
    let submitted = client.submit(&spec_json(&spec)).unwrap();
    assert_eq!(submitted.status, 202);
    let id = submitted.job().unwrap().id;

    // Wait for the first durable round checkpoint, then cancel.
    let checkpoint = root
        .join("artifacts")
        .join("ising-J-0.50-seed13")
        .join("checkpoint.json");
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !checkpoint.is_file() {
        assert!(
            std::time::Instant::now() < deadline,
            "job never checkpointed"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let cancelled = client.cancel(&id).unwrap();
    assert!(
        cancelled.status == 200 || cancelled.status == 202,
        "{} {}",
        cancelled.status,
        cancelled.body
    );
    let job = client.wait(&id, Duration::from_secs(60)).unwrap();
    assert_eq!(job.state, "cancelled");
    let rounds = job.rounds.expect("cancelled jobs report rounds");
    assert!(rounds < 120, "cancellation interrupted the search");

    // Terminal state is persisted, and no further checkpoints appear.
    let state_file = root
        .join("artifacts")
        .join("ising-J-0.50-seed13")
        .join("state.json");
    assert!(state_file.is_file(), "terminal state persisted");
    let frozen = std::fs::read(&checkpoint).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        std::fs::read(&checkpoint).unwrap(),
        frozen,
        "no checkpoints written after cancellation"
    );

    // The event stream ends with the cancellation event.
    let events = client.events(&id).unwrap();
    assert!(events.last().unwrap().contains("Cancelled"), "{events:?}");
    // Sticky: resubmitting the cancelled spec reports the cancellation.
    let again = client.submit(&spec_json(&spec)).unwrap();
    assert_eq!(again.status, 200, "{}", again.body);
    let body = again.job().unwrap();
    assert_eq!(body.state, "cancelled");
    assert_eq!(body.rounds, Some(rounds));
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn served_reports_are_byte_identical_to_in_process_runs() {
    let root = scratch("identity");
    let (handle, serve) = start(ServerConfig::new(&root));
    let client = Client::new(handle.local_addr().to_string()).with_tenant("t");
    let spec = quick_spec(21);
    let id = client.submit(&spec_json(&spec)).unwrap().job().unwrap().id;
    let job = client.wait(&id, Duration::from_secs(120)).unwrap();
    assert_eq!(job.state, "done");
    let served = job.report.expect("done jobs carry the report");

    let reference = ClaptonService::new().run(spec.clone()).expect("reference");
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "served report must be byte-identical to the in-process run"
    );

    // Conflicting spec under the same name+seed: 409, artifacts untouched.
    let mut conflicting = spec.clone();
    conflicting.noise = NoiseSpec::Noiseless;
    let conflict = client.submit(&spec_json(&conflicting)).unwrap();
    assert_eq!(conflict.status, 409, "{}", conflict.body);

    // Resubmission of the identical spec: answered from artifacts, no
    // second run, same report.
    let cached = client.submit(&spec_json(&spec)).unwrap();
    assert_eq!(cached.status, 200, "{}", cached.body);
    let cached_job = cached.job().unwrap();
    assert_eq!(cached_job.state, "done");
    assert_eq!(
        serde_json::to_string(&cached_job.report.unwrap()).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );

    // Garbage submissions are a 400, not a hang or a 500.
    let garbage = client
        .request("POST", "/v1/jobs", Some("{not json"))
        .unwrap();
    assert_eq!(garbage.status, 400);
    let missing = client.status("job-999999").unwrap();
    assert_eq!(missing.status, 404);
    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}
