//! Loopback tests for the observability surface: `GET /metrics` must be a
//! parseable Prometheus exposition covering admission, queue, pool, cache,
//! and kernel series, and `GET /v1/jobs/{id}/trace` must agree span-for-span
//! with the `telemetry.jsonl` artifact the service wrote for the job.

use clapton_server::client::Client;
use clapton_server::{Server, ServerConfig, ServerHandle};
use clapton_service::{
    EngineSpec, JobSpec, NoiseSpec, ProblemSpec, SuiteProblem, UniformNoise, TELEMETRY_ARTIFACT,
};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(ProblemSpec::Suite(SuiteProblem {
        name: "ising(J=0.50)".to_string(),
        qubits: 4,
    }));
    spec.engine = EngineSpec::Quick;
    spec.noise = NoiseSpec::Uniform(UniformNoise {
        p1: 1e-3,
        p2: 1e-2,
        readout: 2e-2,
        t1: None,
    });
    spec.seed = seed;
    spec
}

fn start(config: ServerConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind server");
    let handle = server.handle();
    let serve = std::thread::spawn(move || server.serve().expect("serve"));
    (handle, serve)
}

fn stop(handle: ServerHandle, serve: std::thread::JoinHandle<()>) {
    handle.drain();
    serve.join().expect("serve thread");
}

/// The one scrape the whole surface hangs off: run a job to completion,
/// then assert the exposition parses and carries every layer's series.
#[test]
fn metrics_scrape_covers_every_layer_and_trace_matches_the_artifact() {
    let root = scratch("telemetry");
    let (handle, serve) = start(ServerConfig::new(&root));
    let addr = handle.local_addr().to_string();
    let client = Client::new(&addr).with_tenant("observer");

    let spec = quick_spec(7);
    let response = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect("submit");
    assert_eq!(response.status, 202, "{}", response.body);
    let id = response.job().unwrap().id;
    let job = client.wait(&id, Duration::from_secs(120)).expect("wait");
    assert_eq!(job.state, "done");

    // --- /metrics: parseable and covering every instrumented layer. ---
    let text = client.metrics().expect("scrape /metrics");
    let samples = clapton_telemetry::parse_text(&text).expect("exposition parses");
    let find = |name: &str| -> Vec<&clapton_telemetry::Sample> {
        samples.iter().filter(|s| s.name == name).collect()
    };
    // Admission layer: exactly one fresh admission for this tenant.
    let admitted = find("clapton_jobs_admitted_total");
    let ours = admitted
        .iter()
        .find(|s| s.label("tenant") == Some("observer"))
        .expect("admitted series for tenant");
    assert_eq!(ours.value, 1.0);
    let finished = find("clapton_jobs_finished_total");
    assert!(finished
        .iter()
        .any(|s| s.label("tenant") == Some("observer") && s.label("outcome") == Some("done")));
    // Queue layer: gauges synced at scrape time; nothing left queued.
    assert_eq!(find("clapton_queue_depth")[0].value, 0.0);
    assert!(samples
        .iter()
        .any(|s| s.name == "clapton_tenant_vtime_lag" && s.label("tenant") == Some("observer")));
    // Pool layer: workers exist and the job spawned tasks through them.
    assert!(!find("clapton_pool_workers_busy").is_empty());
    assert!(find("clapton_pool_tasks_spawned_total")[0].value > 0.0);
    // Scheduler layer: the job started and ran rounds.
    assert!(find("clapton_jobs_started_total")[0].value >= 1.0);
    assert!(find("clapton_job_rounds_total")[0].value > 0.0);
    // Cache layer: the cached evaluator inserted entries.
    assert!(find("clapton_eval_cache_inserts_total")[0].value > 0.0);
    // Kernel layer: Hamiltonian terms were evaluated.
    assert!(find("clapton_exact_terms_total")[0].value > 0.0);
    // Histogram invariant spot check: round latency count equals the
    // +Inf bucket and matches the rounds that were timed.
    let count = find("clapton_round_latency_seconds_count")[0].value;
    let inf_bucket = samples
        .iter()
        .find(|s| s.name == "clapton_round_latency_seconds_bucket" && s.label("le") == Some("+Inf"))
        .expect("+Inf bucket");
    assert_eq!(count, inf_bucket.value);

    // --- Trace endpoint vs the on-disk artifact: same span tree. ---
    let trace = client.trace(&id).expect("trace endpoint");
    assert_eq!(trace.id, id);
    assert_eq!(trace.spans.len(), 1, "one root job span");
    let job_root = &trace.spans[0];
    assert_eq!(job_root.name, "job");
    let clapton = job_root
        .children
        .iter()
        .find(|c| c.name == "clapton")
        .expect("clapton method span under the job root");
    assert!(
        clapton.children.iter().any(|c| c.name == "round"),
        "round spans under the clapton span"
    );

    let artifact_dir = std::fs::read_dir(root.join("artifacts"))
        .expect("artifacts dir")
        .map(|e| e.expect("dirent").path())
        .find(|p| {
            // Skip registry-internal state such as the `.cache` store.
            p.is_dir()
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with('.'))
        })
        .expect("one artifact dir");
    let jsonl =
        std::fs::read_to_string(artifact_dir.join(TELEMETRY_ARTIFACT)).expect("telemetry.jsonl");
    let records = clapton_telemetry::from_jsonl(&jsonl).expect("jsonl parses");
    assert_eq!(
        clapton_telemetry::span_tree(&records),
        trace.spans,
        "trace endpoint and telemetry.jsonl disagree"
    );

    // Unknown job and wrong method come back as clean protocol errors.
    assert!(client.trace("job-999999").is_err());
    let method_not_allowed = client
        .request("POST", &format!("/v1/jobs/{id}/trace"), None)
        .expect("request");
    assert_eq!(method_not_allowed.status, 405);
    let metrics_post = client.request("POST", "/metrics", None).expect("request");
    assert_eq!(metrics_post.status, 405);

    stop(handle, serve);
    let _ = std::fs::remove_dir_all(&root);
}
