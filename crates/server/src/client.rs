//! A minimal blocking HTTP client for the server's protocol, shared by the
//! `clapton-client` binary, the loopback tests, and the benchmark.
//!
//! One request per connection, mirroring the server's `Connection: close`
//! policy; responses are read to EOF and chunked bodies are decoded, so the
//! event stream arrives as plain `data:` frames.
//!
//! Retries are off by default ([`Client::with_retries`] opts in): transient
//! transport failures and 5xx responses back off exponentially with
//! deterministic jitter — a hash of `(addr, path, attempt)`, so a retrying
//! client is reproducible run to run yet two clients hammering one server
//! do not retry in lockstep — and a 429 honors the server's `Retry-After`.

use crate::server::{ErrorBody, HealthBody, JobStatusBody, QueueBody};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: String,
}

impl Response {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as a [`JobStatusBody`].
    ///
    /// # Errors
    ///
    /// `InvalidData` when the body is not a job status document.
    pub fn job(&self) -> io::Result<JobStatusBody> {
        serde_json::from_str(&self.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The server's error message, when the body carries one.
    pub fn error(&self) -> Option<String> {
        serde_json::from_str::<ErrorBody>(&self.body)
            .ok()
            .map(|b| b.error)
    }
}

/// Ceiling on any single retry backoff sleep.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    tenant: Option<String>,
    retries: u32,
    retry_base: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with no tenant header and no
    /// retries.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            tenant: None,
            retries: 0,
            retry_base: Duration::from_millis(100),
        }
    }

    /// Sets the `X-Tenant` header sent with every request.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Client {
        self.tenant = Some(tenant.into());
        self
    }

    /// Enables up to `retries` retries of transient failures (connection
    /// refused/reset, 5xx, 429), backing off exponentially from `base`.
    pub fn with_retries(mut self, retries: u32, base: Duration) -> Client {
        self.retries = retries;
        self.retry_base = base;
        self
    }

    /// Sends one request and reads the full response, retrying transient
    /// failures when [`Client::with_retries`] enabled it.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparseable response, after retries (if
    /// any) are exhausted.
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.request_once(method, path, body);
            if attempt >= self.retries {
                return outcome;
            }
            let wait = match &outcome {
                Err(e) if transient(e.kind()) => self.backoff(path, attempt),
                // 429 carries the server's own schedule; 5xx means the
                // server (or something between) hiccuped.
                Ok(response) if response.status == 429 => response
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map_or_else(|| self.backoff(path, attempt), Duration::from_secs)
                    .min(MAX_BACKOFF),
                Ok(response) if response.status >= 500 => self.backoff(path, attempt),
                _ => return outcome,
            };
            std::thread::sleep(wait);
            attempt += 1;
        }
    }

    /// The exponential-backoff sleep before retry number `attempt`:
    /// `base * 2^attempt`, capped, plus up to 50% deterministic jitter.
    fn backoff(&self, path: &str, attempt: u32) -> Duration {
        let base = self
            .retry_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(MAX_BACKOFF);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self
            .addr
            .bytes()
            .chain(path.bytes())
            .chain(attempt.to_le_bytes())
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        base + base.mul_f64((hash % 1024) as f64 / 2048.0)
    }

    fn request_once(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Length: {}\r\n",
            self.addr,
            body.len()
        );
        if let Some(tenant) = &self.tenant {
            head.push_str("X-Tenant: ");
            head.push_str(tenant);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }

    /// `POST /v1/jobs` with a spec JSON document.
    ///
    /// # Errors
    ///
    /// Transport failures; protocol-level rejections come back as the
    /// response status.
    pub fn submit(&self, spec_json: &str) -> io::Result<Response> {
        self.request("POST", "/v1/jobs", Some(spec_json))
    }

    /// `GET /v1/jobs/{id}`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn status(&self, id: &str) -> io::Result<Response> {
        self.request("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// `DELETE /v1/jobs/{id}` (cooperative cancellation).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn cancel(&self, id: &str) -> io::Result<Response> {
        self.request("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// `GET /v1/queue`, parsed.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-queue response body.
    pub fn queue(&self) -> io::Result<QueueBody> {
        let response = self.request("GET", "/v1/queue", None)?;
        serde_json::from_str(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// `GET /v1/jobs/{id}/events`: blocks until the job's event log closes
    /// and returns every `data:` frame's JSON payload.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-stream response.
    pub fn events(&self, id: &str) -> io::Result<Vec<String>> {
        let response = self.request("GET", &format!("/v1/jobs/{id}/events"), None)?;
        if response.status != 200 {
            return Err(io::Error::other(
                response
                    .error()
                    .unwrap_or_else(|| format!("status {}", response.status)),
            ));
        }
        Ok(response
            .body
            .lines()
            .filter_map(|line| line.strip_prefix("data: "))
            .map(str::to_string)
            .collect())
    }

    /// `GET /healthz`, parsed.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-health response body. A draining server
    /// answers 503 with `ready: false` — that is a successful call here;
    /// callers decide what readiness means to them.
    pub fn health(&self) -> io::Result<HealthBody> {
        let response = self.request("GET", "/healthz", None)?;
        serde_json::from_str(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// `GET /metrics`: the raw Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-200 response.
    pub fn metrics(&self) -> io::Result<String> {
        let response = self.request("GET", "/metrics", None)?;
        if response.status != 200 {
            return Err(io::Error::other(format!(
                "metrics scrape failed: status {}",
                response.status
            )));
        }
        Ok(response.body)
    }

    /// `GET /v1/cache`: the persistent result store's census, parsed.
    ///
    /// # Errors
    ///
    /// Transport failures, a 404 (no store attached), or a non-stats body.
    pub fn cache_stats(&self) -> io::Result<clapton_service::CacheStoreStats> {
        let response = self.request("GET", "/v1/cache", None)?;
        if response.status != 200 {
            return Err(io::Error::other(
                response
                    .error()
                    .unwrap_or_else(|| format!("status {}", response.status)),
            ));
        }
        serde_json::from_str(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// `DELETE /v1/cache`: drops every cached entry, returning how many
    /// entries were cleared.
    ///
    /// # Errors
    ///
    /// Transport failures, a 404 (no store attached), or a non-flush body.
    pub fn cache_flush(&self) -> io::Result<u64> {
        let response = self.request("DELETE", "/v1/cache", None)?;
        if response.status != 200 {
            return Err(io::Error::other(
                response
                    .error()
                    .unwrap_or_else(|| format!("status {}", response.status)),
            ));
        }
        let body: crate::server::CacheFlushBody = serde_json::from_str(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(body.cleared)
    }

    /// `GET /v1/jobs/{id}/trace`: the job's span tree, parsed.
    ///
    /// # Errors
    ///
    /// Transport failures, a 404 (no such job or no trace recorded), or a
    /// non-trace response body.
    pub fn trace(&self, id: &str) -> io::Result<crate::server::TraceBody> {
        let response = self.request("GET", &format!("/v1/jobs/{id}/trace"), None)?;
        if response.status != 200 {
            return Err(io::Error::other(
                response
                    .error()
                    .unwrap_or_else(|| format!("status {}", response.status)),
            ));
        }
        serde_json::from_str(&response.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Polls `GET /v1/jobs/{id}` until the job reaches a terminal state
    /// (`done`, `cancelled`, `failed`) or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Transport failures, a 404, or `TimedOut`.
    pub fn wait(&self, id: &str, timeout: Duration) -> io::Result<JobStatusBody> {
        let deadline = Instant::now() + timeout;
        loop {
            let response = self.status(id)?;
            if response.status == 404 {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no job {id:?}"),
                ));
            }
            let job = response.job()?;
            if matches!(job.state.as_str(), "done" | "cancelled" | "failed") {
                return Ok(job);
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {id} still {:?} after {timeout:?}", job.state),
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Transport failures worth retrying: the server is not there *yet* (still
/// binding, restarting) or dropped the connection mid-flight. Anything else
/// (refused DNS, permission, protocol) is permanent.
fn transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let malformed = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| malformed("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| malformed("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let raw_body = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(raw_body).ok_or_else(|| malformed("bad chunked body"))?
    } else {
        raw_body.to_vec()
    };
    Ok(Response {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| malformed("response body is not UTF-8"))?,
    })
}

fn decode_chunked(mut raw: &[u8]) -> Option<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let line_end = raw.windows(2).position(|w| w == b"\r\n")?;
        let size =
            usize::from_str_radix(std::str::from_utf8(&raw[..line_end]).ok()?.trim(), 16).ok()?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Some(body);
        }
        if raw.len() < size + 2 {
            return None;
        }
        body.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_chunked_bodies() {
        let raw = b"5\r\nhello\r\n7\r\n, world\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(raw).unwrap(), b"hello, world");
        assert_eq!(decode_chunked(b"0\r\n\r\n").unwrap(), b"");
        assert!(decode_chunked(b"5\r\nhel").is_none(), "truncated chunk");
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let client = Client::new("127.0.0.1:1").with_retries(8, Duration::from_millis(50));
        let a = client.backoff("/v1/jobs", 0);
        assert_eq!(a, client.backoff("/v1/jobs", 0), "same inputs, same sleep");
        assert_ne!(a, client.backoff("/v1/queue", 0), "jitter keys on the path");
        assert!(client.backoff("/v1/jobs", 3) > a, "backoff grows");
        for attempt in 0..40 {
            assert!(client.backoff("/v1/jobs", attempt) <= MAX_BACKOFF + MAX_BACKOFF / 2);
        }
    }

    #[test]
    fn parses_a_plain_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 2\r\n\
                    Content-Length: 16\r\n\r\n{\"error\":\"full\"}";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("2"));
        assert_eq!(response.error().as_deref(), Some("full"));
    }
}
